//! Tiered cold storage: erosion that demotes instead of deletes.
//!
//! Opens a store with a cold tier configured, ingests a stream, applies an
//! erosion step that would previously have deleted segments — and shows
//! them demoted to the cold tier instead, then promoted back by a query
//! that returns byte-identical results while charging `ColdRead`.
//!
//! Run with `cargo run --example tiered_store`.

use std::collections::BTreeMap;
use vstore::datasets::{Dataset, VideoSource};
use vstore::{
    BackendOptions, ErodeRequest, IngestRequest, QueryRequest, QuerySpec, VStore, VStoreOptions,
};
use vstore_sim::ResourceKind;
use vstore_types::{ErosionStep, FormatId, Fraction};

fn main() -> vstore::Result<()> {
    // An in-memory hot store with an in-memory cold tier and the two-tier
    // segment cache on: everything the tiering subsystem touches.
    let store = VStore::open_temp(
        "tiered-example",
        VStoreOptions::fast()
            .with_backend(BackendOptions::Mem)
            .with_cache(64 << 20, 64)
            .with_cold_backend(BackendOptions::Mem),
    )?;

    let query = QuerySpec::query_a(0.8);
    let mut config = (*store.configure(&query.consumers())?).clone();
    // Make age 1 erode every non-golden format, so one erode call shows the
    // whole demote → promote cycle.
    let deleted: BTreeMap<FormatId, Fraction> = config
        .storage_formats
        .keys()
        .filter(|id| !id.is_golden())
        .map(|id| (*id, Fraction::ONE))
        .collect();
    config.erosion.steps = vec![ErosionStep {
        age_days: 1,
        deleted,
        overall_relative_speed: 0.5,
    }];
    store.install_configuration(config);

    let source = VideoSource::new(Dataset::Jackson);
    store.ingest(IngestRequest::new(&source).segments(4))?;
    let fresh = store.query(QueryRequest::new("jackson", &query).segments(4))?;
    println!(
        "fresh query: {} positives at {}",
        fresh.positive_frames.len(),
        fresh.speed
    );

    // Erode: with a cold tier configured this demotes instead of deleting.
    let report = store.erode(ErodeRequest::new("jackson").at_age_days(1))?;
    println!("{report}");
    let stats = store.tier_stats().expect("cold tier configured");
    println!(
        "after erode: {} segments cold ({} hot bytes, {} cold bytes)",
        stats.cold_segments, stats.hot_resident_bytes, stats.cold_resident_bytes
    );

    // Query the aged stream: cold hits flow through the SegmentReader,
    // promote the segments back hot, and the results are byte-identical.
    let aged = store.query(QueryRequest::new("jackson", &query).segments(4))?;
    assert_eq!(fresh, aged, "cold round trip must not change results");
    let usage = store.clock().usage();
    println!(
        "aged query identical; ledger: {} cold-read, {} disk-read, {} mem-read",
        usage.bytes(ResourceKind::ColdRead),
        usage.bytes(ResourceKind::DiskRead),
        usage.bytes(ResourceKind::MemRead),
    );

    println!("\n{}", store.stats_report());
    std::fs::remove_dir_all(store.store_dir()).ok();
    Ok(())
}
