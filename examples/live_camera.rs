//! Live-camera demo: a simulated diurnal camera streaming into the store
//! through the back-pressured live ingestor.
//!
//! One virtual "day" of the `park` stream plays at 10x real time against a
//! single transcode worker with a tight lag budget: the midday peak outruns
//! the worker, the degradation ladder steps fidelity down instead of letting
//! the backlog grow without bound, and the night trough walks it back up to
//! full fidelity. The footage then answers a query like any offline ingest,
//! and the episode — lag histogram, degradation transitions, per-source
//! throughput — shows up in the store's combined report.
//!
//! ```sh
//! cargo run --release --example live_camera
//! ```

use vstore::datasets::{Dataset, LiveSource, LoadProfile, VideoSource};
use vstore::{
    BackendOptions, LiveIngestOptions, QueryRequest, QuerySpec, QueueFullPolicy, VStore,
    VStoreOptions,
};

fn main() {
    let store = VStore::open_temp(
        "live-camera-demo",
        VStoreOptions::fast().with_backend(BackendOptions::Mem),
    )
    .expect("open store");
    let query = QuerySpec::query_a(0.8);
    store.configure(&query.consumers()).expect("configure");

    // One 60-virtual-second "day": the offered rate peaks at 0.9 seg/s
    // around midday and bottoms out at 0.1 seg/s at night. The schedule is
    // a closed-form integral of the clock — no RNG — so every run offers
    // the same segments at the same virtual instants.
    let mut camera = LiveSource::new(
        VideoSource::new(Dataset::Park),
        LoadProfile::Diurnal {
            mean_segments_per_sec: 0.5,
            swing: 0.8,
            period_seconds: 60.0,
        },
    )
    .expect("camera");

    // One transcode worker with a 2-segment lag budget: the midday peak
    // overruns it, so the ladder degrades rather than stalls the camera.
    let ingestor = store
        .live_ingest(
            camera.source().clone(),
            LiveIngestOptions::default()
                .with_workers(1)
                .with_queue_depth(16)
                .with_on_full(QueueFullPolicy::Block)
                .with_max_lag_segments(2),
        )
        .expect("live ingest");

    // Play the day at 10x: each tick advances the camera 5 virtual seconds
    // and sleeps 0.5 real seconds, so the worker races the diurnal swing.
    let mut t = 0.0f64;
    while t < 60.0 {
        t += 5.0;
        let due = camera.poll(t);
        let outcome = ingestor.offer_range(due.clone()).expect("offer");
        let stats = ingestor.stats();
        println!(
            "t={t:>4.0}s  offered {:>2} (segments {due:?})  queue {:>2}  \
             level {}/{}  completed {:>2}",
            outcome.accepted + outcome.shed,
            stats.queue_depth,
            stats.current_level,
            stats.max_level,
            stats.completed,
        );
        std::thread::sleep(std::time::Duration::from_millis(500));
    }

    // The night shift: drain the backlog, then retire the camera.
    ingestor.wait_idle();
    let stats = ingestor.shutdown();
    println!("\nfinal live stats:\n{stats}\n");

    // The day's footage answers queries like any offline ingest — for the
    // ranges stored at full fidelity. Midday segments transcoded below full
    // fidelity cannot serve the query's subscribed consumption format; that
    // is the cost the ladder paid to absorb the peak, and it surfaces as a
    // typed `FidelityUnsatisfiable`, never silently degraded answers.
    let last = stats.completed.saturating_sub(2);
    match store.query(
        QueryRequest::new("park", &query)
            .starting_at(last)
            .segments(2),
    ) {
        Ok(result) => println!(
            "query A @ F1≥{} over segments {last}..{}: speed {}, \
             {} positive frames, cascade selectivity {:.0}%",
            query.accuracy,
            last + 2,
            result.speed,
            result.positive_frames.len(),
            result.selectivity() * 100.0
        ),
        Err(e) => println!("query over a degraded range: {e}"),
    }
    println!("\ncombined report:\n{}", store.stats_report());
    std::fs::remove_dir_all(store.store_dir()).ok();
}
