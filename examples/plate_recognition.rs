//! Licence-plate recognition over dash-cam footage (the paper's query B):
//! Motion → License → OCR, executed at a range of target accuracies to show
//! the accuracy/speed trade-off VStore exposes.
//!
//! ```sh
//! cargo run --release --example plate_recognition
//! ```

use vstore::{IngestRequest, QueryRequest, QuerySpec, VStore, VStoreOptions};
use vstore_datasets::{Dataset, VideoSource};

fn main() -> vstore::Result<()> {
    let store = VStore::open_temp("plates", VStoreOptions::fast())?;

    // Configure for query B at all four of the paper's accuracy levels.
    let accuracies = [0.95, 0.9, 0.8, 0.7];
    let consumers: Vec<_> = accuracies
        .iter()
        .flat_map(|&a| QuerySpec::query_b(a).consumers())
        .collect();
    let config = store.configure(&consumers)?;
    println!(
        "configuration: {} unique consumption formats coalesced into {} storage formats",
        config.unique_consumption_formats(),
        config.storage_formats.len()
    );

    // Ingest 3 segments (24 s) of dash-cam video — the hardest content for
    // the encoder because of its global motion.
    let source = VideoSource::new(Dataset::Dashcam);
    let report = store.ingest(IngestRequest::new(&source).segments(3))?;
    println!(
        "dashcam ingest: {:.1} transcode cores, {:.0} GB/day",
        report.transcode_cores(),
        report.gb_per_day()
    );

    // Sweep the accuracy target: lower targets switch the operators to
    // cheaper consumption formats and cheaper storage formats, accelerating
    // the query by orders of magnitude.
    println!("\naccuracy  speed       plates-read  fallback-segments");
    for &accuracy in &accuracies {
        let query = QuerySpec::query_b(accuracy);
        let result = store.query(QueryRequest::new("dashcam", &query).segments(3))?;
        let fallbacks: usize = result.stages.iter().map(|s| s.fallback_segments).sum();
        println!(
            "{accuracy:<9} {:<11} {:<12} {fallbacks}",
            result.speed.to_string(),
            result.positive_frames.len()
        );
    }
    Ok(())
}
