//! Serving-layer demo: one store, one front end, many concurrent clients.
//!
//! Starts a `VStore` over the in-memory backend, configures it for query A,
//! ingests a short stream, then serves a burst of mixed requests from
//! several client threads through the bounded queue — and prints the
//! combined store/cache/serve statistics report at the end.
//!
//! ```sh
//! cargo run --release --example serve_clients
//! ```

use vstore::datasets::{Dataset, VideoSource};
use vstore::{
    BackendOptions, IngestRequest, QuerySpec, ServeOptions, ServeRequest, ServeResponse, VStore,
    VStoreOptions,
};

fn main() {
    let store = VStore::open_temp(
        "serve-demo",
        VStoreOptions::fast().with_backend(BackendOptions::Mem),
    )
    .expect("open store");
    let query = QuerySpec::query_a(0.8);
    store.configure(&query.consumers()).expect("configure");
    let source = VideoSource::new(Dataset::Jackson);
    store
        .ingest(IngestRequest::new(&source).segments(4))
        .expect("ingest");

    // A thread-per-core front end with a short queue, shedding overload.
    let server = store
        .serve(ServeOptions::default().with_queue_depth(32))
        .expect("serve");
    println!("serving with {server:?}");

    const CLIENTS: usize = 6;
    const REQUESTS_PER_CLIENT: usize = 8;
    std::thread::scope(|scope| {
        for client_idx in 0..CLIENTS {
            let mut client = server.connect();
            let query = query.clone();
            let source = source.clone();
            scope.spawn(move || {
                let mut ok = 0usize;
                let mut busy = 0usize;
                for round in 0..REQUESTS_PER_CLIENT {
                    let request = match (client_idx + round) % 3 {
                        0 => ServeRequest::Ingest {
                            source: source.clone(),
                            first_segment: 4 + (client_idx * REQUESTS_PER_CLIENT + round) as u64,
                            count: 1,
                        },
                        1 => ServeRequest::Query {
                            stream: "jackson".into(),
                            spec: query.clone(),
                            first_segment: 0,
                            count: 4,
                        },
                        _ => ServeRequest::Erode {
                            stream: "jackson".into(),
                            age_days: 0,
                        },
                    };
                    match client.call(request) {
                        Ok(ServeResponse::Error(err)) => {
                            panic!("request failed server-side: {err:?}")
                        }
                        Ok(_) => ok += 1,
                        Err(e) if e.is_busy() => busy += 1,
                        Err(e) => panic!("client error: {e}"),
                    }
                }
                println!("client {client_idx}: {ok} served, {busy} shed busy");
            });
        }
    });

    // Graceful shutdown drains the queue, then the probe keeps reporting
    // through the store's combined report.
    let stats = server.shutdown();
    println!("\nfinal serve stats:\n{stats}\n");
    println!("combined report:\n{}", store.stats_report());
    std::fs::remove_dir_all(store.store_dir()).ok();
}
