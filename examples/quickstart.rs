//! Quickstart: configure VStore for a car-detection query, ingest a slice of
//! the `jackson` surveillance stream, and run the query at two accuracy
//! targets.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vstore::{IngestRequest, QueryRequest, QuerySpec, VStore, VStoreOptions};
use vstore_datasets::{Dataset, VideoSource};

fn main() -> vstore::Result<()> {
    // A store in a temporary directory, with the fast (reduced-space)
    // configuration options so the example finishes in seconds.
    let store = VStore::open_temp("quickstart", VStoreOptions::fast())?;

    // Query A of the paper: Diff → specialised NN → full NN, at two target
    // accuracies. VStore configures consumption and storage formats for all
    // of these consumers at once.
    let precise = QuerySpec::query_a(0.9);
    let sloppy = QuerySpec::query_a(0.8);
    let mut consumers = precise.consumers();
    consumers.extend(sloppy.consumers());
    let config = store.configure(&consumers)?;
    println!("derived configuration:\n{config}");

    // Ingest 4 segments (32 seconds) of the jackson stream into every
    // derived storage format.
    let source = VideoSource::new(Dataset::Jackson);
    let report = store.ingest(IngestRequest::new(&source).segments(4))?;
    println!(
        "ingested {} of video: {} segments, {:.1} transcode cores, {:.1} GB/day storage growth",
        report.video,
        report.segments_written,
        report.transcode_cores(),
        report.gb_per_day()
    );

    // Run the query at both accuracies; the lower target runs much faster
    // because its operators subscribe to cheaper formats.
    for query in [&precise, &sloppy] {
        let result = store.query(QueryRequest::new("jackson", query).segments(4))?;
        println!(
            "query A @ F1≥{}: speed {}, {} positive frames, cascade selectivity {:.0}%",
            query.accuracy,
            result.speed,
            result.positive_frames.len(),
            result.selectivity() * 100.0
        );
    }
    Ok(())
}
