//! Operating under resource budgets: derive a configuration with an
//! ingestion (transcoding) budget and a storage budget, inspect the coding
//! adaptations and the resulting erosion plan, then apply the plan to aged
//! video and watch queries fall back to richer formats.
//!
//! ```sh
//! cargo run --release --example budgeted_store
//! ```

use vstore::{
    ConfigurationEngine, EngineOptions, ErodeRequest, IngestRequest, QueryRequest, QuerySpec,
    VStore, VStoreOptions,
};
use vstore_datasets::{Dataset, VideoSource};
use vstore_types::{ByteSize, FidelitySpace};

fn main() -> vstore::Result<()> {
    // First derive an unconstrained configuration to learn the natural
    // resource appetite of the workload.
    let query = QuerySpec::query_b(0.9);
    let mut consumers = query.consumers();
    consumers.extend(QuerySpec::query_b(0.7).consumers());

    let unconstrained = VStore::open_temp("budget-probe", VStoreOptions::fast())?;
    let engine: &ConfigurationEngine = unconstrained.engine();
    let baseline = engine.derive(&consumers)?;
    let cores = engine.ingest_cores(&baseline);
    let per_second = engine.storage_bytes_per_second(&baseline);
    let ten_day_footprint = ByteSize(per_second.bytes() * 86_400 * 10);
    println!(
        "unconstrained: {:.1} transcode cores, {per_second}/s of video, {ten_day_footprint} over a 10-day lifespan",
        cores
    );

    // Now impose budgets: half the transcoding cores, and a storage budget
    // that forces roughly half of the non-golden video versions to be eroded
    // away over the lifespan. VStore tunes coding speed steps for ingestion
    // and plans age-based erosion for storage.
    let golden_per_second = unconstrained
        .profiler()
        .profile_storage(*baseline.golden().expect("golden format exists"))
        .bytes_per_video_second;
    let non_golden_footprint =
        (per_second.bytes().saturating_sub(golden_per_second.bytes())) * 86_400 * 10;
    let storage_budget = ByteSize(ten_day_footprint.bytes() - non_golden_footprint / 2);
    let mut options = VStoreOptions::fast();
    options.engine = EngineOptions {
        fidelity_space: FidelitySpace::reduced(),
        ingest_budget_cores: Some(cores * 0.5),
        storage_budget: Some(storage_budget),
        lifespan_days: 10,
        ..EngineOptions::default()
    };
    let store = VStore::open_temp("budgeted", options)?;
    let config = store.configure(&consumers)?;
    println!("\nbudgeted configuration:\n{config}");
    println!(
        "erosion plan: decay factor k = {:.2}, Pmin = {:.2}",
        config.erosion.decay_factor, config.erosion.p_min
    );
    for step in &config.erosion.steps {
        if !step.deleted.is_empty() {
            let detail: Vec<String> = step
                .deleted
                .iter()
                .map(|(id, f)| format!("{id}: {f}"))
                .collect();
            println!(
                "  day {:>2}: overall speed {:.2}, deleted {{{}}}",
                step.age_days,
                step.overall_relative_speed,
                detail.join(", ")
            );
        }
    }

    // Ingest some airport footage and age it: apply the erosion plan, then
    // query — consumers whose segments were deleted transparently fall back
    // to richer formats (slower, but still accurate).
    let source = VideoSource::new(Dataset::Airport);
    store.ingest(IngestRequest::new(&source).segments(4))?;
    let fresh = store.query(QueryRequest::new("airport", &query).segments(4))?;
    let mut deleted_total = 0;
    for age in 1..=10 {
        deleted_total += store
            .erode(ErodeRequest::new("airport").at_age_days(age))?
            .total_segments();
    }
    let aged = store.query(QueryRequest::new("airport", &query).segments(4))?;
    let fallbacks: usize = aged.stages.iter().map(|s| s.fallback_segments).sum();
    println!(
        "\nquery B @0.9 on fresh video: {}; after eroding {} segments: {} ({} fallback segment reads)",
        fresh.speed, deleted_total, aged.speed, fallbacks
    );
    Ok(())
}
