//! Explore the knob space interactively from the command line: profile one
//! operator across a sweep of fidelities and print the accuracy / cost
//! trade-off table VStore's configuration engine navigates (a miniature
//! version of Figure 4 for any operator).
//!
//! ```sh
//! cargo run --release --example format_explorer            # defaults to License
//! cargo run --release --example format_explorer -- NN      # any Table-2 operator
//! ```

use vstore_ops::OperatorLibrary;
use vstore_profiler::{Profiler, ProfilerConfig};
use vstore_sim::CodingCostModel;
use vstore_types::{
    CodingOption, CropFactor, Fidelity, FrameSampling, ImageQuality, OperatorKind, Resolution,
    StorageFormat,
};

fn parse_operator(name: &str) -> Option<OperatorKind> {
    OperatorKind::ALL
        .into_iter()
        .find(|op| op.name().eq_ignore_ascii_case(name))
}

fn main() {
    let op = std::env::args()
        .nth(1)
        .and_then(|name| parse_operator(&name))
        .unwrap_or(OperatorKind::License);
    let profiler = Profiler::new(
        OperatorLibrary::paper_testbed(),
        CodingCostModel::paper_testbed(),
        ProfilerConfig::paper_evaluation(),
    );
    println!(
        "operator: {op}  (profiled on {})",
        profiler.config().dataset_for(op)
    );
    println!(
        "{:<28} {:>9} {:>14} {:>14} {:>14}",
        "fidelity", "F1", "consume (x rt)", "storage KB/s", "ingest cores"
    );
    for quality in [ImageQuality::Best, ImageQuality::Good, ImageQuality::Bad] {
        for resolution in [
            Resolution::R720,
            Resolution::R540,
            Resolution::R400,
            Resolution::R200,
            Resolution::R100,
        ] {
            for sampling in [
                FrameSampling::Full,
                FrameSampling::S1_6,
                FrameSampling::S1_30,
            ] {
                let fidelity = Fidelity::new(quality, CropFactor::C100, resolution, sampling);
                let consumer = profiler.profile_consumer(op, fidelity);
                let storage =
                    profiler.profile_storage(StorageFormat::new(fidelity, CodingOption::SMALLEST));
                println!(
                    "{:<28} {:>9.3} {:>14.1} {:>14.0} {:>14.2}",
                    fidelity.label(),
                    consumer.accuracy,
                    consumer.consumption_speed.factor(),
                    storage.bytes_per_video_second.kib(),
                    storage.encode_cores
                );
            }
        }
    }
    let stats = profiler.stats();
    println!(
        "\n{} profiling runs, modelled profiling delay {:.0} s (memoisation hits: {})",
        stats.operator_runs, stats.modeled_seconds, stats.operator_cache_hits
    );
}
