//! Socket front-end demo: one store, a real TCP listener on loopback, and
//! 8 pipelined clients hammering it over the network.
//!
//! Starts a `VStore` over the in-memory backend, configures it for query A,
//! ingests a short stream, serves it with `serve_net` on `127.0.0.1:0`,
//! then runs 8 client threads each pipelining a mix of query, ingest and
//! live-stats requests over its own `NetClient` connection — and prints
//! the network section of the combined statistics report at the end:
//! connections, frames, batch sizes, write syscalls and the buffer-pool
//! hit rate.
//!
//! ```sh
//! cargo run --release --example net_clients
//! ```

use vstore::datasets::{Dataset, VideoSource};
use vstore::{
    BackendOptions, IngestRequest, NetClient, NetOptions, QuerySpec, ServeOptions, ServeRequest,
    ServeResponse, VStore, VStoreOptions,
};

fn main() {
    let store = VStore::open_temp(
        "net-demo",
        VStoreOptions::fast().with_backend(BackendOptions::Mem),
    )
    .expect("open store");
    let query = QuerySpec::query_a(0.8);
    store.configure(&query.consumers()).expect("configure");
    let source = VideoSource::new(Dataset::Jackson);
    store
        .ingest(IngestRequest::new(&source).segments(4))
        .expect("ingest");

    // A real socket front end on loopback; port 0 lets the OS pick.
    let server = store
        .serve_net(
            "127.0.0.1:0",
            NetOptions::default(),
            ServeOptions::default().with_queue_depth(64),
        )
        .expect("serve_net");
    let addr = server.local_addr();
    println!("serving on {addr} with {server:?}");

    const CLIENTS: usize = 8;
    const REQUESTS_PER_CLIENT: usize = 12;
    std::thread::scope(|scope| {
        for client_idx in 0..CLIENTS {
            let query = query.clone();
            let source = source.clone();
            scope.spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                // Pipeline the whole mix up front: requests stream to the
                // server without waiting, responses come back batched.
                for round in 0..REQUESTS_PER_CLIENT {
                    let request = match (client_idx + round) % 3 {
                        0 => ServeRequest::Query {
                            stream: "jackson".into(),
                            spec: query.clone(),
                            first_segment: 0,
                            count: 4,
                        },
                        1 => ServeRequest::Ingest {
                            source: source.clone(),
                            first_segment: 4 + (client_idx * REQUESTS_PER_CLIENT + round) as u64,
                            count: 1,
                        },
                        _ => ServeRequest::LiveStats,
                    };
                    client.submit(&request).expect("submit");
                }
                client.flush().expect("flush");
                let mut ok = 0usize;
                let mut busy = 0usize;
                while client.pending() > 0 {
                    match client.recv().expect("recv") {
                        (_, ServeResponse::Error(err))
                            if err.code == vstore::serve::ErrorCode::Busy =>
                        {
                            busy += 1;
                        }
                        (_, ServeResponse::Error(err)) => panic!("server-side failure: {err:?}"),
                        _ => ok += 1,
                    }
                }
                println!(
                    "client {client_idx}: {ok} served, {busy} shed busy, p99 e2e {} us",
                    client.latency().quantile_us(0.99)
                );
            });
        }
    });

    // Graceful shutdown drains in-flight work, then the probes keep
    // reporting through the store's combined report.
    let (net, serve) = server.shutdown();
    println!("\nfinal net stats:\n{net}");
    println!("final serve stats:\n{serve}");

    let report = store.stats_report();
    println!("\nnet section of the combined report:");
    for line in report.to_string().lines() {
        if line.starts_with("net:")
            || line.starts_with("  frames:")
            || line.starts_with("  writes:")
        {
            println!("{line}");
        }
    }
    std::fs::remove_dir_all(store.store_dir()).ok();
}
