//! Observability demo: watch a loaded store from a second connection.
//!
//! Starts a `VStore` with request tracing at 100% head-sampling (a demo
//! setting — production wants 1–10 per 1k), loads it over TCP with a few
//! pipelined query clients, then opens a separate **observer** connection
//! that never does any video work: it pulls the unified metrics snapshot
//! (Prometheus text) and drains the tracer's rings over the wire. The
//! slowest request's span tree is printed, and the whole dump is exported
//! as Chrome trace-event JSON — load it in `chrome://tracing` or
//! <https://ui.perfetto.dev> to see the request timeline.
//!
//! ```sh
//! cargo run --release --example observability
//! ```

use vstore::datasets::{Dataset, VideoSource};
use vstore::{
    BackendOptions, IngestRequest, NetClient, NetOptions, QuerySpec, ServeOptions, ServeRequest,
    ServeResponse, TraceOptions, VStore, VStoreOptions,
};

fn main() {
    let store = VStore::open_temp(
        "obs-demo",
        VStoreOptions::fast()
            .with_backend(BackendOptions::Mem)
            .with_cache(64 << 20, 32)
            .with_trace(TraceOptions::enabled().with_sample_per_1k(1000)),
    )
    .expect("open store");
    let query = QuerySpec::query_a(0.8);
    store.configure(&query.consumers()).expect("configure");
    store
        .ingest(IngestRequest::new(&VideoSource::new(Dataset::Jackson)).segments(4))
        .expect("ingest");

    let server = store
        .serve_net(
            "127.0.0.1:0",
            NetOptions::default(),
            ServeOptions::default().with_workers(2).with_queue_depth(64),
        )
        .expect("serve_net");
    let addr = server.local_addr();
    println!("serving on {addr}, tracing every request\n");

    // The load: a few clients pipelining queries over their own sockets.
    const CLIENTS: usize = 3;
    const QUERIES_PER_CLIENT: usize = 4;
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let query = query.clone();
            scope.spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                for _ in 0..QUERIES_PER_CLIENT {
                    client
                        .submit(&ServeRequest::Query {
                            stream: "jackson".into(),
                            spec: query.clone(),
                            first_segment: 0,
                            count: 4,
                        })
                        .expect("submit");
                }
                client.flush().expect("flush");
                while client.pending() > 0 {
                    let (_, response) = client.recv().expect("recv");
                    assert!(!response.is_error(), "{response:?}");
                }
            });
        }
    });

    // The observer: a second connection that only reads telemetry.
    let mut observer = NetClient::connect(addr).expect("connect observer");

    let snapshot = match observer
        .call(&ServeRequest::MetricsSnapshot)
        .expect("metrics")
    {
        ServeResponse::Metrics(snapshot) => snapshot,
        other => panic!("unexpected {other:?}"),
    };
    println!(
        "metrics snapshot: {} rows; a few of them in Prometheus text:",
        snapshot.metrics.len()
    );
    for family in [
        "vstore_serve_completed_total",
        "vstore_cache_raw_hits_total",
        "vstore_net_frames_in_total",
        "vstore_trace_committed_total",
    ] {
        for line in snapshot.to_prometheus().lines() {
            if line.starts_with(family) {
                println!("  {line}");
            }
        }
    }

    let dump = match observer
        .call(&ServeRequest::TraceDump { max_traces: 0 })
        .expect("trace dump")
    {
        ServeResponse::TraceDump(dump) => *dump,
        other => panic!("unexpected {other:?}"),
    };
    println!("\n{}", dump.report());

    if let Some(slowest) = dump.slowest() {
        println!(
            "slowest request: {} ({} µs, {} spans)",
            slowest.root,
            slowest.dur_us,
            slowest.spans.len()
        );
        for (depth, span) in slowest.span_tree() {
            let detail = if span.detail.is_empty() {
                String::new()
            } else {
                format!(" [{}]", span.detail)
            };
            println!(
                "  {:indent$}{} {} µs{detail}",
                "",
                span.name,
                span.dur_us,
                indent = depth * 2
            );
        }
    }

    // Export for chrome://tracing or ui.perfetto.dev ("Open trace file").
    let trace_path = std::env::temp_dir().join("vstore-trace.json");
    std::fs::write(&trace_path, dump.to_chrome_json()).expect("write trace");
    println!(
        "\nChrome trace with {} traces written to {} — load it in \
         chrome://tracing or https://ui.perfetto.dev",
        dump.records.len(),
        trace_path.display()
    );

    server.shutdown();
    std::fs::remove_dir_all(store.store_dir()).ok();
}
