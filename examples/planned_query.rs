//! The compressed-domain query planner: metadata skip + cost-ordered
//! cascade.
//!
//! Ingests a skewed stream (park: near-static with periodic activity
//! bursts), runs the same query as an exact scan and as a planned one, and
//! prints what the planner did: segments skipped straight from the
//! ingest-time metadata sidecars (never fetched, never decoded, never
//! charged), the cost × selectivity stage order, and the planned-vs-actual
//! selectivity per stage.
//!
//! Run with `cargo run --example planned_query`.

use vstore::datasets::{Dataset, VideoSource};
use vstore::{BackendOptions, IngestRequest, QueryRequest, QuerySpec, VStore, VStoreOptions};

fn main() -> vstore::Result<()> {
    let store = VStore::open_temp(
        "planned-query-example",
        VStoreOptions::fast().with_backend(BackendOptions::Mem),
    )?;

    // Query A (diff → specialised NN → full NN) over 8 park segments.
    let query = QuerySpec::query_a(0.8);
    store.configure(&query.consumers())?;
    let source = VideoSource::new(Dataset::Park);
    store.ingest(IngestRequest::new(&source).segments(8))?;

    // The exact scan: every segment is fetched and decoded.
    let exact = store.query(QueryRequest::new("park", &query).segments(8))?;
    println!(
        "exact   : {} positives, {} read, 0 skipped",
        exact.positive_frames.len(),
        exact.bytes_read
    );

    // The planned scan: segments whose recorded change stays below the
    // skip threshold are dropped before any prefetch. 6.0 sits between
    // park's quiet segments (~3–4.5 change units) and its bursts (>12) —
    // see the README's planner tuning table.
    let planned = store.query(
        QueryRequest::new("park", &query)
            .segments(8)
            .with_planner(true)
            .skip_threshold(6.0),
    )?;
    println!(
        "planned : {} positives, {} read, {} of 8 segments skipped from metadata",
        planned.positive_frames.len(),
        planned.bytes_read,
        planned.segments_skipped
    );

    // Per-stage: execution order (cheapest × most selective first, the
    // declared final stage pinned last) and planned vs observed
    // selectivity.
    for stage in &planned.stages {
        let planned_sel = stage
            .planned_selectivity
            .map(|s| format!("{s:.2}"))
            .unwrap_or_else(|| "-".into());
        let actual_sel = stage
            .actual_selectivity()
            .map(|s| format!("{s:.2}"))
            .unwrap_or_else(|| "idle".into());
        println!(
            "  stage {:>13?}: {:>2} segments in, {:>2} passed \
             (selectivity planned {planned_sel}, actual {actual_sel})",
            stage.op, stage.segments_processed, stage.segments_passed
        );
    }
    Ok(())
}
