//! Typed request builders for the [`VStore`](crate::VStore) service handle.
//!
//! Every runtime operation of the facade takes one of these requests instead
//! of a positional argument list: the builder names each parameter at the
//! call site, carries defaults for the common case, and **validates before
//! the request touches the runtime** — a malformed request is rejected as
//! [`VStoreError::InvalidArgument`] without acquiring a single store lock.

use vstore_datasets::VideoSource;
use vstore_query::QuerySpec;
use vstore_types::{Result, VStoreError};

/// Validate one contiguous segment range shared by ingest and query
/// requests.
fn validate_range(what: &str, first_segment: u64, count: u64) -> Result<()> {
    if count == 0 {
        return Err(VStoreError::invalid_argument(format!(
            "{what} covers zero segments (set .segments(n) with n >= 1)"
        )));
    }
    if first_segment.checked_add(count).is_none() {
        return Err(VStoreError::invalid_argument(format!(
            "{what} segment range {first_segment}+{count} overflows u64"
        )));
    }
    Ok(())
}

/// A request to ingest a contiguous range of 8-second segments of one video
/// source into every storage format of the active configuration.
///
/// ```
/// use vstore::IngestRequest;
/// use vstore::datasets::{Dataset, VideoSource};
///
/// let source = VideoSource::new(Dataset::Jackson);
/// // Segments [8, 12) of the jackson stream.
/// let request = IngestRequest::new(&source).starting_at(8).segments(4);
/// ```
#[derive(Debug, Clone)]
pub struct IngestRequest {
    pub(crate) source: VideoSource,
    pub(crate) first_segment: u64,
    pub(crate) count: u64,
}

impl IngestRequest {
    /// A request to ingest segment 0 of `source`. Adjust the range with
    /// [`starting_at`](Self::starting_at) and [`segments`](Self::segments).
    pub fn new(source: &VideoSource) -> Self {
        IngestRequest {
            source: source.clone(),
            first_segment: 0,
            count: 1,
        }
    }

    /// First segment index of the range (default 0).
    pub fn starting_at(mut self, first_segment: u64) -> Self {
        self.first_segment = first_segment;
        self
    }

    /// Number of consecutive segments to ingest (default 1).
    pub fn segments(mut self, count: u64) -> Self {
        self.count = count;
        self
    }

    /// Check the request before it touches the runtime.
    pub fn validate(&self) -> Result<()> {
        validate_range("ingest request", self.first_segment, self.count)
    }
}

/// A request to execute an operator-cascade query over stored segments of
/// one stream.
///
/// ```
/// use vstore::{QueryRequest, QuerySpec};
///
/// // Query A (Diff → specialised NN → full NN) at F1 >= 0.9 over
/// // segments [0, 4) of the jackson stream.
/// let request = QueryRequest::new("jackson", &QuerySpec::query_a(0.9)).segments(4);
/// assert!(request.validate().is_ok());
/// assert!(QueryRequest::new("", &QuerySpec::query_a(0.9)).validate().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct QueryRequest {
    pub(crate) stream: String,
    pub(crate) spec: QuerySpec,
    pub(crate) first_segment: u64,
    pub(crate) count: u64,
    /// Per-request planner override: `None` follows the session's
    /// `RuntimeOptions::query_planner` default.
    pub(crate) planner: Option<bool>,
    /// Metadata-skip threshold used when the planner runs this query.
    pub(crate) skip_threshold: f64,
}

impl QueryRequest {
    /// A request to run `spec` over segment 0 of `stream`. Adjust the range
    /// with [`starting_at`](Self::starting_at) and
    /// [`segments`](Self::segments).
    pub fn new(stream: impl Into<String>, spec: &QuerySpec) -> Self {
        QueryRequest {
            stream: stream.into(),
            spec: spec.clone(),
            first_segment: 0,
            count: 1,
            planner: None,
            skip_threshold: vstore_query::DEFAULT_SKIP_THRESHOLD,
        }
    }

    /// First segment index of the range (default 0).
    pub fn starting_at(mut self, first_segment: u64) -> Self {
        self.first_segment = first_segment;
        self
    }

    /// Number of consecutive segments to query (default 1).
    pub fn segments(mut self, count: u64) -> Self {
        self.count = count;
        self
    }

    /// Force the query planner on (`true`) or off (`false`) for this query,
    /// overriding the session's `RuntimeOptions::query_planner` default.
    /// With the planner off the query is an exact scan. See the README's
    /// query-planner section for the accuracy trade.
    pub fn with_planner(mut self, enabled: bool) -> Self {
        self.planner = Some(enabled);
        self
    }

    /// Metadata-skip threshold for planned execution (default: the diff
    /// operator's change threshold). Segments whose recorded change stays
    /// below it are skipped without being fetched; `0.0` skips only
    /// perfectly static segments. Ignored when the planner is off.
    pub fn skip_threshold(mut self, threshold: f64) -> Self {
        self.skip_threshold = threshold;
        self
    }

    /// Check the request before it touches the runtime.
    pub fn validate(&self) -> Result<()> {
        if self.stream.is_empty() {
            return Err(VStoreError::invalid_argument(
                "query request has an empty stream name",
            ));
        }
        if !self.skip_threshold.is_finite() || self.skip_threshold < 0.0 {
            return Err(VStoreError::invalid_argument(format!(
                "query request skip threshold must be finite and >= 0, got {}",
                self.skip_threshold
            )));
        }
        validate_range("query request", self.first_segment, self.count)
    }
}

/// A request to apply the active configuration's erosion plan to one stream
/// at a given video age (§4.4): the planned fraction of that age's segments
/// is deleted from every non-golden storage format.
///
/// ```
/// use vstore::ErodeRequest;
///
/// let request = ErodeRequest::new("jackson").at_age_days(3);
/// assert!(request.validate().is_ok());
/// assert!(ErodeRequest::new("").validate().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct ErodeRequest {
    pub(crate) stream: String,
    pub(crate) age_days: u32,
}

impl ErodeRequest {
    /// A request to erode `stream` at age 0 days (usually a planned no-op).
    /// Set the age with [`at_age_days`](Self::at_age_days).
    pub fn new(stream: impl Into<String>) -> Self {
        ErodeRequest {
            stream: stream.into(),
            age_days: 0,
        }
    }

    /// The video age, in days, whose erosion step should be applied.
    pub fn at_age_days(mut self, age_days: u32) -> Self {
        self.age_days = age_days;
        self
    }

    /// Check the request before it touches the runtime.
    pub fn validate(&self) -> Result<()> {
        if self.stream.is_empty() {
            return Err(VStoreError::invalid_argument(
                "erode request has an empty stream name",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstore_datasets::Dataset;

    #[test]
    fn ingest_request_defaults_and_validation() {
        let source = VideoSource::new(Dataset::Jackson);
        let req = IngestRequest::new(&source);
        assert_eq!(req.first_segment, 0);
        assert_eq!(req.count, 1);
        assert!(req.validate().is_ok());

        assert!(IngestRequest::new(&source).segments(0).validate().is_err());
        assert!(IngestRequest::new(&source)
            .starting_at(u64::MAX)
            .segments(2)
            .validate()
            .is_err());
        assert!(IngestRequest::new(&source)
            .starting_at(100)
            .segments(50)
            .validate()
            .is_ok());
    }

    #[test]
    fn query_request_defaults_and_validation() {
        let spec = QuerySpec::query_a(0.9);
        let req = QueryRequest::new("jackson", &spec);
        assert_eq!(req.first_segment, 0);
        assert_eq!(req.count, 1);
        assert!(req.validate().is_ok());

        assert!(QueryRequest::new("", &spec).validate().is_err());
        assert!(QueryRequest::new("jackson", &spec)
            .segments(0)
            .validate()
            .is_err());
        assert!(QueryRequest::new("jackson", &spec)
            .starting_at(u64::MAX)
            .segments(1)
            .validate()
            .is_err());
    }

    #[test]
    fn query_request_planner_knobs() {
        let spec = QuerySpec::query_a(0.9);
        let req = QueryRequest::new("jackson", &spec);
        assert_eq!(req.planner, None);
        assert_eq!(req.skip_threshold, vstore_query::DEFAULT_SKIP_THRESHOLD);

        let req = QueryRequest::new("jackson", &spec)
            .with_planner(true)
            .skip_threshold(0.25);
        assert_eq!(req.planner, Some(true));
        assert!(req.validate().is_ok());
        assert!(QueryRequest::new("jackson", &spec)
            .with_planner(false)
            .validate()
            .is_ok());

        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            assert!(
                QueryRequest::new("jackson", &spec)
                    .skip_threshold(bad)
                    .validate()
                    .is_err(),
                "{bad} accepted"
            );
        }
    }

    #[test]
    fn erode_request_defaults_and_validation() {
        let req = ErodeRequest::new("park").at_age_days(7);
        assert_eq!(req.age_days, 7);
        assert!(req.validate().is_ok());
        assert_eq!(ErodeRequest::new("park").age_days, 0);
        assert!(ErodeRequest::new("").at_age_days(1).validate().is_err());
    }
}
