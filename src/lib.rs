//! # vstore
//!
//! The top-level facade over the VStore system: a data store for analytics
//! on large videos (EuroSys '19), reproduced in Rust.
//!
//! This crate re-exports every component crate and provides [`VStore`], the
//! handle that ties them together the way the paper's prototype does:
//!
//! * **configure** — run backward derivation for a set of
//!   `<operator, accuracy>` consumers (§4), producing the global set of
//!   consumption and storage formats plus the erosion plan;
//! * **ingest** — transcode incoming video into every storage format and
//!   persist 8-second segments (§2.2);
//! * **query** — execute operator cascades over the stored video at a chosen
//!   accuracy, streaming segments from disk through the decoder to the
//!   operators (§6.2);
//! * **erode** — apply the age-based erosion plan to keep storage under
//!   budget (§4.4).
//!
//! ```no_run
//! use vstore::{QuerySpec, VStore, VStoreOptions};
//! use vstore_datasets::{Dataset, VideoSource};
//!
//! let mut store = VStore::open_temp("quickstart", VStoreOptions::default()).unwrap();
//! let query = QuerySpec::query_a(0.9);
//! store.configure(&query.consumers()).unwrap();
//! store.ingest(&VideoSource::new(Dataset::Jackson), 0, 4).unwrap();
//! let result = store.query("jackson", &query, 0, 4).unwrap();
//! println!("query A ran at {}", result.speed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vstore_codec as codec;
pub use vstore_core as core;
pub use vstore_datasets as datasets;
pub use vstore_ingest as ingest;
pub use vstore_ops as ops;
pub use vstore_profiler as profiler;
pub use vstore_query as query;
pub use vstore_sim as sim;
pub use vstore_storage as storage;
pub use vstore_types as types;

pub use vstore_core::{Alternative, ConfigurationEngine, EngineOptions};
pub use vstore_query::{QueryResult, QuerySpec};
pub use vstore_types::{
    Configuration, Consumer, OperatorKind, Result, RuntimeOptions, VStoreError,
};

use std::path::Path;
use std::sync::Arc;
use vstore_codec::Transcoder;
use vstore_datasets::VideoSource;
use vstore_ingest::{IngestReport, IngestionPipeline};
use vstore_ops::OperatorLibrary;
use vstore_profiler::{Profiler, ProfilerConfig};
use vstore_query::QueryEngine;
use vstore_sim::{CodingCostModel, VirtualClock};
use vstore_storage::{SegmentStore, StoreStats};

/// Options controlling a [`VStore`] instance.
#[derive(Debug, Clone)]
pub struct VStoreOptions {
    /// Configuration-engine options (spaces, strategy, budgets, lifespan).
    pub engine: EngineOptions,
    /// Profiler configuration (clip length, per-operator datasets).
    pub profiler: ProfilerConfig,
    /// Runtime parallelism: store shards, ingest workers, query prefetch.
    /// Defaults to `shards = 8` and worker counts sized to the host's cores;
    /// [`RuntimeOptions::sequential`] reproduces the serial runtime exactly.
    pub runtime: RuntimeOptions,
}

impl Default for VStoreOptions {
    fn default() -> Self {
        VStoreOptions {
            engine: EngineOptions::default(),
            profiler: ProfilerConfig::paper_evaluation(),
            runtime: RuntimeOptions::default(),
        }
    }
}

impl VStoreOptions {
    /// Options sized for fast tests and examples: the reduced fidelity space
    /// and 3-second profiling clips.
    pub fn fast() -> Self {
        VStoreOptions {
            engine: EngineOptions {
                fidelity_space: vstore_types::FidelitySpace::reduced(),
                ..EngineOptions::default()
            },
            profiler: ProfilerConfig::fast_test(),
            runtime: RuntimeOptions::default(),
        }
    }

    /// Replace the runtime parallelism options.
    pub fn with_runtime(mut self, runtime: RuntimeOptions) -> Self {
        self.runtime = runtime;
        self
    }
}

/// The VStore handle.
pub struct VStore {
    profiler: Arc<Profiler>,
    engine: ConfigurationEngine,
    store: Arc<SegmentStore>,
    ingest: IngestionPipeline,
    queries: QueryEngine,
    configuration: Option<Configuration>,
    clock: VirtualClock,
}

impl VStore {
    /// Open a store rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>, options: VStoreOptions) -> Result<VStore> {
        let runtime = options.runtime.normalized();
        let store = Arc::new(SegmentStore::open_with_shards(dir, runtime.shards)?);
        Ok(Self::assemble(store, options))
    }

    /// Open a store in a fresh temporary directory (tests and examples).
    pub fn open_temp(tag: &str, options: VStoreOptions) -> Result<VStore> {
        let runtime = options.runtime.normalized();
        let store = Arc::new(SegmentStore::open_temp_with_shards(tag, runtime.shards)?);
        Ok(Self::assemble(store, options))
    }

    fn assemble(store: Arc<SegmentStore>, options: VStoreOptions) -> VStore {
        let runtime = options.runtime.normalized();
        let clock = VirtualClock::new();
        let library = OperatorLibrary::paper_testbed();
        let coding = CodingCostModel::paper_testbed();
        let profiler = Arc::new(Profiler::new(library.clone(), coding, options.profiler));
        let ingest =
            IngestionPipeline::new(Arc::clone(&store), Transcoder::new(coding), clock.clone())
                .with_workers(runtime.ingest_workers)
                .with_ingest_budget(options.engine.ingest_budget_cores);
        let engine = ConfigurationEngine::new(Arc::clone(&profiler), options.engine);
        let queries = QueryEngine::new(
            Arc::clone(&store),
            library,
            Transcoder::new(coding),
            clock.clone(),
        )
        .with_prefetch(runtime.query_prefetch);
        VStore {
            profiler,
            engine,
            store,
            ingest,
            queries,
            configuration: None,
            clock,
        }
    }

    /// The profiler (exposed for experiments that report profiling cost).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// The configuration engine.
    pub fn engine(&self) -> &ConfigurationEngine {
        &self.engine
    }

    /// The segment store statistics (aggregated across shards).
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Per-shard segment store statistics, in shard order.
    pub fn shard_stats(&self) -> Vec<StoreStats> {
        self.store.shard_stats()
    }

    /// The root directory of the segment store.
    pub fn store_dir(&self) -> std::path::PathBuf {
        self.store.dir()
    }

    /// The shared virtual clock (ingestion + query resource ledger).
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The active configuration, if one has been derived.
    pub fn configuration(&self) -> Option<&Configuration> {
        self.configuration.as_ref()
    }

    /// Derive (or re-derive) the video format configuration for a consumer
    /// set via backward derivation, and make it the active configuration.
    pub fn configure(&mut self, consumers: &[Consumer]) -> Result<&Configuration> {
        let config = self.engine.derive(consumers)?;
        self.configuration = Some(config);
        Ok(self.configuration.as_ref().expect("just set"))
    }

    /// Install an externally derived configuration (e.g. one of the §6.2
    /// baselines) as the active configuration.
    pub fn install_configuration(&mut self, configuration: Configuration) {
        self.configuration = Some(configuration);
    }

    fn active(&self) -> Result<&Configuration> {
        self.configuration.as_ref().ok_or_else(|| {
            VStoreError::InvalidState("no configuration derived yet; call configure()".into())
        })
    }

    /// Ingest `count` consecutive 8-second segments of a stream, starting at
    /// `first_segment`, into every storage format of the active
    /// configuration.
    pub fn ingest(
        &self,
        source: &VideoSource,
        first_segment: u64,
        count: u64,
    ) -> Result<IngestReport> {
        let config = self.active()?;
        self.ingest
            .ingest_segments(source, first_segment, count, config)
    }

    /// Execute a query over stored segments of a stream.
    pub fn query(
        &self,
        stream: &str,
        query: &QuerySpec,
        first_segment: u64,
        count: u64,
    ) -> Result<QueryResult> {
        let config = self.active()?;
        self.queries
            .execute(stream, query, config, first_segment, count)
    }

    /// Apply the erosion plan of the active configuration to a stream at a
    /// given video age, deleting the planned fraction of segments. Returns
    /// the number of segments deleted.
    pub fn erode(&self, stream: &str, age_days: u32) -> Result<usize> {
        let config = self.active()?;
        self.ingest.apply_erosion(stream, config, age_days)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstore_datasets::Dataset;

    #[test]
    fn facade_lifecycle() {
        let mut store = VStore::open_temp("facade", VStoreOptions::fast()).unwrap();
        assert!(store.configuration().is_none());
        assert!(store
            .ingest(&VideoSource::new(Dataset::Jackson), 0, 1)
            .is_err());

        let query = QuerySpec::query_a(0.8);
        store.configure(&query.consumers()).unwrap();
        assert!(store.configuration().is_some());

        let source = VideoSource::new(Dataset::Jackson);
        let report = store.ingest(&source, 0, 1).unwrap();
        assert!(report.segments_written >= 1);
        assert!(store.store_stats().live_segments >= 1);

        let result = store.query("jackson", &query, 0, 1).unwrap();
        assert!(result.speed.factor() > 0.0);
        std::fs::remove_dir_all(store.store.dir()).ok();
    }
}
