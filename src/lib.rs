//! # vstore
//!
//! The top-level facade over the VStore system: a data store for analytics
//! on large videos (EuroSys '19), reproduced in Rust.
//!
//! This crate re-exports every component crate and provides [`VStore`], a
//! cheaply-cloneable **service handle** that ties them together the way the
//! paper's prototype does. The handle is `Clone + Send + Sync`: clone it
//! freely and hand the clones to ingest, query and control threads — every
//! clone shares the same store, pipelines and resource ledger, and every
//! method takes `&self`.
//!
//! * **configure** — run backward derivation for a set of
//!   `<operator, accuracy>` consumers (§4), producing the global set of
//!   consumption and storage formats plus the erosion plan. Installing a
//!   configuration is an atomic epoch swap: requests already in flight keep
//!   the configuration they started with;
//! * **ingest** — transcode incoming video into every storage format and
//!   persist 8-second segments (§2.2), via [`IngestRequest`];
//! * **query** — execute operator cascades over the stored video at a chosen
//!   accuracy, streaming segments from the store through the decoder to the
//!   operators (§6.2), via [`QueryRequest`];
//! * **erode** — apply the age-based erosion plan to keep storage under
//!   budget (§4.4), via [`ErodeRequest`].
//!
//! Storage I/O flows through a pluggable [`StorageBackend`]: the local
//! filesystem by default, or an in-memory backend for tests and benchmarks,
//! selected with [`VStoreOptions::with_backend`].
//!
//! ```no_run
//! use vstore::{IngestRequest, QueryRequest, QuerySpec, VStore, VStoreOptions};
//! use vstore::datasets::{Dataset, VideoSource};
//!
//! let store = VStore::open_temp("quickstart", VStoreOptions::default()).unwrap();
//! let query = QuerySpec::query_a(0.9);
//! store.configure(&query.consumers()).unwrap();
//!
//! let source = VideoSource::new(Dataset::Jackson);
//! store.ingest(IngestRequest::new(&source).segments(4)).unwrap();
//!
//! // Clones serve requests concurrently against the same store.
//! let handle = store.clone();
//! let result = handle
//!     .query(QueryRequest::new("jackson", &query).segments(4))
//!     .unwrap();
//! println!("query A ran at {}", result.speed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod requests;

pub use vstore_codec as codec;
pub use vstore_core as core;
pub use vstore_datasets as datasets;
pub use vstore_ingest as ingest;
pub use vstore_obs as obs;
pub use vstore_ops as ops;
pub use vstore_profiler as profiler;
pub use vstore_query as query;
pub use vstore_serve as serve;
pub use vstore_sim as sim;
pub use vstore_storage as storage;
pub use vstore_types as types;

pub use requests::{ErodeRequest, IngestRequest, QueryRequest};
pub use vstore_core::{Alternative, ConfigurationEngine, EngineOptions};
pub use vstore_datasets::{LiveSource, LoadProfile};
pub use vstore_ingest::{
    DegradationLadder, ErodeReport, LiveIngestHandle, LiveProbe, LiveStats, OfferOutcome,
};
pub use vstore_obs::{
    Metric, MetricValue, MetricsRegistry, MetricsSnapshot, TraceContext, TraceDump, TraceOptions,
    TraceStats, Tracer,
};
pub use vstore_query::{PlanOptions, QueryResult, QuerySpec, StageReport};
pub use vstore_serve::{
    Connection, NetClient, NetProbe, NetServer, NetServerHandle, NetStats, RemoteError,
    RequestKind, ServeRequest, ServeResponse, ServeStats, ServerHandle, VideoService,
};
pub use vstore_storage::{
    BackendOptions, CacheStats, ColdBackend, FsBackend, MemBackend, ReadSource, SegmentReader,
    StorageBackend, TierEngine, TierOptions, TierStats, TieredBackend,
};
pub use vstore_types::{
    Configuration, Consumer, LiveIngestOptions, NetOptions, OperatorKind, QueueFullPolicy, Result,
    RuntimeOptions, ServeOptions, VStoreError,
};

use parking_lot::RwLock;
use std::path::Path;
use std::sync::Arc;
use vstore_codec::Transcoder;
use vstore_ingest::{IngestReport, IngestionPipeline, LiveIngestor};
use vstore_ops::OperatorLibrary;
use vstore_profiler::{Profiler, ProfilerConfig};
use vstore_query::QueryEngine;
use vstore_sim::{CodingCostModel, VirtualClock};
use vstore_storage::{SegmentStore, StoreStats};

/// Options controlling a [`VStore`] instance.
#[derive(Debug, Clone)]
pub struct VStoreOptions {
    /// Configuration-engine options (spaces, strategy, budgets, lifespan).
    pub engine: EngineOptions,
    /// Profiler configuration (clip length, per-operator datasets).
    pub profiler: ProfilerConfig,
    /// Runtime parallelism: store shards, ingest workers, query prefetch.
    /// Defaults to `shards = 8` and worker counts sized to the host's cores;
    /// [`RuntimeOptions::sequential`] reproduces the serial runtime exactly.
    /// Validated at [`VStore::open`] — zeroed knobs are rejected.
    pub runtime: RuntimeOptions,
    /// Which storage backend the segment store runs on: the local
    /// filesystem (default) or an in-memory backend for tests and benches.
    pub backend: BackendOptions,
    /// The cold-storage tier: disabled by default (erosion deletes, byte-
    /// identical to the untiered store). With a cold backend configured,
    /// erosion **demotes** segments to an object-store-style cold tier and
    /// queries promote them back on access. Validated at [`VStore::open`].
    pub tier: TierOptions,
    /// Request tracing: off by default (one relaxed atomic load per span
    /// site). [`TraceOptions::enabled`] turns on head-sampled tracing with
    /// always-capture for slow requests. Validated at [`VStore::open`].
    pub trace: TraceOptions,
}

impl Default for VStoreOptions {
    fn default() -> Self {
        VStoreOptions {
            engine: EngineOptions::default(),
            profiler: ProfilerConfig::paper_evaluation(),
            runtime: RuntimeOptions::default(),
            backend: BackendOptions::default(),
            tier: TierOptions::default(),
            trace: TraceOptions::default(),
        }
    }
}

impl VStoreOptions {
    /// Options sized for fast tests and examples: the reduced fidelity space
    /// and 3-second profiling clips.
    pub fn fast() -> Self {
        VStoreOptions {
            engine: EngineOptions {
                fidelity_space: vstore_types::FidelitySpace::reduced(),
                ..EngineOptions::default()
            },
            profiler: ProfilerConfig::fast_test(),
            runtime: RuntimeOptions::default(),
            backend: BackendOptions::default(),
            tier: TierOptions::default(),
            trace: TraceOptions::default(),
        }
    }

    /// Replace the runtime parallelism options.
    pub fn with_runtime(mut self, runtime: RuntimeOptions) -> Self {
        self.runtime = runtime;
        self
    }

    /// Enable the two-tier segment cache on the read path: `cache_bytes`
    /// of raw segment bytes (tier 1) and `decoded_entries` decoded-frame
    /// entries (tier 2), each split across the store's shards. Either knob
    /// may be 0 to disable that tier; both default to 0 (disabled).
    pub fn with_cache(mut self, cache_bytes: u64, decoded_entries: usize) -> Self {
        self.runtime = self.runtime.with_cache(cache_bytes, decoded_entries);
        self
    }

    /// Replace the storage backend selection.
    pub fn with_backend(mut self, backend: BackendOptions) -> Self {
        self.backend = backend;
        self
    }

    /// Replace the tiering options (see [`TierOptions`]). With a cold
    /// backend configured, erosion demotes instead of deleting.
    pub fn with_tier(mut self, tier: TierOptions) -> Self {
        self.tier = tier;
        self
    }

    /// Enable the cold tier on the chosen backend with default tiering
    /// knobs (shorthand for `with_tier(TierOptions::cold(backend))`).
    pub fn with_cold_backend(self, backend: BackendOptions) -> Self {
        self.with_tier(TierOptions::cold(backend))
    }

    /// Replace the tracing options (see [`TraceOptions`]);
    /// `with_trace(TraceOptions::enabled())` turns request tracing on with
    /// the default sampling knobs.
    pub fn with_trace(mut self, trace: TraceOptions) -> Self {
        self.trace = trace;
        self
    }
}

/// A combined, operator-facing snapshot of store, cache and serving
/// statistics, as returned by [`VStore::stats_report`]. `Display` renders a
/// compact multi-line report suitable for logs and consoles; every rate
/// renders `0%` on an empty store — never NaN.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReport {
    /// Aggregate store statistics across every shard.
    pub store: StoreStats,
    /// Aggregate cache statistics across every shard (all zeros when the
    /// cache is disabled).
    pub cache: CacheStats,
    /// Per-shard store statistics, in shard order.
    pub shards: Vec<StoreStats>,
    /// Per-shard cache statistics, in shard order (empty when the cache is
    /// disabled).
    pub shard_caches: Vec<CacheStats>,
    /// Tiering statistics — resident bytes per tier, demotions/promotions,
    /// cold-hit latency (`None` when no cold tier is configured).
    pub tier: Option<TierStats>,
    /// Aggregate serving-layer statistics across every front end started
    /// with [`VStore::serve`] or [`VStore::serve_net`] (`None` when none
    /// has been started).
    pub serve: Option<ServeStats>,
    /// Aggregate network-layer statistics across every socket front end
    /// started with [`VStore::serve_net`] (`None` when none has been
    /// started).
    pub net: Option<NetStats>,
    /// Aggregate live-ingest statistics across every ingestor started with
    /// [`VStore::live_ingest`] (`None` when none has been started).
    pub live: Option<LiveStats>,
}

impl std::fmt::Display for StatsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "store: {} segments, {} live, {} on disk ({:.0}% garbage), \
             {} writes, {} reads",
            self.store.live_segments,
            self.store.live_size(),
            vstore_types::ByteSize(self.store.disk_bytes),
            self.store.garbage_ratio() * 100.0,
            self.store.writes,
            self.store.reads,
        )?;
        if self.shard_caches.is_empty() {
            writeln!(f, "cache: disabled")?;
        } else {
            writeln!(f, "cache: {}", self.cache)?;
        }
        if let Some(tier) = &self.tier {
            writeln!(f, "{tier}")?;
        }
        if let Some(serve) = &self.serve {
            writeln!(f, "{serve}")?;
        }
        if let Some(net) = &self.net {
            writeln!(f, "{net}")?;
        }
        if let Some(live) = &self.live {
            writeln!(f, "{live}")?;
        }
        for (i, shard) in self.shards.iter().enumerate() {
            write!(
                f,
                "  shard {i:03}: {} segments, {} live",
                shard.live_segments,
                shard.live_size(),
            )?;
            match self.shard_caches.get(i) {
                Some(cache) if !cache.is_idle() => writeln!(
                    f,
                    " | cache {}/{} raw hits, {}/{} decoded hits",
                    cache.raw_hits,
                    cache.raw_hits.saturating_add(cache.raw_misses),
                    cache.decoded_hits,
                    cache.decoded_hits.saturating_add(cache.decoded_misses),
                )?,
                _ => writeln!(f)?,
            }
        }
        Ok(())
    }
}

/// The active configuration slot: an epoch counter plus the configuration
/// shared (via `Arc`) with every request that started under it.
#[derive(Debug, Default)]
struct ConfigSlot {
    epoch: u64,
    config: Option<Arc<Configuration>>,
}

/// Everything a [`VStore`] handle points at. One instance exists per opened
/// store, shared by every clone of the handle.
struct VStoreInner {
    profiler: Arc<Profiler>,
    engine: ConfigurationEngine,
    store: Arc<SegmentStore>,
    /// The unified read path: one shard-aware, two-tier segment cache
    /// shared by the query engine (reads) and the ingestion pipeline
    /// (invalidating writes, including erosion).
    reader: Arc<SegmentReader>,
    /// The cold-storage tiering engine, when a cold backend is configured:
    /// erosion demotes onto its migration queue and cold read hits promote
    /// through the shared reader. Dropping the inner drains and joins the
    /// migration workers.
    tier: Option<Arc<TierEngine>>,
    /// Shared with live-ingest worker threads, which outlive any one
    /// `&self` borrow.
    ingest: Arc<IngestionPipeline>,
    queries: QueryEngine,
    /// Session default for the query planner; individual requests override
    /// it with [`QueryRequest::with_planner`].
    query_planner: bool,
    active: RwLock<ConfigSlot>,
    clock: VirtualClock,
    /// Serving front ends started through [`VStore::serve`];
    /// [`VStore::stats_report`] folds them in.
    serving: RwLock<ServeRegistry>,
    /// Live ingestors started through [`VStore::live_ingest`];
    /// [`VStore::stats_report`] folds them in.
    live: RwLock<LiveRegistry>,
    /// Socket front ends started through [`VStore::serve_net`];
    /// [`VStore::stats_report`] folds them in (the inner request-layer
    /// probes live in `serving`).
    net: RwLock<NetRegistry>,
    /// The request tracer: hands out trace contexts to serve front ends
    /// and in-process request builders, and owns the bounded trace rings.
    /// Off by default — `begin` is one relaxed atomic load.
    tracer: Arc<Tracer>,
    /// The unified metrics registry. Every stats source registers a
    /// collector at assembly ([`crate::metrics::register_collectors`]);
    /// snapshots travel over the serve wire as
    /// [`ServeResponse::Metrics`].
    metrics: MetricsRegistry,
}

/// The store's view of its serving front ends: live probes plus the folded
/// final counters of servers that have shut down. Retiring dead probes
/// keeps the registry bounded no matter how many `serve` calls the store's
/// lifetime sees, while their request history stays in the report; a
/// retired server's `workers`/`queue_capacity` are no longer provisioned,
/// so only live servers contribute capacity.
#[derive(Default)]
struct ServeRegistry {
    probes: Vec<vstore_serve::ServeProbe>,
    retired: Option<ServeStats>,
}

impl ServeRegistry {
    /// Fold every live probe plus the retired history into one aggregate
    /// (`None` before the first `serve`), dropping probes of servers that
    /// have shut down.
    fn aggregate(&mut self) -> Option<ServeStats> {
        self.probes.retain(|probe| {
            if probe.is_live() {
                return true;
            }
            let mut finals = probe.stats();
            finals.workers = 0;
            finals.queue_capacity = 0;
            finals.queue_depth = 0;
            self.retired
                .get_or_insert_with(ServeStats::default)
                .accumulate(&finals);
            false
        });
        if self.probes.is_empty() && self.retired.is_none() {
            return None;
        }
        let mut total = self.retired.clone().unwrap_or_default();
        for probe in &self.probes {
            total.accumulate(&probe.stats());
        }
        Some(total)
    }
}

/// The store's view of its live ingestors, mirroring [`ServeRegistry`]:
/// live probes plus the folded final counters of ingestors that have shut
/// down. A retired ingestor's provisioned capacity (workers, queue) and
/// in-force degradation level are zeroed — only its history accumulates.
#[derive(Default)]
struct LiveRegistry {
    probes: Vec<LiveProbe>,
    retired: Option<LiveStats>,
}

impl LiveRegistry {
    /// Fold every live probe plus the retired history into one aggregate
    /// (`None` before the first `live_ingest`), dropping probes of
    /// ingestors that have shut down.
    fn aggregate(&mut self) -> Option<LiveStats> {
        self.probes.retain(|probe| {
            if probe.is_live() {
                return true;
            }
            let mut finals = probe.stats();
            finals.workers = 0;
            finals.queue_capacity = 0;
            finals.queue_depth = 0;
            finals.current_level = 0;
            self.retired
                .get_or_insert_with(LiveStats::default)
                .accumulate(&finals);
            false
        });
        if self.probes.is_empty() && self.retired.is_none() {
            return None;
        }
        let mut total = self.retired.clone().unwrap_or_default();
        for probe in &self.probes {
            total.accumulate(&probe.stats());
        }
        Some(total)
    }
}

/// The store's view of its socket front ends, mirroring [`ServeRegistry`]:
/// live probes plus the folded final counters of front ends that have shut
/// down. A retired front end's provisioned capacity (event loops, active
/// connections) is zeroed — only its traffic history accumulates.
#[derive(Default)]
struct NetRegistry {
    probes: Vec<NetProbe>,
    retired: Option<NetStats>,
}

impl NetRegistry {
    /// Fold every live probe plus the retired history into one aggregate
    /// (`None` before the first `serve_net`), dropping probes of front
    /// ends that have shut down.
    fn aggregate(&mut self) -> Option<NetStats> {
        self.probes.retain(|probe| {
            if probe.is_live() {
                return true;
            }
            let mut finals = probe.stats();
            finals.event_loops = 0;
            finals.active_connections = 0;
            self.retired
                .get_or_insert_with(NetStats::default)
                .accumulate(&finals);
            false
        });
        if self.probes.is_empty() && self.retired.is_none() {
            return None;
        }
        let mut total = self.retired.clone().unwrap_or_default();
        for probe in &self.probes {
            total.accumulate(&probe.stats());
        }
        Some(total)
    }
}

/// The VStore service handle.
///
/// Cloning is an `Arc` bump: all clones share one store, one ingestion
/// pipeline, one query engine and one resource ledger, and every method
/// takes `&self` — the handle is made to be cloned into however many ingest
/// and query threads the deployment needs. Configuration changes are atomic
/// epoch swaps ([`configure`](Self::configure) /
/// [`install_configuration`](Self::install_configuration)); requests in
/// flight keep the configuration they started with.
#[derive(Clone)]
pub struct VStore {
    inner: Arc<VStoreInner>,
}

impl std::fmt::Debug for VStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VStore")
            .field("store_dir", &self.inner.store.dir())
            .field("shards", &self.inner.store.shard_count())
            .field("epoch", &self.inner.active.read().epoch)
            .field("handles", &Arc::strong_count(&self.inner))
            .finish()
    }
}

impl VStore {
    /// Open a store rooted at `dir` (ignored by the in-memory backend).
    ///
    /// Validates `options.runtime` first: zeroed knobs are rejected with
    /// [`VStoreError::InvalidArgument`] instead of panicking deep inside the
    /// store.
    pub fn open(dir: impl AsRef<Path>, options: VStoreOptions) -> Result<VStore> {
        options.runtime.validate()?;
        let store = Arc::new(SegmentStore::open_with_options(
            dir,
            options.backend,
            options.runtime.shards,
        )?);
        Self::assemble(store, options)
    }

    /// Open a store in a fresh temporary directory (tests and examples).
    pub fn open_temp(tag: &str, options: VStoreOptions) -> Result<VStore> {
        Self::open(SegmentStore::temp_dir(tag), options)
    }

    /// Open a store over an externally constructed [`StorageBackend`]
    /// (`options.backend` is ignored). This is how a store is reopened on a
    /// backend that outlives the handle, and how custom backends plug in.
    pub fn open_with_backend(
        backend: Arc<dyn StorageBackend>,
        options: VStoreOptions,
    ) -> Result<VStore> {
        options.runtime.validate()?;
        let store = Arc::new(SegmentStore::open_with_backend(
            backend,
            options.runtime.shards,
        )?);
        Self::assemble(store, options)
    }

    fn assemble(store: Arc<SegmentStore>, options: VStoreOptions) -> Result<VStore> {
        options.tier.validate()?;
        options.trace.validate()?;
        let tracer = Tracer::new(options.trace);
        let runtime = options.runtime;
        let clock = VirtualClock::new();
        let library = OperatorLibrary::paper_testbed();
        let coding = CodingCostModel::paper_testbed();
        let profiler = Arc::new(Profiler::new(library.clone(), coding, options.profiler));
        // One reader shared by ingest and query: queries read through its
        // two cache tiers, and every ingest put / erosion delete invalidates
        // them, so a cached read can never observe stale bytes.
        let reader = Arc::new(SegmentReader::new(
            Arc::clone(&store),
            runtime.cache_bytes,
            runtime.decoded_cache_entries,
        ));
        // The cold tier, when configured: an object-store-style ColdBackend
        // (rooted under `<store dir>/cold-tier` for the fs backend) holding
        // its own segment store. Erosion demotes onto the engine's bounded
        // migration queue; cold read hits promote back through the shared
        // reader, epoch-invalidating both cache tiers.
        let tier = match options.tier.cold_backend {
            Some(cold_options) => {
                let root = match store.dir() {
                    dir if dir == std::path::Path::new("<mem>") => {
                        SegmentStore::temp_dir("cold-tier")
                    }
                    dir => dir.join("cold-tier"),
                };
                let device = cold_options.create(&root)?;
                let cold_backend = Arc::new(vstore_storage::ColdBackend::with_chunk_bytes(
                    device,
                    options.tier.cold_chunk_bytes,
                )?);
                let cold_store = Arc::new(SegmentStore::open_with_backend(
                    cold_backend,
                    runtime.shards,
                )?);
                let engine = TierEngine::start(Arc::clone(&reader), cold_store, options.tier)?;
                reader.attach_tier(&engine);
                Some(engine)
            }
            None => None,
        };
        let ingest = Arc::new(
            IngestionPipeline::new(Arc::clone(&store), Transcoder::new(coding), clock.clone())
                .with_workers(runtime.ingest_workers)
                .with_ingest_budget(options.engine.ingest_budget_cores)
                .with_reader(Arc::clone(&reader)),
        );
        let engine = ConfigurationEngine::new(Arc::clone(&profiler), options.engine);
        let queries = QueryEngine::new(
            Arc::clone(&store),
            library,
            Transcoder::new(coding),
            clock.clone(),
        )
        .with_prefetch(runtime.query_prefetch)
        .with_reader(Arc::clone(&reader));
        let handle = VStore {
            inner: Arc::new(VStoreInner {
                profiler,
                engine,
                store,
                reader,
                tier,
                ingest,
                queries,
                query_planner: runtime.query_planner,
                active: RwLock::new(ConfigSlot::default()),
                clock,
                serving: RwLock::new(ServeRegistry::default()),
                live: RwLock::new(LiveRegistry::default()),
                net: RwLock::new(NetRegistry::default()),
                tracer,
                metrics: MetricsRegistry::new(),
            }),
        };
        metrics::register_collectors(&handle);
        Ok(handle)
    }

    /// The profiler (exposed for experiments that report profiling cost).
    pub fn profiler(&self) -> &Profiler {
        &self.inner.profiler
    }

    /// The configuration engine.
    pub fn engine(&self) -> &ConfigurationEngine {
        &self.inner.engine
    }

    /// The segment store statistics (aggregated across shards).
    #[must_use]
    pub fn store_stats(&self) -> StoreStats {
        self.inner.store.stats()
    }

    /// Per-shard segment store statistics, in shard order.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<StoreStats> {
        self.inner.store.shard_stats()
    }

    /// Aggregate segment-cache statistics across every shard (all zeros
    /// when the cache is disabled).
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.reader.cache_stats()
    }

    /// Per-shard segment-cache statistics, in shard order (empty when the
    /// cache is disabled).
    #[must_use]
    pub fn shard_cache_stats(&self) -> Vec<CacheStats> {
        self.inner.reader.shard_cache_stats()
    }

    /// Tiering statistics (`None` when no cold tier is configured).
    #[must_use]
    pub fn tier_stats(&self) -> Option<TierStats> {
        self.inner.tier.as_ref().map(|tier| tier.stats())
    }

    /// One combined operator-facing report: store statistics and cache
    /// statistics, aggregate and per shard.
    ///
    /// ```no_run
    /// # use vstore::{VStore, VStoreOptions};
    /// # let store = VStore::open_temp("report", VStoreOptions::default()).unwrap();
    /// println!("{}", store.stats_report());
    /// ```
    #[must_use]
    pub fn stats_report(&self) -> StatsReport {
        let serve = self.inner.serving.write().aggregate();
        let live = self.inner.live.write().aggregate();
        let net = self.inner.net.write().aggregate();
        StatsReport {
            store: self.store_stats(),
            cache: self.cache_stats(),
            shards: self.shard_stats(),
            shard_caches: self.shard_cache_stats(),
            tier: self.tier_stats(),
            serve,
            net,
            live,
        }
    }

    /// Aggregate network-layer statistics across every socket front end
    /// started with [`serve_net`](Self::serve_net) (`None` when none has
    /// been started). The same aggregate appears in
    /// [`stats_report`](Self::stats_report) and over the serve wire
    /// ([`ServeRequest::NetStats`]).
    #[must_use]
    pub fn net_stats(&self) -> Option<NetStats> {
        self.inner.net.write().aggregate()
    }

    /// Aggregate live-ingest statistics across every ingestor started with
    /// [`live_ingest`](Self::live_ingest) (`None` when none has been
    /// started). The same aggregate appears in
    /// [`stats_report`](Self::stats_report) and over the serve wire.
    #[must_use]
    pub fn live_stats(&self) -> Option<LiveStats> {
        self.inner.live.write().aggregate()
    }

    /// A snapshot of every registered metric family — store, cache, tier,
    /// profiler, tracer, plus the serving/network/live aggregates once
    /// those front ends exist. Render it with
    /// [`MetricsSnapshot::to_prometheus`] or [`MetricsSnapshot::to_json`];
    /// the same snapshot travels over the serve wire
    /// ([`ServeRequest::MetricsSnapshot`]).
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// The metrics registry, for registering deployment-specific
    /// collectors alongside the built-in ones.
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// The request tracer. Shared with every serve front end started from
    /// this store; [`Tracer::stats`] reports sampling behaviour.
    #[must_use]
    pub fn tracer(&self) -> Arc<Tracer> {
        Arc::clone(&self.inner.tracer)
    }

    /// Drain up to `max_traces` committed traces from the rings
    /// (`0` = all), most recent first per shard. The dump renders as
    /// Chrome trace-event JSON ([`TraceDump::to_chrome_json`]) or a
    /// human span-tree report ([`TraceDump::report`]).
    #[must_use]
    pub fn trace_dump(&self, max_traces: usize) -> TraceDump {
        self.inner.tracer.dump(max_traces)
    }

    /// The trace context for one facade-level request: the caller's
    /// installed context when one is active (a serve worker installed the
    /// trace begun at frame decode), else a fresh trace begun here — so
    /// direct `store.query(..)` calls trace too.
    fn request_trace(&self, root: &'static str) -> TraceContext {
        let current = vstore_obs::current();
        if current.is_active() {
            current
        } else {
            self.inner.tracer.begin(root)
        }
    }

    /// The root directory of the segment store (`<mem>` for the in-memory
    /// backend).
    pub fn store_dir(&self) -> std::path::PathBuf {
        self.inner.store.dir()
    }

    /// The shared virtual clock (ingestion + query resource ledger).
    pub fn clock(&self) -> &VirtualClock {
        &self.inner.clock
    }

    /// The active configuration, if one has been installed. The returned
    /// `Arc` is a stable snapshot: a concurrent
    /// [`configure`](Self::configure) swaps the slot but never mutates a
    /// configuration already handed out.
    pub fn configuration(&self) -> Option<Arc<Configuration>> {
        self.inner.active.read().config.clone()
    }

    /// The configuration epoch: 0 before any configuration is installed,
    /// then incremented by every [`configure`](Self::configure) /
    /// [`install_configuration`](Self::install_configuration).
    pub fn configuration_epoch(&self) -> u64 {
        self.inner.active.read().epoch
    }

    /// Derive (or re-derive) the video format configuration for a consumer
    /// set via backward derivation, and make it the active configuration.
    ///
    /// Derivation runs outside the configuration lock — concurrent requests
    /// keep serving the previous epoch until the atomic swap at the end.
    pub fn configure(&self, consumers: &[Consumer]) -> Result<Arc<Configuration>> {
        let config = self.inner.engine.derive(consumers)?;
        Ok(self.install_configuration(config))
    }

    /// Install an externally derived configuration (e.g. one of the §6.2
    /// baselines) as the active configuration, atomically advancing the
    /// epoch. Requests in flight keep the configuration they started with.
    pub fn install_configuration(&self, configuration: Configuration) -> Arc<Configuration> {
        let config = Arc::new(configuration);
        let mut slot = self.inner.active.write();
        slot.epoch += 1;
        slot.config = Some(Arc::clone(&config));
        config
    }

    /// Snapshot the active configuration for one request.
    fn active(&self) -> Result<Arc<Configuration>> {
        self.inner.active.read().config.clone().ok_or_else(|| {
            VStoreError::InvalidState("no configuration derived yet; call configure()".into())
        })
    }

    /// Ingest a contiguous range of 8-second segments of a stream into
    /// every storage format of the active configuration.
    pub fn ingest(&self, request: IngestRequest) -> Result<IngestReport> {
        request.validate()?;
        let config = self.active()?;
        let trace = self.request_trace("ingest");
        let _installed = vstore_obs::install(&trace);
        let _span = trace.span("ingest.execute");
        self.inner.ingest.ingest_segments(
            &request.source,
            request.first_segment,
            request.count,
            &config,
        )
    }

    /// Execute a query over stored segments of a stream. The query planner
    /// runs when the request asks for it ([`QueryRequest::with_planner`]) or,
    /// absent a per-request override, when the session's
    /// `RuntimeOptions::query_planner` default is on; otherwise the query is
    /// an exact scan.
    pub fn query(&self, request: QueryRequest) -> Result<QueryResult> {
        request.validate()?;
        let config = self.active()?;
        let plan = vstore_query::PlanOptions {
            enabled: request.planner.unwrap_or(self.inner.query_planner),
            skip_threshold: request.skip_threshold,
        };
        let trace = self.request_trace("query");
        let _installed = vstore_obs::install(&trace);
        let _span = trace.span("query.execute");
        self.inner.queries.execute_planned(
            &request.stream,
            &request.spec,
            &config,
            request.first_segment,
            request.count,
            &plan,
        )
    }

    /// Apply the erosion plan of the active configuration to a stream at a
    /// given video age. With no cold tier configured the planned fraction
    /// of segments is **deleted** (the pre-tiering behaviour); with one
    /// ([`VStoreOptions::with_cold_backend`]) it is **demoted** to cold
    /// storage instead and stays queryable. The report says which happened,
    /// in segments and bytes; the golden format is never touched.
    pub fn erode(&self, request: ErodeRequest) -> Result<ErodeReport> {
        request.validate()?;
        let config = self.active()?;
        let trace = self.request_trace("erode");
        let _installed = vstore_obs::install(&trace);
        let _span = trace.span("erode.execute");
        self.inner
            .ingest
            .apply_erosion(&request.stream, &config, request.age_days)
    }

    /// Start a connection-serving front end over this store: a bounded
    /// request queue with back-pressure (`Busy` or blocking, per
    /// [`ServeOptions`]) drained by a thread-per-core worker pool of cloned
    /// handles. The returned [`ServerHandle`] accepts client
    /// [`Connection`]s; its statistics are folded into
    /// [`stats_report`](Self::stats_report) for as long as the store lives.
    ///
    /// ```no_run
    /// # use vstore::{ServeOptions, ServeRequest, QuerySpec, VStore, VStoreOptions};
    /// # let store = VStore::open_temp("serve", VStoreOptions::default()).unwrap();
    /// let server = store.serve(ServeOptions::default()).unwrap();
    /// let mut client = server.connect();
    /// let response = client.call(ServeRequest::Query {
    ///     stream: "jackson".into(),
    ///     spec: QuerySpec::query_a(0.9),
    ///     first_segment: 0,
    ///     count: 4,
    /// }).unwrap();
    /// println!("{response:?}\n{}", store.stats_report());
    /// ```
    pub fn serve(&self, options: ServeOptions) -> Result<ServerHandle> {
        let server = vstore_serve::Server::start(self.clone(), options)?;
        self.inner.serving.write().probes.push(server.probe());
        Ok(server)
    }

    /// Start a **socket** front end over this store: a TCP listener whose
    /// event loops multiplex pipelined, length-prefixed wire-v4 frames
    /// (per-frame correlation ids) over the same bounded queue and worker
    /// pool as [`serve`](Self::serve), with adaptive response batching
    /// into vectored writes and pooled per-connection buffers. Bind to
    /// port 0 to let the OS pick ([`NetServerHandle::local_addr`]).
    ///
    /// Both layers fold into [`stats_report`](Self::stats_report): the
    /// request-layer [`ServeStats`] alongside in-process servers, and the
    /// network-layer [`NetStats`] (connections, frames, batch sizes,
    /// write syscalls, buffer-pool hit rate) in its own section.
    ///
    /// ```no_run
    /// # use vstore::{NetClient, NetOptions, ServeOptions, ServeRequest, VStore, VStoreOptions};
    /// # let store = VStore::open_temp("serve-net", VStoreOptions::default()).unwrap();
    /// let server = store
    ///     .serve_net("127.0.0.1:0", NetOptions::default(), ServeOptions::default())
    ///     .unwrap();
    /// let mut client = NetClient::connect(server.local_addr()).unwrap();
    /// let response = client.call(&ServeRequest::LiveStats).unwrap();
    /// println!("{response:?}\n{}", store.stats_report());
    /// ```
    pub fn serve_net(
        &self,
        addr: impl std::net::ToSocketAddrs,
        net: NetOptions,
        serve: ServeOptions,
    ) -> Result<NetServerHandle> {
        let server = NetServer::start(self.clone(), addr, net, serve)?;
        self.inner.serving.write().probes.push(server.serve_probe());
        self.inner.net.write().probes.push(server.probe());
        Ok(server)
    }

    /// Start a live ingestor for `source` under the active configuration: a
    /// bounded, back-pressured queue of camera segments drained by
    /// background transcode workers through the shared ingestion pipeline.
    ///
    /// When transcoding cannot keep up, the ingestor **degrades instead of
    /// stalling**: a lag controller steps fidelity/coverage down a declared
    /// [`DegradationLadder`] (coarser frame sampling on non-golden formats,
    /// then golden-only) as the backlog grows, and steps back up as it
    /// drains. Offers beyond the queue depth are shed
    /// ([`QueueFullPolicy::Reject`]) or block the caller
    /// ([`QueueFullPolicy::Block`]), per [`LiveIngestOptions::on_full`] —
    /// the store itself never stalls. The ingestor's [`LiveStats`] fold
    /// into [`stats_report`](Self::stats_report) for as long as the store
    /// lives; dropping (or [`shutdown`](LiveIngestHandle::shutdown)-ing)
    /// the handle drains every accepted segment first.
    ///
    /// The ladder is built from the configuration active **now**; a later
    /// [`configure`](Self::configure) does not retroactively change a
    /// running ingestor.
    ///
    /// ```no_run
    /// # use vstore::{LiveIngestOptions, QuerySpec, VStore, VStoreOptions};
    /// # use vstore::datasets::{Dataset, LiveSource, LoadProfile, VideoSource};
    /// # let store = VStore::open_temp("live", VStoreOptions::default()).unwrap();
    /// # store.configure(&QuerySpec::query_a(0.9).consumers()).unwrap();
    /// let mut camera = LiveSource::new(
    ///     VideoSource::new(Dataset::Jackson),
    ///     LoadProfile::Steady { segments_per_sec: 0.5 },
    /// ).unwrap();
    /// let live = store.live_ingest(
    ///     camera.source().clone(),
    ///     LiveIngestOptions::default(),
    /// ).unwrap();
    /// live.offer_range(camera.poll(8.0)).unwrap();
    /// let stats = live.shutdown();
    /// println!("{stats}");
    /// ```
    pub fn live_ingest(
        &self,
        source: datasets::VideoSource,
        options: LiveIngestOptions,
    ) -> Result<LiveIngestHandle> {
        let config = self.active()?;
        let handle = LiveIngestor::start(Arc::clone(&self.inner.ingest), source, &config, options)?;
        self.inner.live.write().probes.push(handle.probe());
        Ok(handle)
    }
}

/// The serving front end drives `VStore` through this impl: each wire
/// request is rebuilt into the corresponding validating request builder, so
/// a request served through [`VStore::serve`] takes exactly the same path —
/// validation included — as one issued directly on the handle.
impl VideoService for VStore {
    fn ingest(
        &self,
        source: &datasets::VideoSource,
        first_segment: u64,
        count: u64,
    ) -> Result<IngestReport> {
        VStore::ingest(
            self,
            IngestRequest::new(source)
                .starting_at(first_segment)
                .segments(count),
        )
    }

    fn query(
        &self,
        stream: &str,
        spec: &QuerySpec,
        first_segment: u64,
        count: u64,
    ) -> Result<QueryResult> {
        VStore::query(
            self,
            QueryRequest::new(stream, spec)
                .starting_at(first_segment)
                .segments(count),
        )
    }

    fn erode(&self, stream: &str, age_days: u32) -> Result<ErodeReport> {
        VStore::erode(self, ErodeRequest::new(stream).at_age_days(age_days))
    }

    fn live_stats(&self) -> Result<LiveStats> {
        Ok(VStore::live_stats(self).unwrap_or_default())
    }

    fn net_stats(&self) -> Result<NetStats> {
        Ok(VStore::net_stats(self).unwrap_or_default())
    }

    fn metrics(&self) -> Result<MetricsSnapshot> {
        Ok(self.metrics_snapshot())
    }

    fn trace_dump(&self, max_traces: u64) -> Result<TraceDump> {
        Ok(VStore::trace_dump(
            self,
            usize::try_from(max_traces).unwrap_or(usize::MAX),
        ))
    }

    fn tracer(&self) -> Arc<Tracer> {
        VStore::tracer(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstore_datasets::{Dataset, VideoSource};

    /// The service-handle contract of this redesign, checked at compile
    /// time.
    #[test]
    fn handle_is_clone_send_sync() {
        fn assert_service_handle<T: Clone + Send + Sync + 'static>() {}
        assert_service_handle::<VStore>();
    }

    #[test]
    fn facade_lifecycle() {
        let store = VStore::open_temp("facade", VStoreOptions::fast()).unwrap();
        assert!(store.configuration().is_none());
        assert_eq!(store.configuration_epoch(), 0);
        let source = VideoSource::new(Dataset::Jackson);
        assert!(store.ingest(IngestRequest::new(&source)).is_err());

        let query = QuerySpec::query_a(0.8);
        store.configure(&query.consumers()).unwrap();
        assert!(store.configuration().is_some());
        assert_eq!(store.configuration_epoch(), 1);

        let report = store.ingest(IngestRequest::new(&source)).unwrap();
        assert!(report.segments_written >= 1);
        assert!(store.store_stats().live_segments >= 1);

        let result = store.query(QueryRequest::new("jackson", &query)).unwrap();
        assert!(result.speed.factor() > 0.0);
        std::fs::remove_dir_all(store.store_dir()).ok();
    }

    #[test]
    fn open_rejects_zeroed_runtime_knobs() {
        let options = VStoreOptions::fast().with_runtime(RuntimeOptions {
            shards: 0,
            ingest_workers: 1,
            query_prefetch: 1,
            ..RuntimeOptions::sequential()
        });
        let err = VStore::open_temp("zero-shards", options).unwrap_err();
        assert!(matches!(err, VStoreError::InvalidArgument(_)), "{err}");

        let options = VStoreOptions::fast().with_runtime(RuntimeOptions {
            shards: 1,
            ingest_workers: 1,
            query_prefetch: 0,
            ..RuntimeOptions::sequential()
        });
        let err = VStore::open_temp("zero-prefetch", options).unwrap_err();
        assert!(matches!(err, VStoreError::InvalidArgument(_)), "{err}");
    }

    #[test]
    fn invalid_requests_are_rejected_before_the_runtime() {
        let store = VStore::open_temp(
            "bad-requests",
            VStoreOptions::fast().with_backend(BackendOptions::Mem),
        )
        .unwrap();
        let query = QuerySpec::query_a(0.8);
        // Even with no configuration installed, validation fires first.
        let source = VideoSource::new(Dataset::Jackson);
        let err = store
            .ingest(IngestRequest::new(&source).segments(0))
            .unwrap_err();
        assert!(matches!(err, VStoreError::InvalidArgument(_)), "{err}");
        let err = store.query(QueryRequest::new("", &query)).unwrap_err();
        assert!(matches!(err, VStoreError::InvalidArgument(_)), "{err}");
        let err = store.erode(ErodeRequest::new("")).unwrap_err();
        assert!(matches!(err, VStoreError::InvalidArgument(_)), "{err}");
    }

    /// Regression (stats rate math): the report of a freshly opened, empty
    /// store renders `0%` rates and no NaN; a report with saturated
    /// counters renders without overflowing.
    #[test]
    fn stats_report_renders_zero_rates_on_an_empty_store_and_survives_saturation() {
        let store = VStore::open_temp(
            "empty-report",
            VStoreOptions::fast()
                .with_backend(BackendOptions::Mem)
                .with_cache(64 << 20, 16),
        )
        .unwrap();
        let report = store.stats_report();
        let rendered = report.to_string();
        assert!(rendered.contains("(0% garbage)"), "{rendered}");
        assert!(rendered.contains("0/0 hits (0%)"), "{rendered}");
        assert!(!rendered.contains("NaN"), "{rendered}");
        assert!(report.serve.is_none(), "no server started yet");
        assert_eq!(report.cache.raw_hit_rate(), 0.0);
        assert_eq!(report.store.garbage_ratio(), 0.0);

        // Saturated counters: the Display math saturates instead of
        // panicking in debug builds.
        let mut saturated = report.clone();
        saturated.store.live_bytes = u64::MAX;
        saturated.store.disk_bytes = u64::MAX;
        saturated.store.writes = u64::MAX;
        saturated.cache.raw_hits = u64::MAX;
        saturated.cache.raw_misses = u64::MAX;
        saturated.shard_caches[0].raw_hits = u64::MAX;
        saturated.shard_caches[0].raw_misses = u64::MAX;
        saturated.serve = Some(ServeStats {
            submitted: u64::MAX,
            rejected_busy: u64::MAX,
            ..ServeStats::default()
        });
        let rendered = saturated.to_string();
        assert!(!rendered.contains("NaN"), "{rendered}");
        std::fs::remove_dir_all(store.store_dir()).ok();
    }

    /// The serving front end smoke test: serve a query through the bounded
    /// queue and see the serve section appear in `stats_report`.
    #[test]
    fn serve_front_end_answers_requests_and_reports_into_stats() {
        let store = VStore::open_temp(
            "serve-smoke",
            VStoreOptions::fast().with_backend(BackendOptions::Mem),
        )
        .unwrap();
        let query = QuerySpec::query_a(0.8);
        store.configure(&query.consumers()).unwrap();
        let source = VideoSource::new(Dataset::Jackson);
        store
            .ingest(IngestRequest::new(&source).segments(2))
            .unwrap();

        let server = store
            .serve(ServeOptions::default().with_workers(2).with_queue_depth(8))
            .unwrap();
        let mut client = server.connect();
        let direct = store
            .query(QueryRequest::new("jackson", &query).segments(2))
            .unwrap();
        let served = client
            .call(ServeRequest::Query {
                stream: "jackson".into(),
                spec: query.clone(),
                first_segment: 0,
                count: 2,
            })
            .unwrap();
        assert_eq!(served, ServeResponse::Query(direct));

        let report = store.stats_report();
        let serve = report.serve.clone().expect("serve stats folded in");
        assert_eq!(serve.completed, 1);
        assert_eq!(serve.query_latency.count(), 1);
        assert!(report.to_string().contains("serve:"), "{report}");
        drop(server);
        // A shut-down server is retired: its request history stays in the
        // report, but it no longer contributes provisioned capacity, and
        // repeated reports don't re-count it.
        let retired = store.stats_report().serve.unwrap();
        assert_eq!(retired.completed, 1);
        assert_eq!(retired.workers, 0);
        assert_eq!(retired.queue_capacity, 0);
        assert_eq!(store.stats_report().serve.unwrap().completed, 1);
        std::fs::remove_dir_all(store.store_dir()).ok();
    }

    #[test]
    fn cloned_handles_share_state_and_epochs_advance() {
        let store = VStore::open_temp(
            "clone-share",
            VStoreOptions::fast().with_backend(BackendOptions::Mem),
        )
        .unwrap();
        let clone = store.clone();
        let query = QuerySpec::query_a(0.8);
        let config = store.configure(&query.consumers()).unwrap();
        // The clone sees the configuration installed through the original.
        assert_eq!(clone.configuration_epoch(), 1);
        assert_eq!(clone.configuration().as_deref(), Some(&*config));

        let source = VideoSource::new(Dataset::Jackson);
        clone.ingest(IngestRequest::new(&source)).unwrap();
        assert_eq!(
            store.store_stats().live_segments,
            clone.store_stats().live_segments
        );

        // Reinstalling advances the epoch on every handle.
        clone.install_configuration((*config).clone());
        assert_eq!(store.configuration_epoch(), 2);
    }
}
