//! Facade-side observability wiring: the collectors that map every stats
//! source into the store's [`MetricsRegistry`](vstore_obs::MetricsRegistry),
//! and the stable machine-readable JSON rendering of [`StatsReport`].
//!
//! Ownership is deliberate. Component collectors (store, cache, tier,
//! profiler, tracer) capture their component `Arc` directly: the registry
//! lives *beside* those components in `VStoreInner` and none of them points
//! back at the inner, so no reference cycle can form. The serving, network
//! and live-ingest aggregates do live *inside* `VStoreInner`, so their
//! collectors hold a [`Weak`] handle and collect nothing once the store is
//! gone — a leaked boxed collector can never keep the store alive.

use crate::{StatsReport, VStore, VStoreInner};
use std::sync::{Arc, Weak};
use vstore_obs::json;
use vstore_obs::Metric;
use vstore_serve::LatencyHistogram;
use vstore_storage::CacheStats;

/// Register every stats source of a freshly assembled store into its
/// metrics registry. Called once from `VStore::assemble`, after the inner
/// `Arc` exists (the aggregate collectors need a `Weak` of it).
pub(crate) fn register_collectors(store: &VStore) {
    let inner = &store.inner;
    let registry = &inner.metrics;

    let segments = Arc::clone(&inner.store);
    registry.register(Box::new(move |out: &mut Vec<Metric>| {
        let s = segments.stats();
        out.push(Metric::gauge(
            "vstore_store_live_segments",
            "Live segments in the store",
            s.live_segments as f64,
        ));
        out.push(Metric::gauge(
            "vstore_store_live_bytes",
            "Bytes of live segment values",
            s.live_bytes as f64,
        ));
        out.push(Metric::gauge(
            "vstore_store_disk_bytes",
            "Bytes occupied on disk by all value logs (garbage included)",
            s.disk_bytes as f64,
        ));
        out.push(Metric::gauge(
            "vstore_store_log_files",
            "Value log files",
            s.log_files as f64,
        ));
        out.push(Metric::counter(
            "vstore_store_writes_total",
            "Records written since open (puts + deletes)",
            s.writes,
        ));
        out.push(Metric::counter(
            "vstore_store_reads_total",
            "Reads served since open",
            s.reads,
        ));
    }));

    let reader = Arc::clone(&inner.reader);
    registry.register(Box::new(move |out: &mut Vec<Metric>| {
        collect_cache(&reader.cache_stats(), out);
    }));

    if let Some(tier) = &inner.tier {
        let tier = Arc::clone(tier);
        registry.register(Box::new(move |out: &mut Vec<Metric>| {
            let t = tier.stats();
            out.push(Metric::gauge(
                "vstore_tier_hot_resident_bytes",
                "Live bytes resident in the hot store",
                t.hot_resident_bytes as f64,
            ));
            out.push(Metric::gauge(
                "vstore_tier_cold_resident_bytes",
                "Live bytes resident in the cold store",
                t.cold_resident_bytes as f64,
            ));
            out.push(Metric::gauge(
                "vstore_tier_cold_segments",
                "Segments held by the cold store",
                t.cold_segments as f64,
            ));
            out.push(Metric::counter(
                "vstore_tier_demotions_total",
                "Segments demoted hot to cold since open",
                t.demotions,
            ));
            out.push(Metric::counter(
                "vstore_tier_promotions_total",
                "Segments promoted cold to hot since open",
                t.promotions,
            ));
            out.push(Metric::counter(
                "vstore_tier_cold_hits_total",
                "Reads served by the cold tier",
                t.cold_hits,
            ));
            out.push(Metric::counter(
                "vstore_tier_cold_misses_total",
                "Hot misses that missed the cold tier too",
                t.cold_misses,
            ));
            out.push(Metric::counter(
                "vstore_tier_failed_demotions_total",
                "Demotions that failed (segment stayed hot)",
                t.failed_demotions,
            ));
            out.push(Metric::gauge(
                "vstore_tier_queue_depth",
                "Migration jobs waiting at snapshot time",
                t.queue_depth as f64,
            ));
            out.push(Metric::latency(
                "vstore_tier_cold_hit_latency_us",
                "Latency of cold-tier fetches (read + checksum + promote)",
                &t.cold_hit_latency,
            ));
        }));
    }

    let profiler = Arc::clone(&inner.profiler);
    registry.register(Box::new(move |out: &mut Vec<Metric>| {
        let p = profiler.stats();
        out.push(Metric::counter(
            "vstore_profiler_operator_runs_total",
            "Operator profiling runs executed (memo misses)",
            p.operator_runs as u64,
        ));
        out.push(Metric::counter(
            "vstore_profiler_operator_cache_hits_total",
            "Operator profiling requests served from the memo table",
            p.operator_cache_hits as u64,
        ));
        out.push(Metric::counter(
            "vstore_profiler_storage_runs_total",
            "Storage-format profiling runs executed (memo misses)",
            p.storage_runs as u64,
        ));
        out.push(Metric::counter(
            "vstore_profiler_storage_cache_hits_total",
            "Storage-format profiling requests served from the memo table",
            p.storage_cache_hits as u64,
        ));
        out.push(Metric::gauge(
            "vstore_profiler_modeled_seconds",
            "Modelled testbed wall-clock seconds spent profiling",
            p.modeled_seconds,
        ));
    }));

    let tracer = Arc::clone(&inner.tracer);
    registry.register(Box::new(move |out: &mut Vec<Metric>| {
        let t = tracer.stats();
        out.push(Metric::gauge(
            "vstore_trace_enabled",
            "Whether request tracing is enabled (1) or off (0)",
            if tracer.enabled() { 1.0 } else { 0.0 },
        ));
        out.push(Metric::counter(
            "vstore_trace_begun_total",
            "Traces begun (requests seen while tracing was enabled)",
            t.begun,
        ));
        out.push(Metric::counter(
            "vstore_trace_sampled_total",
            "Traces elected by head-sampling",
            t.sampled,
        ));
        out.push(Metric::counter(
            "vstore_trace_committed_total",
            "Traces committed to the rings (sampled or slow)",
            t.committed,
        ));
        out.push(Metric::counter(
            "vstore_trace_slow_total",
            "Committed traces that crossed the slow threshold",
            t.slow,
        ));
        out.push(Metric::counter(
            "vstore_trace_dropped_spans_total",
            "Spans evicted from the rings by capacity pressure",
            t.dropped_spans,
        ));
    }));

    let weak = Arc::downgrade(inner);
    registry.register(Box::new(move |out: &mut Vec<Metric>| {
        collect_aggregates(&weak, out);
    }));
}

/// The shared-cache rows (two tiers, aggregated across shards).
fn collect_cache(c: &CacheStats, out: &mut Vec<Metric>) {
    out.push(Metric::counter(
        "vstore_cache_raw_hits_total",
        "Tier-1 reads served from the raw-bytes cache",
        c.raw_hits,
    ));
    out.push(Metric::counter(
        "vstore_cache_raw_misses_total",
        "Tier-1 reads that went to the store",
        c.raw_misses,
    ));
    out.push(Metric::counter(
        "vstore_cache_raw_evictions_total",
        "Tier-1 entries evicted to make room",
        c.raw_evictions,
    ));
    out.push(Metric::gauge(
        "vstore_cache_raw_resident_bytes",
        "Bytes resident in the raw-bytes cache",
        c.raw_resident_bytes as f64,
    ));
    out.push(Metric::counter(
        "vstore_cache_decoded_hits_total",
        "Tier-2 reads served from the decoded-frames cache",
        c.decoded_hits,
    ));
    out.push(Metric::counter(
        "vstore_cache_decoded_misses_total",
        "Tier-2 reads that had to decode",
        c.decoded_misses,
    ));
    out.push(Metric::counter(
        "vstore_cache_decoded_evictions_total",
        "Tier-2 entries evicted to make room",
        c.decoded_evictions,
    ));
    out.push(Metric::gauge(
        "vstore_cache_decoded_entries",
        "Entries resident in the decoded-frames cache",
        c.decoded_entries as f64,
    ));
    out.push(Metric::counter(
        "vstore_cache_invalidations_total",
        "Cached entries dropped by writes (put / delete / erosion)",
        c.invalidations,
    ));
}

/// The serving / network / live-ingest aggregate rows. These registries
/// live inside `VStoreInner`, so the collector holds a `Weak` and goes
/// quiet once the store is dropped.
fn collect_aggregates(weak: &Weak<VStoreInner>, out: &mut Vec<Metric>) {
    let Some(inner) = weak.upgrade() else {
        return;
    };
    if let Some(s) = inner.serving.write().aggregate() {
        out.push(Metric::gauge(
            "vstore_serve_workers",
            "Worker threads draining the request queue",
            s.workers as f64,
        ));
        out.push(Metric::gauge(
            "vstore_serve_queue_depth",
            "Requests waiting in the queue at snapshot time",
            s.queue_depth as f64,
        ));
        out.push(Metric::gauge(
            "vstore_serve_queue_capacity",
            "Capacity of the bounded request queue",
            s.queue_capacity as f64,
        ));
        out.push(Metric::counter(
            "vstore_serve_submitted_total",
            "Requests accepted onto the queue",
            s.submitted,
        ));
        out.push(Metric::counter(
            "vstore_serve_completed_total",
            "Requests fully executed (success or error response)",
            s.completed,
        ));
        out.push(Metric::counter(
            "vstore_serve_rejected_busy_total",
            "Requests shed with Busy because the queue was full",
            s.rejected_busy,
        ));
        out.push(Metric::counter(
            "vstore_serve_failed_total",
            "Completed requests whose response was an error",
            s.failed,
        ));
        out.push(Metric::counter(
            "vstore_serve_panics_total",
            "Worker panics converted into error responses",
            s.panics,
        ));
        out.push(Metric::latency(
            "vstore_serve_queue_wait_us",
            "Time requests spent waiting in the queue",
            &s.queue_wait,
        ));
        for (kind, hist) in [
            ("ingest", &s.ingest_latency),
            ("query", &s.query_latency),
            ("erode", &s.erode_latency),
            ("live-stats", &s.live_stats_latency),
            ("net-stats", &s.net_stats_latency),
            ("metrics", &s.metrics_latency),
            ("trace-dump", &s.trace_latency),
        ] {
            if hist.count() > 0 {
                out.push(
                    Metric::latency(
                        "vstore_serve_latency_us",
                        "Execution latency by request kind",
                        hist,
                    )
                    .with_label("kind", kind),
                );
            }
        }
    }
    if let Some(n) = inner.net.write().aggregate() {
        out.push(Metric::gauge(
            "vstore_net_active_connections",
            "Connections currently being served",
            n.active_connections as f64,
        ));
        out.push(Metric::counter(
            "vstore_net_accepted_total",
            "Connections accepted over the listener's lifetime",
            n.accepted,
        ));
        out.push(Metric::counter(
            "vstore_net_refused_total",
            "Connections refused at the max-connections cap",
            n.refused,
        ));
        out.push(Metric::counter(
            "vstore_net_frames_in_total",
            "Request frames decoded off sockets",
            n.frames_in,
        ));
        out.push(Metric::counter(
            "vstore_net_frames_out_total",
            "Response frames fully written back",
            n.frames_out,
        ));
        out.push(Metric::counter(
            "vstore_net_bytes_in_total",
            "Bytes read off sockets",
            n.bytes_in,
        ));
        out.push(Metric::counter(
            "vstore_net_bytes_out_total",
            "Bytes written back to sockets",
            n.bytes_out,
        ));
        out.push(Metric::counter(
            "vstore_net_corrupt_frames_total",
            "Frames rejected as undecodable",
            n.corrupt_frames,
        ));
        out.push(Metric::counter(
            "vstore_net_disconnects_total",
            "Connections that vanished with work in flight",
            n.disconnects,
        ));
        out.push(Metric::counter(
            "vstore_net_write_syscalls_total",
            "Vectored writes issued (one per response batch)",
            n.write_syscalls,
        ));
        out.push(Metric::counter(
            "vstore_net_pool_hits_total",
            "Buffer-pool takes served without allocating",
            n.pool_hits,
        ));
        out.push(Metric::counter(
            "vstore_net_pool_misses_total",
            "Buffer-pool takes that allocated a fresh buffer",
            n.pool_misses,
        ));
        out.push(Metric::latency(
            "vstore_net_batch_sizes",
            "Responses coalesced per vectored write",
            &n.batch_sizes,
        ));
    }
    let live = inner.live.write().aggregate();
    if let Some(l) = live {
        out.push(Metric::gauge(
            "vstore_live_queue_depth",
            "Camera segments waiting in the live queue",
            l.queue_depth as f64,
        ));
        out.push(Metric::gauge(
            "vstore_live_current_level",
            "Degradation level in force (0 = full fidelity)",
            l.current_level as f64,
        ));
        out.push(Metric::counter(
            "vstore_live_offered_total",
            "Segments the cameras offered",
            l.offered,
        ));
        out.push(Metric::counter(
            "vstore_live_accepted_total",
            "Segments accepted onto the live queue",
            l.accepted,
        ));
        out.push(Metric::counter(
            "vstore_live_shed_total",
            "Segments shed by a full queue",
            l.shed,
        ));
        out.push(Metric::counter(
            "vstore_live_completed_total",
            "Segments fully transcoded and persisted",
            l.completed,
        ));
        out.push(Metric::counter(
            "vstore_live_degraded_segments_total",
            "Segments ingested at a degraded level",
            l.degraded_segments,
        ));
        out.push(Metric::latency(
            "vstore_live_lag_us",
            "Queue lag per segment (offer to transcode start)",
            &l.lag,
        ));
    }
}

// ---------------------------------------------------------------------
// StatsReport JSON
// ---------------------------------------------------------------------

/// Append `"key": <uint>` with comma management.
fn field_u64(out: &mut String, first: &mut bool, key: &str, value: u64) {
    sep(out, first);
    json::push_key(out, key);
    out.push_str(&value.to_string());
}

/// Append `"key": <float>` with comma management.
fn field_f64(out: &mut String, first: &mut bool, key: &str, value: f64) {
    sep(out, first);
    json::push_key(out, key);
    json::push_f64(out, value);
}

/// Append the separator between object fields.
fn sep(out: &mut String, first: &mut bool) {
    if !*first {
        out.push_str(", ");
    }
    *first = false;
}

/// Append a latency histogram as a compact summary object.
fn field_hist(out: &mut String, first: &mut bool, key: &str, hist: &LatencyHistogram) {
    sep(out, first);
    json::push_key(out, key);
    let (_, count, total_us, max_us) = hist.to_parts();
    out.push('{');
    let mut f = true;
    field_u64(out, &mut f, "count", count);
    field_u64(out, &mut f, "total_us", total_us);
    field_u64(out, &mut f, "max_us", max_us);
    field_u64(out, &mut f, "p50_us", hist.quantile_us(0.5));
    field_u64(out, &mut f, "p99_us", hist.quantile_us(0.99));
    out.push('}');
}

/// Append one StoreStats object (no key).
fn push_store(out: &mut String, s: &crate::StoreStats) {
    out.push('{');
    let mut f = true;
    field_u64(out, &mut f, "live_segments", s.live_segments as u64);
    field_u64(out, &mut f, "live_bytes", s.live_bytes);
    field_u64(out, &mut f, "disk_bytes", s.disk_bytes);
    field_u64(out, &mut f, "log_files", s.log_files as u64);
    field_u64(out, &mut f, "writes", s.writes);
    field_u64(out, &mut f, "reads", s.reads);
    out.push('}');
}

/// Append one CacheStats object (no key).
fn push_cache(out: &mut String, c: &CacheStats) {
    out.push('{');
    let mut f = true;
    field_u64(out, &mut f, "raw_hits", c.raw_hits);
    field_u64(out, &mut f, "raw_misses", c.raw_misses);
    field_u64(out, &mut f, "raw_evictions", c.raw_evictions);
    field_u64(out, &mut f, "raw_resident_bytes", c.raw_resident_bytes);
    field_u64(out, &mut f, "decoded_hits", c.decoded_hits);
    field_u64(out, &mut f, "decoded_misses", c.decoded_misses);
    field_u64(out, &mut f, "decoded_evictions", c.decoded_evictions);
    field_u64(out, &mut f, "decoded_entries", c.decoded_entries);
    field_u64(out, &mut f, "invalidations", c.invalidations);
    out.push('}');
}

impl StatsReport {
    /// Render the report as one stable JSON object — the machine-readable
    /// sibling of its `Display` form, built on the same minimal JSON
    /// helpers as the metrics endpoint. Optional sections render as
    /// `null`; field order is fixed, so goldens can match substrings.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        sep(&mut out, &mut first);
        json::push_key(&mut out, "store");
        push_store(&mut out, &self.store);
        sep(&mut out, &mut first);
        json::push_key(&mut out, "cache");
        push_cache(&mut out, &self.cache);
        sep(&mut out, &mut first);
        json::push_key(&mut out, "shards");
        out.push('[');
        for (i, shard) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            push_store(&mut out, shard);
        }
        out.push(']');
        sep(&mut out, &mut first);
        json::push_key(&mut out, "shard_caches");
        out.push('[');
        for (i, cache) in self.shard_caches.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            push_cache(&mut out, cache);
        }
        out.push(']');

        sep(&mut out, &mut first);
        json::push_key(&mut out, "tier");
        match &self.tier {
            None => out.push_str("null"),
            Some(t) => {
                out.push('{');
                let mut f = true;
                field_u64(&mut out, &mut f, "hot_resident_bytes", t.hot_resident_bytes);
                field_u64(
                    &mut out,
                    &mut f,
                    "cold_resident_bytes",
                    t.cold_resident_bytes,
                );
                field_u64(&mut out, &mut f, "cold_segments", t.cold_segments as u64);
                field_u64(&mut out, &mut f, "demotions", t.demotions);
                field_u64(&mut out, &mut f, "demoted_bytes", t.demoted_bytes);
                field_u64(&mut out, &mut f, "promotions", t.promotions);
                field_u64(&mut out, &mut f, "promoted_bytes", t.promoted_bytes);
                field_u64(&mut out, &mut f, "cold_hits", t.cold_hits);
                field_u64(&mut out, &mut f, "cold_misses", t.cold_misses);
                field_u64(&mut out, &mut f, "failed_demotions", t.failed_demotions);
                field_u64(&mut out, &mut f, "queue_depth", t.queue_depth as u64);
                field_hist(&mut out, &mut f, "cold_hit_latency", &t.cold_hit_latency);
                out.push('}');
            }
        }

        sep(&mut out, &mut first);
        json::push_key(&mut out, "serve");
        match &self.serve {
            None => out.push_str("null"),
            Some(s) => {
                out.push('{');
                let mut f = true;
                field_u64(&mut out, &mut f, "workers", s.workers as u64);
                field_u64(&mut out, &mut f, "queue_capacity", s.queue_capacity as u64);
                field_u64(&mut out, &mut f, "queue_depth", s.queue_depth as u64);
                field_u64(
                    &mut out,
                    &mut f,
                    "peak_queue_depth",
                    s.peak_queue_depth as u64,
                );
                field_u64(&mut out, &mut f, "submitted", s.submitted);
                field_u64(&mut out, &mut f, "completed", s.completed);
                field_u64(&mut out, &mut f, "rejected_busy", s.rejected_busy);
                field_u64(&mut out, &mut f, "failed", s.failed);
                field_u64(&mut out, &mut f, "panics", s.panics);
                field_u64(&mut out, &mut f, "disconnects", s.disconnects);
                field_hist(&mut out, &mut f, "queue_wait", &s.queue_wait);
                field_hist(&mut out, &mut f, "ingest_latency", &s.ingest_latency);
                field_hist(&mut out, &mut f, "query_latency", &s.query_latency);
                field_hist(&mut out, &mut f, "erode_latency", &s.erode_latency);
                field_hist(&mut out, &mut f, "metrics_latency", &s.metrics_latency);
                field_hist(&mut out, &mut f, "trace_latency", &s.trace_latency);
                out.push('}');
            }
        }

        sep(&mut out, &mut first);
        json::push_key(&mut out, "net");
        match &self.net {
            None => out.push_str("null"),
            Some(n) => {
                out.push('{');
                let mut f = true;
                field_u64(&mut out, &mut f, "event_loops", n.event_loops as u64);
                field_u64(&mut out, &mut f, "accepted", n.accepted);
                field_u64(&mut out, &mut f, "refused", n.refused);
                field_u64(
                    &mut out,
                    &mut f,
                    "active_connections",
                    n.active_connections as u64,
                );
                field_u64(&mut out, &mut f, "frames_in", n.frames_in);
                field_u64(&mut out, &mut f, "frames_out", n.frames_out);
                field_u64(&mut out, &mut f, "bytes_in", n.bytes_in);
                field_u64(&mut out, &mut f, "bytes_out", n.bytes_out);
                field_u64(&mut out, &mut f, "corrupt_frames", n.corrupt_frames);
                field_u64(&mut out, &mut f, "oversized_frames", n.oversized_frames);
                field_u64(&mut out, &mut f, "disconnects", n.disconnects);
                field_u64(&mut out, &mut f, "write_syscalls", n.write_syscalls);
                field_u64(&mut out, &mut f, "pool_hits", n.pool_hits);
                field_u64(&mut out, &mut f, "pool_misses", n.pool_misses);
                field_hist(&mut out, &mut f, "batch_sizes", &n.batch_sizes);
                out.push('}');
            }
        }

        sep(&mut out, &mut first);
        json::push_key(&mut out, "live");
        match &self.live {
            None => out.push_str("null"),
            Some(l) => {
                out.push('{');
                let mut f = true;
                field_u64(&mut out, &mut f, "workers", l.workers as u64);
                field_u64(&mut out, &mut f, "queue_capacity", l.queue_capacity as u64);
                field_u64(&mut out, &mut f, "queue_depth", l.queue_depth as u64);
                field_u64(&mut out, &mut f, "offered", l.offered);
                field_u64(&mut out, &mut f, "accepted", l.accepted);
                field_u64(&mut out, &mut f, "shed", l.shed);
                field_u64(&mut out, &mut f, "completed", l.completed);
                field_u64(&mut out, &mut f, "failed", l.failed);
                field_u64(&mut out, &mut f, "current_level", l.current_level as u64);
                field_u64(&mut out, &mut f, "degraded_segments", l.degraded_segments);
                field_f64(&mut out, &mut f, "video_seconds", l.video.0);
                field_hist(&mut out, &mut f, "lag", &l.lag);
                out.push('}');
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{BackendOptions, RuntimeOptions, ServeStats, StatsReport, VStore, VStoreOptions};
    use vstore_obs::json;

    fn empty_report() -> StatsReport {
        let store = VStore::open_temp(
            "json-report",
            VStoreOptions::fast()
                .with_backend(BackendOptions::Mem)
                .with_runtime(RuntimeOptions::sequential()),
        )
        .unwrap();
        store.stats_report()
    }

    /// Golden: the JSON of a fresh single-shard store is byte-stable —
    /// the machine-readable contract clients may substring-match or diff.
    #[test]
    fn stats_report_json_golden() {
        let report = empty_report();
        let json = report.to_json();
        assert_eq!(json::validate(&json), Ok(()), "{json}");
        let golden = concat!(
            "{\"store\": {\"live_segments\": 0, \"live_bytes\": 0, \"disk_bytes\": 0, ",
            "\"log_files\": 1, \"writes\": 0, \"reads\": 0}, ",
            "\"cache\": {\"raw_hits\": 0, \"raw_misses\": 0, \"raw_evictions\": 0, ",
            "\"raw_resident_bytes\": 0, \"decoded_hits\": 0, \"decoded_misses\": 0, ",
            "\"decoded_evictions\": 0, \"decoded_entries\": 0, \"invalidations\": 0}, ",
            "\"shards\": [{\"live_segments\": 0, \"live_bytes\": 0, \"disk_bytes\": 0, ",
            "\"log_files\": 1, \"writes\": 0, \"reads\": 0}], ",
            "\"shard_caches\": [], ",
            "\"tier\": null, \"serve\": null, \"net\": null, \"live\": null}",
        );
        assert_eq!(json, golden);
        // Round trip: rendering the same report twice is byte-identical.
        assert_eq!(json, report.to_json());
    }

    /// Optional sections render as objects once present, and histograms
    /// carry the summary fields; the result still validates.
    #[test]
    fn stats_report_json_renders_optional_sections() {
        let mut report = empty_report();
        let mut serve = ServeStats {
            workers: 4,
            submitted: 7,
            completed: 6,
            ..ServeStats::default()
        };
        serve.query_latency.record(1500);
        report.serve = Some(serve);
        let json = report.to_json();
        assert_eq!(json::validate(&json), Ok(()), "{json}");
        assert!(json.contains("\"serve\": {\"workers\": 4"), "{json}");
        assert!(json.contains("\"submitted\": 7"), "{json}");
        assert!(json.contains("\"query_latency\": {\"count\": 1"), "{json}");
        assert!(json.contains("\"max_us\": 1500"), "{json}");
    }

    /// The metrics endpoint shares the report's sources: a fresh store's
    /// snapshot carries the store/cache/profiler/tracer families and both
    /// renderings are well-formed.
    #[test]
    fn metrics_snapshot_covers_component_families() {
        let store = VStore::open_temp(
            "metrics-families",
            VStoreOptions::fast()
                .with_backend(BackendOptions::Mem)
                .with_runtime(RuntimeOptions::sequential()),
        )
        .unwrap();
        let snapshot = store.metrics_snapshot();
        for family in [
            "vstore_store_live_segments",
            "vstore_store_writes_total",
            "vstore_cache_raw_hits_total",
            "vstore_profiler_operator_runs_total",
            "vstore_trace_enabled",
        ] {
            assert!(snapshot.get(family).is_some(), "missing {family}");
        }
        assert_eq!(json::validate(&snapshot.to_json()), Ok(()));
        assert!(snapshot
            .to_prometheus()
            .contains("# TYPE vstore_store_writes_total counter"));
    }
}
