//! Live-ingest integration: the bounded, back-pressured live ingestor must
//! (a) produce exactly the store state of offline ingestion at steady
//! state, (b) absorb bursts within its queue depth, (c) degrade along its
//! ladder instead of stalling under sustained overload — and recover, and
//! (d) lose zero accepted segments on shutdown, with shed segments
//! accounted exactly.

use vstore::datasets::{Dataset, LiveSource, LoadProfile, VideoSource};
use vstore::{
    BackendOptions, IngestRequest, LiveIngestOptions, QueryRequest, QuerySpec, QueueFullPolicy,
    ServeOptions, ServeRequest, ServeResponse, VStore, VStoreOptions,
};

fn mem_store(tag: &str) -> VStore {
    VStore::open_temp(tag, VStoreOptions::fast().with_backend(BackendOptions::Mem)).unwrap()
}

/// Options that never degrade (huge lag tolerance): live ingestion at
/// steady state must be indistinguishable from offline ingestion.
fn no_degradation() -> LiveIngestOptions {
    LiveIngestOptions::default()
        .with_workers(2)
        .with_queue_depth(8)
        .with_max_lag_segments(100_000)
}

/// Steady state: the same segments through `live_ingest` and through the
/// offline `ingest` path leave two identically configured stores in
/// identical states — same segment count, same live bytes, same write
/// count, same query answers.
#[test]
fn steady_state_live_ingest_matches_offline_ingest() {
    let query = QuerySpec::query_a(0.8);
    let consumers = query.consumers();
    let source = VideoSource::new(Dataset::Jackson);

    let offline = mem_store("live-parity-offline");
    offline.configure(&consumers).unwrap();
    offline
        .ingest(IngestRequest::new(&source).segments(3))
        .unwrap();

    let live = mem_store("live-parity-live");
    live.configure(&consumers).unwrap();
    let ingestor = live.live_ingest(source.clone(), no_degradation()).unwrap();
    let outcome = ingestor.offer_range(0..3).unwrap();
    assert_eq!(outcome.accepted, 3);
    assert_eq!(outcome.shed, 0);
    let stats = ingestor.shutdown();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.degraded_segments, 0, "steady state must not degrade");
    assert_eq!(stats.current_level, 0);

    // Identical store state, byte for byte.
    let a = offline.store_stats();
    let b = live.store_stats();
    assert_eq!(a.live_segments, b.live_segments);
    assert_eq!(a.live_bytes, b.live_bytes);
    assert_eq!(a.disk_bytes, b.disk_bytes);
    assert_eq!(a.writes, b.writes);

    // Identical query answers over the ingested range.
    let direct = offline
        .query(QueryRequest::new("jackson", &query).segments(3))
        .unwrap();
    let via_live = live
        .query(QueryRequest::new("jackson", &query).segments(3))
        .unwrap();
    assert_eq!(direct, via_live);
}

/// A burst no larger than `queue_depth` is absorbed whole: nothing shed,
/// nothing lost, the queue never exceeds its bound.
#[test]
fn burst_within_queue_depth_is_absorbed_without_shedding() {
    let store = mem_store("live-burst");
    store
        .configure(&QuerySpec::query_a(0.8).consumers())
        .unwrap();
    let ingestor = store
        .live_ingest(
            VideoSource::new(Dataset::Tucson),
            LiveIngestOptions::default()
                .with_workers(1)
                .with_queue_depth(6)
                .with_max_lag_segments(100_000),
        )
        .unwrap();
    let outcome = ingestor.offer_range(0..6).unwrap();
    assert_eq!(outcome.accepted, 6, "burst == queue_depth must be absorbed");
    assert_eq!(outcome.shed, 0);
    let stats = ingestor.shutdown();
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.shed, 0);
    assert!(
        stats.peak_queue_depth <= 6,
        "bounded queue exceeded its capacity: {stats}"
    );
}

/// Under `QueueFullPolicy::Reject` a full queue sheds instead of blocking
/// the source, and every offered segment is accounted as exactly one of
/// accepted or shed.
#[test]
fn reject_policy_sheds_with_exact_accounting() {
    let store = mem_store("live-shed");
    store
        .configure(&QuerySpec::query_a(0.8).consumers())
        .unwrap();
    let ingestor = store
        .live_ingest(
            VideoSource::new(Dataset::Park),
            LiveIngestOptions::sequential().with_on_full(QueueFullPolicy::Reject),
        )
        .unwrap();
    let outcome = ingestor.offer_range(0..8).unwrap();
    assert_eq!(outcome.accepted + outcome.shed, 8);
    assert!(
        outcome.shed > 0,
        "a queue of 1 cannot absorb an 8-segment burst"
    );
    let stats = ingestor.shutdown();
    assert_eq!(stats.offered, 8);
    assert_eq!(stats.shed, outcome.shed);
    assert_eq!(stats.accepted, outcome.accepted);
    assert_eq!(stats.completed, outcome.accepted, "accepted segments drain");
    assert_eq!(stats.failed, 0);
    assert!(stats.shed_rate() > 0.0);
}

/// Graceful shutdown drains the backlog: zero accepted segments are lost,
/// even when shutdown begins while the queue is full.
#[test]
fn shutdown_drains_every_accepted_segment() {
    let store = mem_store("live-drain");
    store
        .configure(&QuerySpec::query_a(0.8).consumers())
        .unwrap();
    let ingestor = store
        .live_ingest(
            VideoSource::new(Dataset::Jackson),
            LiveIngestOptions::default()
                .with_workers(2)
                .with_queue_depth(16)
                .with_max_lag_segments(100_000),
        )
        .unwrap();
    let outcome = ingestor.offer_range(0..5).unwrap();
    assert_eq!(outcome.accepted, 5);
    // No wait_idle: shutdown itself must drain.
    let stats = ingestor.shutdown();
    assert_eq!(stats.completed, 5, "shutdown lost accepted segments");
    assert_eq!(stats.queue_depth, 0);
    assert!(store.store_stats().live_segments > 0);
}

/// The acceptance scenario: a deterministic 2x-overload burst from the
/// camera simulator. The ingestor never blocks the source (Reject policy),
/// steps down at least one degradation level under the backlog, recovers
/// to full fidelity once the burst clears, and the whole episode is
/// visible in `stats_report` — non-zero lag histogram, non-zero
/// degradation transitions.
#[test]
fn overload_burst_degrades_then_recovers_to_full_fidelity() {
    let store = mem_store("live-overload");
    store
        .configure(&QuerySpec::query_a(0.8).consumers())
        .unwrap();

    // A camera with a 2x burst for the first half of a 12-second period:
    // 1 segment/s during the burst, 0.5 after — 6 segments land at once at
    // the end of the burst window against a single transcode worker.
    let mut camera = LiveSource::new(
        VideoSource::new(Dataset::Jackson),
        LoadProfile::Bursty {
            base_segments_per_sec: 0.5,
            burst_multiplier: 2.0,
            period_seconds: 12.0,
            burst_fraction: 0.5,
        },
    )
    .unwrap();

    let ingestor = store
        .live_ingest(
            camera.source().clone(),
            LiveIngestOptions::default()
                .with_workers(1)
                .with_queue_depth(32)
                .with_on_full(QueueFullPolicy::Reject)
                .with_max_lag_segments(2),
        )
        .unwrap();

    // The burst window: 6 segments due by t=6, offered back to back — far
    // faster than one worker can transcode, so the backlog crosses the
    // 2-segment lag threshold and the ladder steps down.
    let burst = camera.poll(6.0);
    assert_eq!(burst, 0..6);
    let outcome = ingestor.offer_range(burst).unwrap();
    assert_eq!(
        outcome.accepted, 6,
        "queue_depth 32 must absorb the whole burst"
    );
    let mid = ingestor.stats();
    assert!(
        mid.step_downs >= 1,
        "2x overload must step down at least one level: {mid}"
    );

    // The burst clears: draining the backlog must walk the ladder back up
    // to full fidelity.
    ingestor.wait_idle();
    let after = ingestor.stats();
    assert_eq!(
        after.current_level, 0,
        "recovery to full fidelity after the burst: {after}"
    );
    assert!(after.step_ups >= 1, "recovery must be a counted step-up");
    assert_eq!(after.completed, 6);
    assert!(after.degraded_segments >= 1);
    assert!(
        after.degraded_segments < 6,
        "the first segments pre-date the backlog"
    );

    // Post-burst trickle at the base rate ingests at full fidelity.
    let trickle = camera.poll(12.0);
    assert_eq!(trickle, 6..9);
    for segment in trickle {
        assert!(ingestor.offer(segment).unwrap());
        ingestor.wait_idle();
    }
    let fin = ingestor.stats();
    assert_eq!(fin.current_level, 0);
    assert_eq!(fin.completed, 9);

    // The whole episode is visible in the store's report.
    let report = store.stats_report();
    let live = report.live.clone().expect("live stats folded into report");
    assert!(live.lag.count() >= 9, "lag histogram populated: {live}");
    assert!(live.step_downs >= 1 && live.step_ups >= 1);
    assert!(report.to_string().contains("live:"), "{report}");

    // ... and survives the ingestor: a shut-down ingestor is retired into
    // the report with its history intact and its capacity zeroed.
    drop(ingestor);
    let retired = store.stats_report().live.unwrap();
    assert_eq!(retired.completed, 9);
    assert_eq!(retired.workers, 0);
    assert_eq!(retired.queue_capacity, 0);
    assert_eq!(store.stats_report().live.unwrap().completed, 9);
}

/// Live statistics travel over the serve wire: a `LiveStats` request
/// through the front end answers with the same aggregate the handle
/// reports directly.
#[test]
fn live_stats_travel_over_the_serve_wire() {
    let store = mem_store("live-wire");
    store
        .configure(&QuerySpec::query_a(0.8).consumers())
        .unwrap();
    let ingestor = store
        .live_ingest(VideoSource::new(Dataset::Park), no_degradation())
        .unwrap();
    ingestor.offer_range(0..2).unwrap();
    let stats = ingestor.shutdown();
    assert_eq!(stats.completed, 2);

    let server = store
        .serve(ServeOptions::default().with_workers(2))
        .unwrap();
    let mut client = server.connect();
    let direct = store.live_stats().expect("live stats exist");
    let served = client.call(ServeRequest::LiveStats).unwrap();
    assert_eq!(served, ServeResponse::LiveStats(Box::new(direct)));
    match served {
        ServeResponse::LiveStats(live) => {
            assert_eq!(live.completed, 2);
            assert!(live.lag.count() >= 2);
            assert_eq!(live.per_source.get("park"), Some(&2));
        }
        other => panic!("expected live stats, got {other:?}"),
    }
}
