//! Socket front-end integration: pipelined TCP serving must behave exactly
//! like the in-process front end — byte-identical responses, the same
//! deterministic back-pressure, comparable queue-lag accounting — and a
//! hostile or vanishing peer must never take the server down with it.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use vstore::datasets::{Dataset, VideoSource};
use vstore::serve::{ErrorCode, NetServer, NetServerHandle, Server, VideoService};
use vstore::{
    BackendOptions, ErodeRequest, IngestRequest, LiveStats, NetClient, NetOptions, QueryRequest,
    QueryResult, QuerySpec, QueueFullPolicy, Result, ServeOptions, ServeRequest, ServeResponse,
    VStore, VStoreError, VStoreOptions,
};

fn mem_store(tag: &str) -> VStore {
    VStore::open_temp(tag, VStoreOptions::fast().with_backend(BackendOptions::Mem)).unwrap()
}

/// Spin until `cond` holds (stats counters are updated by server threads).
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Hand-rolled wire-v4 transport envelope, for tests that must write raw
/// (possibly malformed) bytes: `[u32 len][u64 corr_id][payload]`.
fn envelope(corr_id: u64, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(12 + payload.len());
    frame.extend_from_slice(&u32::try_from(8 + payload.len()).unwrap().to_le_bytes());
    frame.extend_from_slice(&corr_id.to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Read one enveloped response off a blocking socket.
fn read_response(stream: &mut TcpStream) -> (u64, ServeResponse) {
    let mut header = [0u8; 12];
    stream.read_exact(&mut header).unwrap();
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    let corr_id = u64::from_le_bytes(header[4..].try_into().unwrap());
    let mut payload = vec![0u8; len - 8];
    stream.read_exact(&mut payload).unwrap();
    (corr_id, ServeResponse::from_wire(&payload).unwrap())
}

/// A mock service whose only real request is `live_stats`: it sleeps
/// `delay` (building queue wait deterministically) and returns a
/// distinctive payload, so parity checks compare more than defaults.
#[derive(Clone)]
struct SlowLive {
    delay: Duration,
}

impl SlowLive {
    fn expected() -> LiveStats {
        LiveStats {
            offered: 7,
            accepted: 7,
            completed: 6,
            ..LiveStats::default()
        }
    }
}

impl VideoService for SlowLive {
    fn ingest(&self, _: &VideoSource, _: u64, _: u64) -> Result<vstore::ingest::IngestReport> {
        Err(VStoreError::InvalidState("not under test".into()))
    }
    fn query(&self, _: &str, _: &QuerySpec, _: u64, _: u64) -> Result<QueryResult> {
        Err(VStoreError::InvalidState("not under test".into()))
    }
    fn erode(&self, _: &str, _: u32) -> Result<vstore::ErodeReport> {
        Err(VStoreError::InvalidState("not under test".into()))
    }
    fn live_stats(&self) -> Result<LiveStats> {
        std::thread::sleep(self.delay);
        Ok(Self::expected())
    }
}

fn slow_server(delay_ms: u64, queue_depth: usize) -> NetServerHandle {
    NetServer::start(
        SlowLive {
            delay: Duration::from_millis(delay_ms),
        },
        "127.0.0.1:0",
        NetOptions::default().with_event_loops(2),
        ServeOptions::sequential()
            .with_queue_depth(queue_depth)
            .with_on_full(QueueFullPolicy::Reject),
    )
    .unwrap()
}

/// **Parity.** Responses served over the socket are byte-identical (modulo
/// the transport envelope, which carries only the correlation id) to
/// direct calls on an identically prepared store, for every request kind.
#[test]
fn socket_responses_match_direct_handle_calls() {
    let query = QuerySpec::query_a(0.8);
    let consumers = query.consumers();
    let source = VideoSource::new(Dataset::Jackson);

    let direct = mem_store("net-parity-direct");
    direct.configure(&consumers).unwrap();
    let served = mem_store("net-parity-served");
    served.configure(&consumers).unwrap();

    let server = served
        .serve_net(
            "127.0.0.1:0",
            NetOptions::default(),
            ServeOptions::default().with_workers(2).with_queue_depth(64),
        )
        .unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    // Ingest parity.
    let direct_report = direct
        .ingest(IngestRequest::new(&source).segments(2))
        .unwrap();
    let response = client
        .call(&ServeRequest::Ingest {
            source: source.clone(),
            first_segment: 0,
            count: 2,
        })
        .unwrap();
    let expected = ServeResponse::Ingest(direct_report);
    assert_eq!(response, expected);
    assert_eq!(response.to_wire(), expected.to_wire(), "wire bytes differ");

    // Query parity.
    let direct_result = direct
        .query(QueryRequest::new("jackson", &query).segments(2))
        .unwrap();
    let response = client
        .call(&ServeRequest::Query {
            stream: "jackson".into(),
            spec: query.clone(),
            first_segment: 0,
            count: 2,
        })
        .unwrap();
    let expected = ServeResponse::Query(direct_result);
    assert_eq!(response, expected);
    assert_eq!(response.to_wire(), expected.to_wire(), "wire bytes differ");

    // Live-stats parity (idle on both stores, but encoded end to end).
    let response = client.call(&ServeRequest::LiveStats).unwrap();
    let expected = ServeResponse::LiveStats(Box::new(direct.live_stats().unwrap_or_default()));
    assert_eq!(response, expected);
    assert_eq!(response.to_wire(), expected.to_wire(), "wire bytes differ");

    // Net-stats over the wire: the socket front end describes itself.
    match client.call(&ServeRequest::NetStats).unwrap() {
        ServeResponse::NetStats(stats) => {
            assert!(stats.accepted >= 1, "{stats:?}");
            assert!(stats.frames_in >= 3, "{stats:?}");
        }
        other => panic!("unexpected {other:?}"),
    }

    // Erode parity.
    let direct_report = direct
        .erode(ErodeRequest::new("jackson").at_age_days(0))
        .unwrap();
    let response = client
        .call(&ServeRequest::Erode {
            stream: "jackson".into(),
            age_days: 0,
        })
        .unwrap();
    let expected = ServeResponse::Erode(direct_report);
    assert_eq!(response, expected);
    assert_eq!(response.to_wire(), expected.to_wire(), "wire bytes differ");

    // Both layers fold into the store's report.
    let report = served.stats_report();
    let net = report.net.clone().expect("net stats folded in");
    assert!(net.frames_in >= 5, "{net:?}");
    let rendered = report.to_string();
    assert!(rendered.contains("net:"), "{rendered}");

    // After shutdown the counters are final (no torn reads between a
    // response landing at the client and its counter update).
    let (net, serve) = server.shutdown();
    assert_eq!(serve.failed, 0, "{serve}");
    assert_eq!(net.frames_in, net.frames_out, "every frame answered");
    assert_eq!(net.corrupt_frames, 0);
    // Retired front ends keep their history but stop contributing
    // provisioned capacity.
    let retired = served.net_stats().expect("retired history kept");
    assert_eq!(retired.event_loops, 0);
    assert_eq!(retired.frames_in, net.frames_in);
}

/// **Back-pressure.** 64 pipelined clients against a two-slot queue: every
/// request is answered (ok or a deterministic `Busy` error response — the
/// event loop never blocks), the split adds up exactly, ok payloads are
/// byte-identical to the direct service result, and the steady-state
/// buffer pool serves from recycled buffers.
#[test]
fn sixty_four_pipelined_clients_shed_deterministically_on_a_small_queue() {
    const CLIENTS: usize = 64;
    const REQUESTS_PER_CLIENT: usize = 8;
    let server = slow_server(1, 2);
    let addr = server.local_addr();
    let expected = ServeResponse::LiveStats(Box::new(SlowLive::expected()));
    let expected_wire = expected.to_wire();

    let mut handles = Vec::new();
    for _ in 0..CLIENTS {
        let expected = expected.clone();
        let expected_wire = expected_wire.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = NetClient::connect(addr).unwrap();
            for _ in 0..REQUESTS_PER_CLIENT {
                client.submit(&ServeRequest::LiveStats).unwrap();
            }
            let (mut ok, mut busy) = (0u64, 0u64);
            for _ in 0..REQUESTS_PER_CLIENT {
                let (_, response) = client.recv().unwrap();
                match response {
                    ServeResponse::Error(err) => {
                        assert_eq!(err.code, ErrorCode::Busy, "{err:?}");
                        busy += 1;
                    }
                    other => {
                        assert_eq!(other, expected);
                        assert_eq!(other.to_wire(), expected_wire, "wire bytes differ");
                        ok += 1;
                    }
                }
            }
            assert_eq!(client.pending(), 0);
            (ok, busy)
        }));
    }
    let (mut ok, mut busy) = (0u64, 0u64);
    for handle in handles {
        let (o, b) = handle.join().unwrap();
        ok += o;
        busy += b;
    }
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    assert_eq!(ok + busy, total, "every pipelined request answered");

    let (net, serve) = server.shutdown();
    assert_eq!(serve.completed, ok, "{serve}");
    assert_eq!(serve.rejected_busy, busy, "{serve}");
    assert_eq!(net.accepted, CLIENTS as u64);
    assert_eq!(net.frames_in, total);
    assert_eq!(net.frames_out, total);
    assert_eq!(net.disconnects, 0, "{net:?}");
    // Zero per-request allocation in steady state: after the first few
    // frames warm the pool, every response encodes into a recycled buffer.
    assert!(
        net.pool_hit_rate() > 0.8,
        "pool hit rate {:.2} (hits {}, misses {})",
        net.pool_hit_rate(),
        net.pool_hits,
        net.pool_misses
    );
    // Pipelining actually batched: more responses than write syscalls.
    assert!(net.mean_batch() >= 1.0);
    assert!(
        net.write_syscalls < total,
        "{} syscalls for {total} responses — no batching happened",
        net.write_syscalls
    );
}

/// **Lag accounting.** Network frames are stamped at decode time, so the
/// queue-wait histogram is comparable between the in-process and socket
/// paths: a pipeline of 3 requests against a sequential 20 ms service
/// records ≥15 ms of queue wait on both.
#[test]
fn queue_wait_is_comparable_between_socket_and_in_process_paths() {
    let service = SlowLive {
        delay: Duration::from_millis(20),
    };

    let in_process = Server::start(
        service.clone(),
        ServeOptions::sequential().with_queue_depth(8),
    )
    .unwrap();
    let mut conn = in_process.connect();
    for _ in 0..3 {
        conn.submit(ServeRequest::LiveStats).unwrap();
    }
    for _ in 0..3 {
        conn.recv().unwrap();
    }
    let direct_stats = in_process.shutdown();

    let server = NetServer::start(
        service,
        "127.0.0.1:0",
        NetOptions::default(),
        ServeOptions::sequential().with_queue_depth(8),
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    for _ in 0..3 {
        client.submit(&ServeRequest::LiveStats).unwrap();
    }
    for _ in 0..3 {
        client.recv().unwrap();
    }
    let (_, socket_stats) = server.shutdown();

    for (path, stats) in [("in-process", &direct_stats), ("socket", &socket_stats)] {
        assert_eq!(stats.queue_wait.count(), 3, "{path}: {}", stats.queue_wait);
        assert!(
            stats.queue_wait.max_us() >= 15_000,
            "{path}: queue wait not measured from submission ({})",
            stats.queue_wait
        );
    }
}

/// **Malformed input.** Truncated frames, hostile declared lengths and
/// garbage payloads isolate the offending connection — rejected before any
/// allocation where possible — while the server keeps serving everyone
/// else.
#[test]
fn malformed_frames_isolate_the_connection_and_the_server_keeps_serving() {
    let server = slow_server(0, 64);
    let addr = server.local_addr();
    let probe = server.probe();

    // Truncated frame then close: no request, no response, clean close.
    let mut raw = TcpStream::connect(addr).unwrap();
    let full = envelope(1, &ServeRequest::LiveStats.to_wire());
    raw.write_all(&full[..6]).unwrap();
    drop(raw);

    // Oversized declared length (256 MiB against a 4 MiB cap): the server
    // rejects at header-parse time — before allocating anything — and cuts
    // the connection.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&(256u32 << 20).to_le_bytes()).unwrap();
    wait_until("oversized frame counted", || {
        probe.stats().oversized_frames >= 1
    });
    let mut sink = Vec::new();
    raw.read_to_end(&mut sink).unwrap(); // server closed on us
    assert!(sink.is_empty());
    drop(raw);

    // Garbage mid-stream: a valid request, then a well-framed garbage
    // payload. The first is answered, the second gets a typed corruption
    // error response, then the connection is cut.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&envelope(10, &ServeRequest::LiveStats.to_wire()))
        .unwrap();
    raw.write_all(&envelope(11, &[0xFF; 16])).unwrap();
    // Completion order is not submission order (that is what correlation
    // ids are for): the error response can overtake the valid request.
    let responses: std::collections::HashMap<u64, ServeResponse> =
        [read_response(&mut raw), read_response(&mut raw)]
            .into_iter()
            .collect();
    assert_eq!(
        responses.get(&10),
        Some(&ServeResponse::LiveStats(Box::new(SlowLive::expected())))
    );
    match responses.get(&11) {
        Some(ServeResponse::Error(err)) => {
            assert_eq!(err.code, ErrorCode::Corruption, "{err:?}");
        }
        other => panic!("unexpected {other:?}"),
    }
    let mut sink = Vec::new();
    raw.read_to_end(&mut sink).unwrap();
    assert!(sink.is_empty(), "connection cut after the error response");
    wait_until("corrupt frame counted", || {
        probe.stats().corrupt_frames >= 1
    });

    // An unsupported future version is a corruption-coded error response,
    // not a dead server.
    let mut raw = TcpStream::connect(addr).unwrap();
    let mut payload = ServeRequest::LiveStats.to_wire();
    payload[4] = 99;
    raw.write_all(&envelope(12, &payload)).unwrap();
    let (corr, response) = read_response(&mut raw);
    assert_eq!(corr, 12);
    match response {
        ServeResponse::Error(err) => {
            assert_eq!(err.code, ErrorCode::Corruption, "{err:?}");
            assert!(err.message.contains("99"), "{err:?}");
        }
        other => panic!("unexpected {other:?}"),
    }
    drop(raw);

    // A v3 frame decodes on the v4 path (compat rule: v4 changed only the
    // transport envelope, no payload layout).
    let mut raw = TcpStream::connect(addr).unwrap();
    let mut payload = ServeRequest::LiveStats.to_wire();
    payload[4] = 3;
    raw.write_all(&envelope(13, &payload)).unwrap();
    let (corr, response) = read_response(&mut raw);
    assert_eq!(corr, 13);
    assert_eq!(
        response,
        ServeResponse::LiveStats(Box::new(SlowLive::expected()))
    );
    drop(raw);

    // Through it all, a well-behaved client is still served.
    let mut client = NetClient::connect(addr).unwrap();
    let response = client.call(&ServeRequest::LiveStats).unwrap();
    assert_eq!(
        response,
        ServeResponse::LiveStats(Box::new(SlowLive::expected()))
    );
    let (net, serve) = server.shutdown();
    assert!(net.corrupt_frames >= 1, "{net:?}");
    assert!(net.oversized_frames >= 1, "{net:?}");
    assert_eq!(serve.panics, 0, "{serve}");
}

/// **Abrupt disconnect.** A client that vanishes with responses still
/// queued is counted and forgotten; the server keeps serving.
#[test]
fn abrupt_disconnect_with_queued_responses_is_isolated() {
    let server = slow_server(20, 64);
    let addr = server.local_addr();
    let probe = server.probe();

    let mut client = NetClient::connect(addr).unwrap();
    for _ in 0..4 {
        client.submit(&ServeRequest::LiveStats).unwrap();
    }
    client.flush().unwrap();
    // Let at least one response land in our receive buffer unread, then
    // vanish: the close resets the connection, and the server's later
    // writes fail.
    std::thread::sleep(Duration::from_millis(50));
    drop(client);
    wait_until("disconnect counted", || probe.stats().disconnects >= 1);

    let mut client = NetClient::connect(addr).unwrap();
    let response = client.call(&ServeRequest::LiveStats).unwrap();
    assert_eq!(
        response,
        ServeResponse::LiveStats(Box::new(SlowLive::expected()))
    );
    let (net, _) = server.shutdown();
    assert!(net.disconnects >= 1, "{net:?}");
}

/// **Graceful drain.** Shutdown answers and flushes every request already
/// decoded before closing the sockets: the client reads all its responses,
/// then a clean EOF.
#[test]
fn graceful_drain_flushes_queued_responses_before_closing() {
    let server = slow_server(5, 64);
    let probe = server.probe();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    for _ in 0..8 {
        client.submit(&ServeRequest::LiveStats).unwrap();
    }
    client.flush().unwrap();
    // Make sure the event loop has decoded all 8 before the drain begins
    // (a drain stops reading, it never abandons what it already accepted).
    wait_until("frames decoded", || probe.stats().frames_in == 8);
    let (net, serve) = server.shutdown();
    assert_eq!(net.frames_out, 8, "{net:?}");
    assert_eq!(serve.completed, 8, "{serve}");

    for _ in 0..8 {
        let (_, response) = client.recv().unwrap();
        assert_eq!(
            response,
            ServeResponse::LiveStats(Box::new(SlowLive::expected()))
        );
    }
    // Nothing outstanding, and the server has hung up.
    let err = client.recv().unwrap_err();
    assert!(matches!(err, VStoreError::InvalidState(_)), "{err}");
}

/// **Out-of-order collection.** `recv_response` must keep reading the
/// socket even while non-matching responses sit in the client's buffered
/// set — the pipelined server answers in completion order, so waiting on a
/// specific correlation id with other responses already collected must
/// drain the wire, not spin on the buffer.
#[test]
fn recv_response_reads_the_wire_past_buffered_responses() {
    let server = slow_server(1, 64);
    let addr = server.local_addr();
    // Hang-proof: drive the client on a worker thread and fail fast if it
    // never finishes (the old code looped forever here).
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut client = NetClient::connect(addr).unwrap();
        let a = client.submit(&ServeRequest::LiveStats).unwrap();
        let b = client.submit(&ServeRequest::LiveStats).unwrap();
        let c = client.submit(&ServeRequest::LiveStats).unwrap();
        // Collect the last first: the sequential server answers a and b
        // before c, so both land in the client's buffered set.
        client.recv_response(c).unwrap();
        assert_eq!(client.pending(), 2, "a and b buffered");
        // A fourth request while two non-matching responses are buffered:
        // recv_response must read the socket past them.
        let d = client.submit(&ServeRequest::LiveStats).unwrap();
        client.recv_response(d).unwrap();
        // The buffered responses are still collectable, in any order.
        client.recv_response(b).unwrap();
        client.recv_response(a).unwrap();
        assert_eq!(client.pending(), 0);
        done_tx.send(()).unwrap();
    });
    done_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("recv_response hung with buffered non-matching responses");
    let _ = server.shutdown();
}
