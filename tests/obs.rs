//! Observability integration: a traced request crosses every layer of the
//! serving stack and comes back out as one coherent trace; the metrics
//! endpoint aggregates every stats source; both travel the wire.

use vstore::datasets::{Dataset, VideoSource};
use vstore::obs::json;
use vstore::{
    BackendOptions, IngestRequest, MetricsSnapshot, NetClient, NetOptions, QueryRequest, QuerySpec,
    RuntimeOptions, ServeOptions, ServeRequest, ServeResponse, TraceDump, TraceOptions, VStore,
    VStoreOptions,
};

fn traced_store(tag: &str) -> VStore {
    VStore::open_temp(
        tag,
        VStoreOptions::fast()
            .with_backend(BackendOptions::Mem)
            .with_cache(16 << 20, 8)
            .with_trace(TraceOptions::enabled().with_sample_per_1k(1000)),
    )
    .unwrap()
}

fn load(store: &VStore, segments: u64) -> QuerySpec {
    let query = QuerySpec::query_a(0.8);
    store.configure(&query.consumers()).unwrap();
    let source = VideoSource::new(Dataset::Jackson);
    store
        .ingest(IngestRequest::new(&source).segments(segments))
        .unwrap();
    query
}

/// The acceptance path: a pipelined `NetClient` query at 100% sampling
/// yields a **single** trace whose spans cover at least four layers of
/// the stack — socket decode, queue wait, worker execution and the
/// storage read path — and the dump exports as valid Chrome trace JSON.
#[test]
fn net_query_produces_one_trace_spanning_the_stack() {
    let store = traced_store("obs-net-trace");
    let query = load(&store, 3);

    let server = store
        .serve_net(
            "127.0.0.1:0",
            NetOptions::default(),
            ServeOptions::default().with_workers(2),
        )
        .unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let response = client
        .call(&ServeRequest::Query {
            stream: "jackson".into(),
            spec: query.clone(),
            first_segment: 0,
            count: 3,
        })
        .unwrap();
    assert!(matches!(response, ServeResponse::Query(_)), "{response:?}");
    drop(client);
    server.shutdown();

    let dump = store.trace_dump(0);
    let queries: Vec<_> = dump.records.iter().filter(|r| r.root == "query").collect();
    assert_eq!(queries.len(), 1, "one net query, one trace: {dump:?}");
    let record = queries[0];
    assert!(record.sampled, "100% head sampling");
    assert!(
        record.spans.len() >= 6,
        "expected >= 6 spans, got {}: {:?}",
        record.spans.len(),
        record.spans
    );
    // Spans from at least four distinct layers of the stack.
    let names: Vec<&str> = record.spans.iter().map(|s| s.name.as_str()).collect();
    for layer in [
        "net.decode",
        "queue.wait",
        "worker.execute",
        "query.execute",
    ] {
        assert!(names.contains(&layer), "missing {layer} in {names:?}");
    }
    assert!(
        names.iter().any(|n| n.starts_with("read.")),
        "no storage-read span in {names:?}"
    );
    // Spans carry timing relative to the trace start, and nothing was
    // evicted from the rings while capturing it.
    assert!(record.spans.iter().any(|s| s.end_us() > 0), "{record:?}");
    assert_eq!(dump.dropped_spans, 0, "{dump:?}");

    let chrome = dump.to_chrome_json();
    assert_eq!(json::validate(&chrome), Ok(()), "{chrome}");
    assert!(chrome.contains("\"ph\": \"X\""), "{chrome}");
    // The human report renders the same tree.
    assert!(dump.report().contains("query"), "{}", dump.report());
}

/// Direct facade calls trace too: ingest and query each begin their own
/// trace when no serve worker installed one.
#[test]
fn in_process_requests_begin_their_own_traces() {
    let store = traced_store("obs-inproc");
    let query = load(&store, 2);
    store
        .query(QueryRequest::new("jackson", &query).segments(2))
        .unwrap();

    let dump = store.trace_dump(0);
    let roots: Vec<&str> = dump.records.iter().map(|r| r.root.as_str()).collect();
    assert!(roots.contains(&"ingest"), "{roots:?}");
    assert!(roots.contains(&"query"), "{roots:?}");
    let ingest = dump.records.iter().find(|r| r.root == "ingest").unwrap();
    assert!(
        ingest.spans.iter().any(|s| s.name == "ingest.transcode"),
        "{ingest:?}"
    );
}

/// Metrics and trace dumps travel the wire: the v5 request variants
/// answer with the same payloads the facade returns in process.
#[test]
fn metrics_and_traces_travel_the_wire() {
    let store = traced_store("obs-wire");
    let query = load(&store, 2);
    let server = store
        .serve_net(
            "127.0.0.1:0",
            NetOptions::default(),
            ServeOptions::default().with_workers(2),
        )
        .unwrap();

    // First connection does the work; a second one observes it.
    let mut worker = NetClient::connect(server.local_addr()).unwrap();
    worker
        .call(&ServeRequest::Query {
            stream: "jackson".into(),
            spec: query.clone(),
            first_segment: 0,
            count: 2,
        })
        .unwrap();

    let mut observer = NetClient::connect(server.local_addr()).unwrap();
    let metrics: MetricsSnapshot = match observer.call(&ServeRequest::MetricsSnapshot).unwrap() {
        ServeResponse::Metrics(snapshot) => snapshot,
        other => panic!("expected metrics, got {other:?}"),
    };
    for family in [
        "vstore_store_live_segments",
        "vstore_serve_completed_total",
        "vstore_net_frames_in_total",
        "vstore_trace_committed_total",
    ] {
        assert!(metrics.get(family).is_some(), "missing {family}");
    }
    assert_eq!(json::validate(&metrics.to_json()), Ok(()));
    assert!(metrics.to_prometheus().contains("# TYPE"));

    let dump: TraceDump = match observer
        .call(&ServeRequest::TraceDump { max_traces: 8 })
        .unwrap()
    {
        ServeResponse::TraceDump(dump) => *dump,
        other => panic!("expected trace dump, got {other:?}"),
    };
    assert!(dump.records.iter().any(|r| r.root == "query"), "{dump:?}");
    server.shutdown();
}

/// With tracing off (the default), requests still serve and the rings
/// stay empty — the span sites are inert.
#[test]
fn tracing_disabled_commits_nothing() {
    let store = VStore::open_temp(
        "obs-disabled",
        VStoreOptions::fast()
            .with_backend(BackendOptions::Mem)
            .with_runtime(RuntimeOptions::sequential()),
    )
    .unwrap();
    let query = load(&store, 1);
    store
        .query(QueryRequest::new("jackson", &query).segments(1))
        .unwrap();
    assert!(!store.tracer().enabled());
    let dump = store.trace_dump(0);
    assert!(dump.records.is_empty(), "{dump:?}");
    assert_eq!(store.tracer().stats().begun, 0);
    // The registry still reports tracing as off.
    let snapshot = store.metrics_snapshot();
    let enabled = snapshot.get("vstore_trace_enabled").unwrap();
    assert_eq!(
        enabled.value,
        vstore::MetricValue::Gauge(0.0),
        "{enabled:?}"
    );
}
