//! The service-handle contract: `VStore` is a cheaply-cloneable
//! `Clone + Send + Sync` handle whose clones configure, ingest and query the
//! same store concurrently. Configuration swaps are atomic epoch changes —
//! requests in flight keep the configuration they started with, so every
//! request sees one coherent configuration end to end.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use vstore::{
    BackendOptions, Configuration, ErodeRequest, IngestRequest, QueryRequest, QuerySpec, VStore,
    VStoreOptions,
};
use vstore_datasets::{Dataset, VideoSource};

fn mem_store(tag: &str) -> VStore {
    VStore::open_temp(tag, VStoreOptions::fast().with_backend(BackendOptions::Mem)).unwrap()
}

#[test]
fn handle_type_is_clone_send_sync() {
    fn assert_service_handle<T: Clone + Send + Sync + 'static>() {}
    assert_service_handle::<VStore>();
}

#[test]
fn concurrent_configure_ingest_query_from_cloned_handles() {
    let store = mem_store("service-concurrent");
    let query = QuerySpec::query_a(0.8);
    let consumers = query.consumers();
    let source = VideoSource::new(Dataset::Jackson);

    // Warm up: derive the configuration and ingest the range the query
    // threads will read, so every thread below has work it can complete.
    let config: Arc<Configuration> = store.configure(&consumers).unwrap();
    let formats = config.storage_formats.len();
    store
        .ingest(IngestRequest::new(&source).segments(4))
        .unwrap();

    const QUERY_THREADS: usize = 4;
    const CONFIGURE_THREADS: usize = 2;
    const INGEST_THREADS: usize = 2;
    const QUERIES_PER_THREAD: usize = 8;
    const CONFIGURES_PER_THREAD: usize = 4;
    const SEGMENTS_PER_INGEST: u64 = 2;

    let queries_ok = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        // ≥ 4 cloned handles querying while other clones swap the active
        // configuration and ingest new segments.
        for _ in 0..QUERY_THREADS {
            let handle = store.clone();
            let query = query.clone();
            let queries_ok = Arc::clone(&queries_ok);
            scope.spawn(move || {
                for _ in 0..QUERIES_PER_THREAD {
                    let result = handle
                        .query(QueryRequest::new("jackson", &query).segments(4))
                        .unwrap();
                    assert_eq!(result.stages[0].segments_processed, 4);
                    assert!(result.speed.factor() > 0.0);
                    queries_ok.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Concurrent configure: re-derivation hits the profiler cache, and
        // each install is an atomic epoch swap under the queries above.
        for _ in 0..CONFIGURE_THREADS {
            let handle = store.clone();
            let consumers = consumers.clone();
            scope.spawn(move || {
                for _ in 0..CONFIGURES_PER_THREAD {
                    let installed = handle.configure(&consumers).unwrap();
                    assert_eq!(installed.storage_formats.len(), formats);
                }
            });
        }
        // Concurrent ingest of disjoint segment ranges.
        for t in 0..INGEST_THREADS {
            let handle = store.clone();
            let source = source.clone();
            scope.spawn(move || {
                let first = 4 + t as u64 * SEGMENTS_PER_INGEST;
                let report = handle
                    .ingest(
                        IngestRequest::new(&source)
                            .starting_at(first)
                            .segments(SEGMENTS_PER_INGEST),
                    )
                    .unwrap();
                assert_eq!(
                    report.segments_written,
                    SEGMENTS_PER_INGEST as usize * formats
                );
            });
        }
    });

    assert_eq!(
        queries_ok.load(Ordering::Relaxed),
        QUERY_THREADS * QUERIES_PER_THREAD
    );
    // Every install advanced the epoch exactly once: 1 warm-up configure +
    // the configure threads.
    assert_eq!(
        store.configuration_epoch(),
        1 + (CONFIGURE_THREADS * CONFIGURES_PER_THREAD) as u64
    );
    // All ingested segments are live: the warm-up 4 plus the two disjoint
    // ranges, in every storage format.
    let expected_segments = 4 + INGEST_THREADS as u64 * SEGMENTS_PER_INGEST;
    assert_eq!(
        store.store_stats().live_segments,
        expected_segments as usize * formats
    );
}

/// Cache invalidation under concurrency: 8 cloned handles hammer one
/// cached store — 7 querying while 1 erodes segments age by age under a
/// storage budget tight enough that erosion really deletes. Every erosion
/// delete must drop the cached entries for the key, so a query that raced
/// the erosion falls back to a richer stored format instead of being
/// served stale bytes. Afterwards the same erosion sequence is replayed on
/// an uncached twin: the final state and query results must be identical —
/// the cache is invisible everywhere but the resource ledger.
#[test]
fn concurrent_erode_and_query_with_cache_never_serve_stale_bytes() {
    use vstore::{ConfigurationEngine, EngineOptions};
    use vstore_types::{ByteSize, FidelitySpace};

    let query = QuerySpec::query_b(0.9);
    let consumers = query.consumers();
    // Derive the workload's natural storage appetite, then budget away half
    // of the non-golden footprint so the plan erodes (as in
    // examples/budgeted_store.rs).
    let probe = mem_store("service-cache-probe");
    let engine: &ConfigurationEngine = probe.engine();
    let baseline = engine.derive(&consumers).unwrap();
    let per_second = engine.storage_bytes_per_second(&baseline).bytes();
    let golden_per_second = probe
        .profiler()
        .profile_storage(*baseline.golden().unwrap())
        .bytes_per_video_second
        .bytes();
    let lifespan_seconds = 86_400 * 10;
    let non_golden = per_second.saturating_sub(golden_per_second) * lifespan_seconds;
    let budgeted = || {
        let mut options = VStoreOptions::fast().with_backend(BackendOptions::Mem);
        options.engine = EngineOptions {
            fidelity_space: FidelitySpace::reduced(),
            storage_budget: Some(ByteSize(per_second * lifespan_seconds - non_golden / 2)),
            lifespan_days: 10,
            ..EngineOptions::default()
        };
        options
    };
    let cached =
        VStore::open_temp("service-cache-on", budgeted().with_cache(64 << 20, 256)).unwrap();
    let uncached = VStore::open_temp("service-cache-off", budgeted()).unwrap();
    let source = VideoSource::new(Dataset::Jackson);
    for store in [&cached, &uncached] {
        store.configure(&consumers).unwrap();
        store
            .ingest(IngestRequest::new(&source).segments(4))
            .unwrap();
    }

    // Warm the cache before the erosion starts: the eroder below deletes
    // segments whose entries are now resident, so at least some deletes
    // must drop cached data (asserted via `invalidations` at the end).
    cached
        .query(QueryRequest::new("jackson", &query).segments(4))
        .unwrap();

    const QUERY_HANDLES: usize = 7;
    const QUERIES_PER_HANDLE: usize = 6;
    const ERODE_AGES: u32 = 10;
    std::thread::scope(|scope| {
        for _ in 0..QUERY_HANDLES {
            let handle = cached.clone();
            let query = query.clone();
            scope.spawn(move || {
                for _ in 0..QUERIES_PER_HANDLE {
                    let result = handle
                        .query(QueryRequest::new("jackson", &query).segments(4))
                        .unwrap();
                    // Erosion never touches the golden format, so the
                    // fallback always finds every segment.
                    assert_eq!(result.stages[0].segments_processed, 4);
                    assert!(result.speed.factor() > 0.0);
                }
            });
        }
        let eroder = cached.clone();
        scope.spawn(move || {
            for age in 1..=ERODE_AGES {
                eroder
                    .erode(ErodeRequest::new("jackson").at_age_days(age))
                    .unwrap();
            }
        });
    });

    let mut replay_deleted = 0;
    for age in 1..=ERODE_AGES {
        replay_deleted += uncached
            .erode(ErodeRequest::new("jackson").at_age_days(age))
            .unwrap()
            .total_segments();
    }
    assert!(replay_deleted > 0, "the budget must force real erosion");
    assert_eq!(
        cached.store_stats().live_segments,
        uncached.store_stats().live_segments
    );
    let warm = cached
        .query(QueryRequest::new("jackson", &query).segments(4))
        .unwrap();
    let cold = uncached
        .query(QueryRequest::new("jackson", &query).segments(4))
        .unwrap();
    assert_eq!(warm, cold, "the cache must never change query results");

    let stats = cached.cache_stats();
    assert!(
        stats.invalidations > 0,
        "erosion must invalidate cached entries: {stats}"
    );
    assert!(
        stats.raw_hits + stats.decoded_hits > 0,
        "repeated queries should hit the cache: {stats}"
    );
    assert!(uncached.cache_stats().is_idle());
    assert!(uncached.shard_cache_stats().is_empty());
}

#[test]
fn requests_in_flight_keep_their_epoch_snapshot() {
    let store = mem_store("service-epoch");
    let query = QuerySpec::query_a(0.8);
    let config = store.configure(&query.consumers()).unwrap();
    let source = VideoSource::new(Dataset::Jackson);
    store
        .ingest(IngestRequest::new(&source).segments(2))
        .unwrap();

    // A snapshot taken before a swap stays valid and unchanged after it.
    let before = store.configuration().unwrap();
    store.install_configuration((*config).clone());
    store.install_configuration((*config).clone());
    assert_eq!(*before, *config);
    assert_eq!(store.configuration_epoch(), 3);

    // The store still answers queries under the new epoch.
    let result = store
        .query(QueryRequest::new("jackson", &query).segments(2))
        .unwrap();
    assert_eq!(result.stages[0].segments_processed, 2);
}
