//! The service-handle contract: `VStore` is a cheaply-cloneable
//! `Clone + Send + Sync` handle whose clones configure, ingest and query the
//! same store concurrently. Configuration swaps are atomic epoch changes —
//! requests in flight keep the configuration they started with, so every
//! request sees one coherent configuration end to end.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use vstore::{
    BackendOptions, Configuration, IngestRequest, QueryRequest, QuerySpec, VStore, VStoreOptions,
};
use vstore_datasets::{Dataset, VideoSource};

fn mem_store(tag: &str) -> VStore {
    VStore::open_temp(tag, VStoreOptions::fast().with_backend(BackendOptions::Mem)).unwrap()
}

#[test]
fn handle_type_is_clone_send_sync() {
    fn assert_service_handle<T: Clone + Send + Sync + 'static>() {}
    assert_service_handle::<VStore>();
}

#[test]
fn concurrent_configure_ingest_query_from_cloned_handles() {
    let store = mem_store("service-concurrent");
    let query = QuerySpec::query_a(0.8);
    let consumers = query.consumers();
    let source = VideoSource::new(Dataset::Jackson);

    // Warm up: derive the configuration and ingest the range the query
    // threads will read, so every thread below has work it can complete.
    let config: Arc<Configuration> = store.configure(&consumers).unwrap();
    let formats = config.storage_formats.len();
    store
        .ingest(IngestRequest::new(&source).segments(4))
        .unwrap();

    const QUERY_THREADS: usize = 4;
    const CONFIGURE_THREADS: usize = 2;
    const INGEST_THREADS: usize = 2;
    const QUERIES_PER_THREAD: usize = 8;
    const CONFIGURES_PER_THREAD: usize = 4;
    const SEGMENTS_PER_INGEST: u64 = 2;

    let queries_ok = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        // ≥ 4 cloned handles querying while other clones swap the active
        // configuration and ingest new segments.
        for _ in 0..QUERY_THREADS {
            let handle = store.clone();
            let query = query.clone();
            let queries_ok = Arc::clone(&queries_ok);
            scope.spawn(move || {
                for _ in 0..QUERIES_PER_THREAD {
                    let result = handle
                        .query(QueryRequest::new("jackson", &query).segments(4))
                        .unwrap();
                    assert_eq!(result.stages[0].segments_processed, 4);
                    assert!(result.speed.factor() > 0.0);
                    queries_ok.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Concurrent configure: re-derivation hits the profiler cache, and
        // each install is an atomic epoch swap under the queries above.
        for _ in 0..CONFIGURE_THREADS {
            let handle = store.clone();
            let consumers = consumers.clone();
            scope.spawn(move || {
                for _ in 0..CONFIGURES_PER_THREAD {
                    let installed = handle.configure(&consumers).unwrap();
                    assert_eq!(installed.storage_formats.len(), formats);
                }
            });
        }
        // Concurrent ingest of disjoint segment ranges.
        for t in 0..INGEST_THREADS {
            let handle = store.clone();
            let source = source.clone();
            scope.spawn(move || {
                let first = 4 + t as u64 * SEGMENTS_PER_INGEST;
                let report = handle
                    .ingest(
                        IngestRequest::new(&source)
                            .starting_at(first)
                            .segments(SEGMENTS_PER_INGEST),
                    )
                    .unwrap();
                assert_eq!(
                    report.segments_written,
                    SEGMENTS_PER_INGEST as usize * formats
                );
            });
        }
    });

    assert_eq!(
        queries_ok.load(Ordering::Relaxed),
        QUERY_THREADS * QUERIES_PER_THREAD
    );
    // Every install advanced the epoch exactly once: 1 warm-up configure +
    // the configure threads.
    assert_eq!(
        store.configuration_epoch(),
        1 + (CONFIGURE_THREADS * CONFIGURES_PER_THREAD) as u64
    );
    // All ingested segments are live: the warm-up 4 plus the two disjoint
    // ranges, in every storage format.
    let expected_segments = 4 + INGEST_THREADS as u64 * SEGMENTS_PER_INGEST;
    assert_eq!(
        store.store_stats().live_segments,
        expected_segments as usize * formats
    );
}

#[test]
fn requests_in_flight_keep_their_epoch_snapshot() {
    let store = mem_store("service-epoch");
    let query = QuerySpec::query_a(0.8);
    let config = store.configure(&query.consumers()).unwrap();
    let source = VideoSource::new(Dataset::Jackson);
    store
        .ingest(IngestRequest::new(&source).segments(2))
        .unwrap();

    // A snapshot taken before a swap stays valid and unchanged after it.
    let before = store.configuration().unwrap();
    store.install_configuration((*config).clone());
    store.install_configuration((*config).clone());
    assert_eq!(*before, *config);
    assert_eq!(store.configuration_epoch(), 3);

    // The store still answers queries under the new epoch.
    let result = store
        .query(QueryRequest::new("jackson", &query).segments(2))
        .unwrap();
    assert_eq!(result.stages[0].segments_processed, 2);
}
