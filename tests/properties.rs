//! Property-based tests over the core data structures and invariants:
//! the richer-than partial order, format serialisation, the RLE codec path,
//! the F1 scorer, the segment store, and the monotonicity observation (O1)
//! the configuration search relies on.

use proptest::prelude::*;
use vstore::types::{
    ByteSize, CropFactor, Fidelity, FrameSampling, ImageQuality, KeyframeInterval, Resolution,
    SpeedStep,
};
use vstore_codec::frame::materialize_clip;
use vstore_codec::{encode_segment, SegmentData};
use vstore_datasets::{Dataset, VideoSource};
use vstore_ops::{f1_score, ConsumptionCostModel};
use vstore_storage::{SegmentKey, SegmentReader, SegmentStore};
use vstore_types::{CodingOption, FormatId, OperatorKind, StorageFormat};

fn arb_quality() -> impl Strategy<Value = ImageQuality> {
    prop::sample::select(ImageQuality::ALL.to_vec())
}
fn arb_crop() -> impl Strategy<Value = CropFactor> {
    prop::sample::select(CropFactor::ALL.to_vec())
}
fn arb_resolution() -> impl Strategy<Value = Resolution> {
    prop::sample::select(Resolution::ALL.to_vec())
}
fn arb_sampling() -> impl Strategy<Value = FrameSampling> {
    prop::sample::select(FrameSampling::ALL.to_vec())
}

prop_compose! {
    fn arb_fidelity()(
        quality in arb_quality(),
        crop in arb_crop(),
        resolution in arb_resolution(),
        sampling in arb_sampling(),
    ) -> Fidelity {
        Fidelity::new(quality, crop, resolution, sampling)
    }
}

fn arb_coding() -> impl Strategy<Value = CodingOption> {
    prop_oneof![
        Just(CodingOption::Raw),
        (
            prop::sample::select(KeyframeInterval::ALL.to_vec()),
            prop::sample::select(SpeedStep::ALL.to_vec())
        )
            .prop_map(|(keyframe_interval, speed)| CodingOption::Encoded {
                keyframe_interval,
                speed
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- richer-than partial order ----------------

    #[test]
    fn richer_than_is_reflexive_and_antisymmetric(a in arb_fidelity(), b in arb_fidelity()) {
        prop_assert!(a.richer_or_equal(&a));
        if a.richer_or_equal(&b) && b.richer_or_equal(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn richer_than_is_transitive(a in arb_fidelity(), b in arb_fidelity(), c in arb_fidelity()) {
        if a.richer_or_equal(&b) && b.richer_or_equal(&c) {
            prop_assert!(a.richer_or_equal(&c));
        }
    }

    #[test]
    fn join_is_least_upper_bound(a in arb_fidelity(), b in arb_fidelity()) {
        let j = a.join(&b);
        prop_assert!(j.richer_or_equal(&a));
        prop_assert!(j.richer_or_equal(&b));
        // Any common upper bound is at least as rich as the join.
        let ingestion = Fidelity::INGESTION;
        prop_assert!(ingestion.richer_or_equal(&j));
        // Meet is dually a lower bound.
        let m = a.meet(&b);
        prop_assert!(a.richer_or_equal(&m));
        prop_assert!(b.richer_or_equal(&m));
        prop_assert!(j.richer_or_equal(&m));
    }

    #[test]
    fn satisfiability_follows_the_partial_order(a in arb_fidelity(), b in arb_fidelity(), c in arb_coding()) {
        let sf = StorageFormat::new(a, c);
        let cf = vstore_types::ConsumptionFormat::new(b);
        prop_assert_eq!(sf.satisfies(&cf), a.richer_or_equal(&b));
    }

    // ---------------- cost-model invariants ----------------

    #[test]
    fn consumption_cost_ignores_quality_and_respects_monotonicity(
        f in arb_fidelity(),
        op in prop::sample::select(OperatorKind::ALL.to_vec()),
    ) {
        let model = ConsumptionCostModel::paper_testbed();
        // O2: changing only image quality never changes speed.
        for q in ImageQuality::ALL {
            let other = Fidelity { quality: q, ..f };
            prop_assert_eq!(
                model.consumption_speed(op, &f).factor(),
                model.consumption_speed(op, &other).factor()
            );
        }
        // O1 (cost side): a richer fidelity is never faster to consume.
        let richer = Fidelity { resolution: Resolution::R720, sampling: FrameSampling::Full, crop: CropFactor::C100, ..f };
        prop_assert!(
            model.consumption_speed(op, &richer).factor()
                <= model.consumption_speed(op, &f).factor() + 1e-9
        );
    }

    // ---------------- scoring ----------------

    #[test]
    fn f1_is_bounded_and_perfect_only_on_agreement(flags in prop::collection::vec(any::<(bool, bool)>(), 1..200)) {
        let reference: Vec<bool> = flags.iter().map(|(r, _)| *r).collect();
        let predicted: Vec<bool> = flags.iter().map(|(_, p)| *p).collect();
        let report = f1_score(&reference, &predicted);
        prop_assert!((0.0..=1.0).contains(&report.f1));
        prop_assert!((0.0..=1.0).contains(&report.precision));
        prop_assert!((0.0..=1.0).contains(&report.recall));
        if reference == predicted {
            prop_assert_eq!(report.f1, 1.0);
        }
        if report.fp == 0 && report.fn_ == 0 {
            prop_assert_eq!(report.f1, 1.0);
        }
    }

    // ---------------- storage keys & units ----------------

    #[test]
    fn segment_keys_round_trip(stream in "[a-z]{1,16}", format in 0u32..64, index in any::<u64>()) {
        let key = SegmentKey::new(stream, FormatId(format), index);
        prop_assert_eq!(SegmentKey::decode(&key.encode()).unwrap(), key);
    }

    #[test]
    fn byte_size_scaling_is_monotone(bytes in 0u64..1_000_000_000, f1 in 0.0f64..1.0, f2 in 0.0f64..1.0) {
        let b = ByteSize(bytes);
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(b.scale(lo) <= b.scale(hi));
        prop_assert!(b.scale(1.0) == b);
    }
}

// Store behaviour under random operation sequences (kept outside proptest's
// macro so the store setup cost is paid once per case batch).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn segment_store_matches_a_model_under_random_ops(
        ops in prop::collection::vec((0u8..3, 0u64..24, prop::collection::vec(any::<u8>(), 0..512)), 1..60)
    ) {
        let store = SegmentStore::open_temp("prop-store").unwrap();
        let mut model: std::collections::BTreeMap<u64, Vec<u8>> = std::collections::BTreeMap::new();
        for (op, seg, value) in ops {
            let key = SegmentKey::new("prop", FormatId(1), seg);
            match op {
                0 => {
                    store.put(&key, &value).unwrap();
                    model.insert(seg, value);
                }
                1 => {
                    store.delete(&key).unwrap();
                    model.remove(&seg);
                }
                _ => {
                    let got = store.get(&key).unwrap();
                    prop_assert_eq!(got.as_deref(), model.get(&seg).map(|v| v.as_slice()));
                }
            }
        }
        prop_assert_eq!(store.len(), model.len());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    // Cache coherence: a reader with the two-tier segment cache enabled is
    // observationally identical to a passthrough reader under random
    // put/get/erode interleavings — invalidation can drop performance,
    // never correctness.
    #[test]
    fn cached_reader_returns_identical_bytes_to_uncached_under_random_ops(
        ops in prop::collection::vec((0u8..4, 0u64..24, prop::collection::vec(any::<u8>(), 0..512)), 1..80)
    ) {
        use std::sync::Arc;
        let cached = SegmentReader::new(
            Arc::new(SegmentStore::open_mem_with_shards(4).unwrap()),
            1 << 20,
            16,
        );
        let uncached =
            SegmentReader::disabled(Arc::new(SegmentStore::open_mem_with_shards(4).unwrap()));
        let read = |reader: &SegmentReader, key: &SegmentKey| {
            reader
                .get(key)
                .unwrap()
                .map(|(bytes, _source)| (*bytes).clone())
        };
        for (op, seg, value) in ops {
            let key = SegmentKey::new("prop-cache", FormatId(1), seg);
            match op {
                0 => {
                    cached.put(&key, &value).unwrap();
                    uncached.put(&key, &value).unwrap();
                }
                1 => {
                    // Erosion's storage primitive.
                    cached.delete(&key).unwrap();
                    uncached.delete(&key).unwrap();
                }
                _ => prop_assert_eq!(read(&cached, &key), read(&uncached, &key)),
            }
        }
        // Final sweep: every key agrees, whether served hot or cold.
        for seg in 0..24u64 {
            let key = SegmentKey::new("prop-cache", FormatId(1), seg);
            prop_assert_eq!(read(&cached, &key), read(&uncached, &key));
        }
    }
}

// ---------------- codec round trips over real content ----------------

#[test]
fn codec_round_trips_are_lossless_across_gop_choices() {
    let source = VideoSource::new(Dataset::Miami);
    let fidelity = Fidelity::new(
        ImageQuality::Good,
        CropFactor::C75,
        Resolution::R360,
        FrameSampling::S1_2,
    );
    let frames = materialize_clip(&source.clip(0, 120), fidelity);
    for ki in KeyframeInterval::ALL {
        let segment = encode_segment(&frames, ki, SpeedStep::Fast).unwrap();
        let container = SegmentData::Encoded(segment);
        let bytes = container.to_bytes();
        let decoded = SegmentData::from_bytes(&bytes)
            .unwrap()
            .decode_all()
            .unwrap();
        assert_eq!(decoded.len(), frames.len(), "keyframe interval {ki}");
        for (d, f) in decoded.iter().zip(frames.iter()) {
            assert_eq!(d.plane, f.plane);
            assert_eq!(d.objects.len(), f.objects.len());
        }
    }
}

#[test]
fn detection_monotonicity_holds_over_fidelity_chains() {
    // O1 at the operator-output level: along a chain of increasingly rich
    // per-frame fidelities (quality, crop, resolution), measured accuracy
    // never decreases by more than noise. Frame sampling is held fixed:
    // sparse sampling interacts with temporal propagation in ways the paper
    // itself notes can be non-monotone (§6.2, "the trend … can be
    // non-monotone"), so it is excluded from the strict invariant.
    let lib = vstore_ops::OperatorLibrary::paper_testbed();
    let source = VideoSource::new(Dataset::Dashcam);
    let scenes = source.clip(0, 150);
    let reference = materialize_clip(&scenes, Fidelity::INGESTION);
    let chain = [
        Fidelity::new(
            ImageQuality::Worst,
            CropFactor::C50,
            Resolution::R100,
            FrameSampling::Full,
        ),
        Fidelity::new(
            ImageQuality::Bad,
            CropFactor::C75,
            Resolution::R200,
            FrameSampling::Full,
        ),
        Fidelity::new(
            ImageQuality::Good,
            CropFactor::C75,
            Resolution::R400,
            FrameSampling::Full,
        ),
        Fidelity::new(
            ImageQuality::Good,
            CropFactor::C100,
            Resolution::R540,
            FrameSampling::Full,
        ),
        Fidelity::INGESTION,
    ];
    for op in [
        OperatorKind::FullNN,
        OperatorKind::License,
        OperatorKind::Motion,
        OperatorKind::Ocr,
    ] {
        let mut prev = -1.0f64;
        for fidelity in chain {
            let frames = materialize_clip(&scenes, fidelity);
            let f1 = lib.evaluate_accuracy(op, &reference, &frames).f1;
            assert!(
                f1 >= prev - 0.05,
                "{op:?}: accuracy dropped from {prev:.3} to {f1:.3} at {fidelity}"
            );
            prev = f1;
        }
        assert_eq!(prev, 1.0, "{op:?} should be perfect at ingestion fidelity");
    }
}
