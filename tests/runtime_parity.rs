//! The parallel runtime must be *observationally identical* to the
//! sequential one: ingest and query reports, clock ledgers and stored data
//! may not change when sharding, ingest workers or query prefetch are
//! enabled — parallelism buys wall-clock time, never different results.

use vstore::{
    ErodeRequest, IngestRequest, QueryRequest, QuerySpec, RuntimeOptions, VStore, VStoreOptions,
};
use vstore_datasets::{Dataset, VideoSource};
use vstore_sim::ResourceKind;

fn options(runtime: RuntimeOptions) -> VStoreOptions {
    VStoreOptions::fast().with_runtime(runtime)
}

#[test]
fn parallel_ingest_and_query_reports_match_sequential_exactly() {
    let query = QuerySpec::query_a(0.8);
    let source = VideoSource::new(Dataset::Jackson);

    let sequential =
        VStore::open_temp("parity-seq", options(RuntimeOptions::sequential())).unwrap();
    let parallel = VStore::open_temp(
        "parity-par",
        options(RuntimeOptions {
            shards: 8,
            ingest_workers: 4,
            query_prefetch: 4,
            ..RuntimeOptions::sequential()
        }),
    )
    .unwrap();

    sequential.configure(&query.consumers()).unwrap();
    parallel.configure(&query.consumers()).unwrap();
    assert_eq!(sequential.configuration(), parallel.configuration());

    let seq_ingest = sequential
        .ingest(IngestRequest::new(&source).segments(3))
        .unwrap();
    let par_ingest = parallel
        .ingest(IngestRequest::new(&source).segments(3))
        .unwrap();
    // Byte-identical ingest reports: every field, including the f64 sums.
    assert_eq!(seq_ingest, par_ingest);
    assert_eq!(seq_ingest.segments_written, par_ingest.segments_written);
    assert_eq!(
        seq_ingest.total_modeled_bytes().bytes(),
        par_ingest.total_modeled_bytes().bytes()
    );

    // Identical stored bytes (aggregate; the parallel store spreads them
    // over 8 shards).
    assert_eq!(
        sequential.store_stats().live_bytes,
        parallel.store_stats().live_bytes
    );
    assert_eq!(
        sequential.store_stats().live_segments,
        parallel.store_stats().live_segments
    );
    assert_eq!(parallel.shard_stats().len(), 8);
    assert_eq!(sequential.shard_stats().len(), 1);

    let seq_result = sequential
        .query(QueryRequest::new("jackson", &query).segments(3))
        .unwrap();
    let par_result = parallel
        .query(QueryRequest::new("jackson", &query).segments(3))
        .unwrap();
    // Byte-identical query results: stage reports, speeds, positives, bytes.
    assert_eq!(seq_result, par_result);

    // The resource ledgers agree too (charges are applied in deterministic
    // order on both paths).
    let seq_usage = sequential.clock().usage();
    let par_usage = parallel.clock().usage();
    for kind in ResourceKind::ALL {
        assert_eq!(
            seq_usage.bytes(kind),
            par_usage.bytes(kind),
            "byte ledger diverged for {kind}"
        );
        assert!(
            (seq_usage.seconds(kind) - par_usage.seconds(kind)).abs() < 1e-12,
            "seconds ledger diverged for {kind}"
        );
    }

    std::fs::remove_dir_all(sequential.store_dir()).ok();
    std::fs::remove_dir_all(parallel.store_dir()).ok();
}

#[test]
fn erosion_behaves_identically_on_sharded_stores() {
    let query = QuerySpec::query_a(0.8);
    let source = VideoSource::new(Dataset::Park);

    let sequential =
        VStore::open_temp("parity-erode-seq", options(RuntimeOptions::sequential())).unwrap();
    let parallel = VStore::open_temp(
        "parity-erode-par",
        options(RuntimeOptions {
            shards: 4,
            ingest_workers: 2,
            query_prefetch: 2,
            ..RuntimeOptions::sequential()
        }),
    )
    .unwrap();
    sequential.configure(&query.consumers()).unwrap();
    parallel.configure(&query.consumers()).unwrap();
    sequential
        .ingest(IngestRequest::new(&source).segments(4))
        .unwrap();
    parallel
        .ingest(IngestRequest::new(&source).segments(4))
        .unwrap();

    for age in 0..30 {
        assert_eq!(
            sequential
                .erode(ErodeRequest::new("park").at_age_days(age))
                .unwrap(),
            parallel
                .erode(ErodeRequest::new("park").at_age_days(age))
                .unwrap(),
            "erosion diverged at age {age}"
        );
    }
    assert_eq!(
        sequential.store_stats().live_segments,
        parallel.store_stats().live_segments
    );
    std::fs::remove_dir_all(sequential.store_dir()).ok();
    std::fs::remove_dir_all(parallel.store_dir()).ok();
}
