//! Cross-crate integration tests: the full VStore lifecycle — configure,
//! ingest, query, erode — exercised through the public service handle and
//! its request builders, plus the §6.2-style comparison against the
//! baseline configurations.

use vstore::{
    Alternative, ErodeRequest, IngestRequest, QueryRequest, QuerySpec, VStore, VStoreOptions,
};
use vstore_datasets::{Dataset, VideoSource};
use vstore_types::{Consumer, OperatorKind};

fn cleanup(store: &VStore) {
    // Stores opened with open_temp live under the system temp dir.
    let _ = store.store_stats();
}

#[test]
fn configure_ingest_query_lifecycle() {
    let store = VStore::open_temp("e2e-lifecycle", VStoreOptions::fast()).unwrap();
    let query_hi = QuerySpec::query_a(0.9);
    let query_lo = QuerySpec::query_a(0.7);
    let mut consumers = query_hi.consumers();
    consumers.extend(query_lo.consumers());

    let config = store.configure(&consumers).unwrap();
    config.validate().unwrap();
    assert!(!config.storage_formats.is_empty());
    assert_eq!(config.subscriptions.len(), 6);

    let source = VideoSource::new(Dataset::Jackson);
    let report = store
        .ingest(IngestRequest::new(&source).segments(3))
        .unwrap();
    assert_eq!(report.segments_written, 3 * config.storage_formats.len());
    assert!(report.transcode_cores() > 0.0);
    assert!(store.store_stats().live_segments > 0);

    // The query runs and the relaxed accuracy target is at least as fast.
    let hi = store
        .query(QueryRequest::new("jackson", &query_hi).segments(3))
        .unwrap();
    let lo = store
        .query(QueryRequest::new("jackson", &query_lo).segments(3))
        .unwrap();
    assert!(hi.speed.factor() > 1.0);
    assert!(
        lo.speed.factor() >= hi.speed.factor() * 0.9,
        "lower accuracy should not be meaningfully slower: {} vs {}",
        lo.speed,
        hi.speed
    );
    // Cascade stage invariants.
    for result in [&hi, &lo] {
        assert_eq!(result.stages.len(), 3);
        for w in result.stages.windows(2) {
            assert!(w[1].segments_processed <= w[0].segments_passed);
        }
    }
    cleanup(&store);
}

#[test]
fn vstore_beats_one_to_n_baseline_end_to_end() {
    let store = VStore::open_temp("e2e-baseline", VStoreOptions::fast()).unwrap();
    let query = QuerySpec::query_b(0.8);
    let consumers = query.consumers();

    let vstore_cfg = store.configure(&consumers).unwrap();
    let baseline = store
        .engine()
        .derive_alternative(&consumers, Alternative::OneToN)
        .unwrap();

    let source = VideoSource::new(Dataset::Park);
    store
        .ingest(IngestRequest::new(&source).segments(2))
        .unwrap();
    // Also ingest the baseline's golden format (same stream, different id
    // space is already covered because both configurations share the golden
    // format id).
    store.install_configuration(baseline.clone());
    store
        .ingest(IngestRequest::new(&source).segments(2))
        .unwrap();

    store.install_configuration((*vstore_cfg).clone());
    let fast = store
        .query(QueryRequest::new("park", &query).segments(2))
        .unwrap();
    store.install_configuration(baseline);
    let slow = store
        .query(QueryRequest::new("park", &query).segments(2))
        .unwrap();
    assert!(
        fast.speed.factor() > slow.speed.factor(),
        "VStore {} should beat 1→N {}",
        fast.speed,
        slow.speed
    );
    cleanup(&store);
}

#[test]
fn erosion_degrades_speed_but_preserves_results() {
    let store = VStore::open_temp("e2e-erosion", VStoreOptions::fast()).unwrap();
    let query = QuerySpec::query_a(0.8);
    store.configure(&query.consumers()).unwrap();
    let source = VideoSource::new(Dataset::Tucson);
    store
        .ingest(IngestRequest::new(&source).segments(2))
        .unwrap();

    let before = store
        .query(QueryRequest::new("tucson", &query).segments(2))
        .unwrap();

    // Manufacture an erosion by deleting every non-golden segment via a
    // hand-crafted plan application: emulate "all non-golden formats fully
    // eroded" by installing a configuration whose erosion plan deletes 100 %
    // of every non-golden format on day 1.
    let mut config = (*store.configuration().unwrap()).clone();
    use vstore_types::{ErosionStep, Fraction};
    let deleted: std::collections::BTreeMap<_, _> = config
        .storage_formats
        .keys()
        .filter(|id| !id.is_golden())
        .map(|id| (*id, Fraction::ONE))
        .collect();
    config.erosion.steps = vec![ErosionStep {
        age_days: 1,
        deleted,
        overall_relative_speed: 0.5,
    }];
    store.install_configuration(config);
    let removed = store
        .erode(ErodeRequest::new("tucson").at_age_days(1))
        .unwrap();
    assert!(
        removed.segments_deleted > 0,
        "expected some segments to be eroded"
    );

    let after = store
        .query(QueryRequest::new("tucson", &query).segments(2))
        .unwrap();
    // All stages still execute (fallback to the golden format)…
    assert_eq!(after.stages[0].segments_processed, 2);
    assert!(after.stages.iter().any(|s| s.fallback_segments > 0));
    // …but the query can only be slower or equal.
    assert!(after.speed.factor() <= before.speed.factor() * 1.01);
    cleanup(&store);
}

#[test]
fn every_consumer_meets_its_accuracy_target() {
    let store = VStore::open_temp("e2e-accuracy", VStoreOptions::fast()).unwrap();
    let consumers: Vec<Consumer> = [
        (OperatorKind::Diff, 0.9),
        (OperatorKind::SpecializedNN, 0.8),
        (OperatorKind::FullNN, 0.9),
        (OperatorKind::Motion, 0.95),
        (OperatorKind::License, 0.8),
        (OperatorKind::Ocr, 0.7),
    ]
    .into_iter()
    .map(|(op, acc)| Consumer::new(op, acc))
    .collect();
    let config = store.configure(&consumers).unwrap();
    for sub in &config.subscriptions {
        assert!(
            sub.expected_accuracy + 1e-9 >= sub.consumer.accuracy.value(),
            "{} missed its target: {} < {}",
            sub.consumer,
            sub.expected_accuracy,
            sub.consumer.accuracy.value()
        );
        assert!(
            sub.retrieval_speed.factor() >= sub.consumption_speed.factor() * 0.999,
            "retrieval bottlenecks {}",
            sub.consumer
        );
    }
    cleanup(&store);
}
