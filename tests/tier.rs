//! The tiered-cold-storage acceptance suite: with a cold backend
//! configured, an `ErodeRequest` that previously deleted segments demotes
//! them instead; a subsequent query returns byte-identical frames via
//! read-through promotion, charges `ColdRead` (not `DiskRead`) for the
//! cold fetch, and `stats_report` shows non-zero demotions/promotions.
//! With no cold backend configured, behaviour is byte-identical to the
//! untiered store (the parity suites lock that in separately).

use std::collections::BTreeMap;
use vstore::{
    BackendOptions, Configuration, ErodeRequest, IngestRequest, QueryRequest, QuerySpec, VStore,
    VStoreError, VStoreOptions,
};
use vstore_datasets::{Dataset, VideoSource};
use vstore_sim::ResourceKind;
use vstore_storage::TierOptions;
use vstore_types::{ErosionStep, FormatId, Fraction};

/// A configuration whose age-1 erosion step removes every non-golden
/// segment, so one erode call moves a deterministic, non-empty set.
fn erode_everything_config(store: &VStore, query: &QuerySpec) -> Configuration {
    let mut config = (*store.configure(&query.consumers()).unwrap()).clone();
    let deleted: BTreeMap<FormatId, Fraction> = config
        .storage_formats
        .keys()
        .filter(|id| !id.is_golden())
        .map(|id| (*id, Fraction::ONE))
        .collect();
    assert!(
        !deleted.is_empty(),
        "configuration has no non-golden formats to erode"
    );
    config.erosion.steps = vec![ErosionStep {
        age_days: 1,
        deleted,
        overall_relative_speed: 0.5,
    }];
    config
}

fn tiered_store(tag: &str) -> VStore {
    VStore::open_temp(
        tag,
        VStoreOptions::fast()
            .with_backend(BackendOptions::Mem)
            .with_cache(64 << 20, 64)
            .with_cold_backend(BackendOptions::Mem),
    )
    .unwrap()
}

/// The acceptance criterion, end to end: erode → demote (not delete) →
/// query → byte-identical results via promotion, ColdRead charged,
/// stats_report shows the tier moving.
#[test]
fn erode_demotes_then_query_promotes_with_identical_results() {
    let store = tiered_store("tier-roundtrip");
    let query = QuerySpec::query_a(0.8);
    let config = erode_everything_config(&store, &query);
    store.install_configuration(config);

    let source = VideoSource::new(Dataset::Jackson);
    store
        .ingest(IngestRequest::new(&source).segments(3))
        .unwrap();
    let fresh = store
        .query(QueryRequest::new("jackson", &query).segments(3))
        .unwrap();
    let live_before = store.store_stats().live_segments;

    let report = store
        .erode(ErodeRequest::new("jackson").at_age_days(1))
        .unwrap();
    assert!(report.segments_demoted > 0, "{report}");
    assert!(report.demoted_bytes.bytes() > 0);
    assert_eq!(report.segments_deleted, 0, "tiered erosion must not delete");
    assert_eq!(report.deleted_bytes.bytes(), 0);
    assert_eq!(
        store.store_stats().live_segments,
        live_before - report.segments_demoted,
        "demoted segments left the hot store"
    );

    // The demoted segments are still queryable: the read path falls through
    // to the cold tier, promotes, and the results are byte-identical.
    let cold_before = store.clock().usage().bytes(ResourceKind::ColdRead);
    let aged = store
        .query(QueryRequest::new("jackson", &query).segments(3))
        .unwrap();
    assert_eq!(fresh, aged, "cold-tier round trip changed query results");
    assert_eq!(
        aged.stages
            .iter()
            .map(|s| s.fallback_segments)
            .sum::<usize>(),
        0,
        "promotion serves the subscribed format, not a fallback"
    );
    let usage = store.clock().usage();
    assert!(
        usage.bytes(ResourceKind::ColdRead) > cold_before,
        "cold fetches must charge ColdRead"
    );

    // Promotion moved the segments back: the hot store is whole again and a
    // re-run query reads nothing cold.
    assert_eq!(store.store_stats().live_segments, live_before);
    let cold_after = store.clock().usage().bytes(ResourceKind::ColdRead);
    let warm = store
        .query(QueryRequest::new("jackson", &query).segments(3))
        .unwrap();
    assert_eq!(fresh, warm);
    assert_eq!(
        store.clock().usage().bytes(ResourceKind::ColdRead),
        cold_after,
        "promoted segments are hot again; nothing reads cold"
    );

    let stats = store.tier_stats().expect("tier configured");
    assert_eq!(stats.demotions as usize, report.segments_demoted);
    assert!(stats.promotions > 0);
    assert!(stats.cold_hits > 0);
    assert_eq!(stats.cold_segments, 0, "everything promoted back");
    assert!(stats.cold_hit_latency.count() > 0);
    assert_eq!(stats.failed_demotions, 0);

    let rendered = store.stats_report().to_string();
    assert!(rendered.contains("tier:"), "{rendered}");
    assert!(!rendered.contains("NaN"), "{rendered}");
    std::fs::remove_dir_all(store.store_dir()).ok();
}

/// Golden-format invariant at the facade level: tiered erosion demotes
/// non-golden formats only, and the golden format never leaves the hot
/// tier (matching `erosion.rs`'s never-eroded root invariant).
#[test]
fn golden_format_never_leaves_the_hot_tier() {
    let store = tiered_store("tier-golden");
    let query = QuerySpec::query_a(0.8);
    let config = erode_everything_config(&store, &query);
    store.install_configuration(config);
    let source = VideoSource::new(Dataset::Jackson);
    const SEGMENTS: usize = 2;
    store
        .ingest(IngestRequest::new(&source).segments(SEGMENTS as u64))
        .unwrap();
    let total = store.store_stats().live_segments;

    // The step erodes 100 % of every non-golden format, so afterwards the
    // hot store holds exactly the golden segments — one per ingested
    // segment — and the cold store holds everything else.
    let report = store
        .erode(ErodeRequest::new("jackson").at_age_days(1))
        .unwrap();
    assert_eq!(report.segments_demoted, total - SEGMENTS, "{report}");
    assert_eq!(store.store_stats().live_segments, SEGMENTS);
    let stats = store.tier_stats().unwrap();
    assert_eq!(stats.cold_segments, total - SEGMENTS);
    assert_eq!(
        stats.demotions as usize,
        total - SEGMENTS,
        "the golden format never leaves the hot tier"
    );
    std::fs::remove_dir_all(store.store_dir()).ok();
}

/// Re-eroding after promotion keeps working: segments cycle hot → cold →
/// hot → cold without loss, and every cycle is observable in the stats.
#[test]
fn demote_promote_demote_cycles_never_lose_segments() {
    let store = tiered_store("tier-cycles");
    let query = QuerySpec::query_a(0.8);
    let config = erode_everything_config(&store, &query);
    store.install_configuration(config);
    let source = VideoSource::new(Dataset::Jackson);
    store
        .ingest(IngestRequest::new(&source).segments(2))
        .unwrap();
    let fresh = store
        .query(QueryRequest::new("jackson", &query).segments(2))
        .unwrap();
    let live = store.store_stats().live_segments;

    for round in 1..=3 {
        let report = store
            .erode(ErodeRequest::new("jackson").at_age_days(1))
            .unwrap();
        assert!(report.segments_demoted > 0, "round {round}: {report}");
        let result = store
            .query(QueryRequest::new("jackson", &query).segments(2))
            .unwrap();
        assert_eq!(fresh, result, "round {round} diverged");
        assert_eq!(store.store_stats().live_segments, live, "round {round}");
    }
    let stats = store.tier_stats().unwrap();
    assert!(stats.demotions >= 3);
    assert!(stats.promotions >= 3);
    std::fs::remove_dir_all(store.store_dir()).ok();
}

/// Tier options are validated at open, like RuntimeOptions.
#[test]
fn open_rejects_invalid_tier_options() {
    let options = VStoreOptions::fast()
        .with_backend(BackendOptions::Mem)
        .with_tier(TierOptions::cold_mem().with_demote_queue(0, 8));
    let err = VStore::open_temp("tier-bad-options", options).unwrap_err();
    assert!(matches!(err, VStoreError::InvalidArgument(_)), "{err}");
}

/// Without a cold backend there is no tier section and no tier stats —
/// the report shape of the untiered store is unchanged.
#[test]
fn untiered_store_reports_no_tier_section() {
    let store = VStore::open_temp(
        "tier-disabled",
        VStoreOptions::fast().with_backend(BackendOptions::Mem),
    )
    .unwrap();
    assert!(store.tier_stats().is_none());
    let report = store.stats_report();
    assert!(report.tier.is_none());
    assert!(!report.to_string().contains("tier:"));
    std::fs::remove_dir_all(store.store_dir()).ok();
}
