//! Integration tests of the backward-derivation pipeline across crates:
//! the full 24-consumer configuration, the requirements R1–R4 of §3.1, and
//! the behaviour of the alternative configurations.

use std::sync::Arc;
use vstore_core::{Alternative, CoalesceStrategy, ConfigurationEngine, EngineOptions};
use vstore_ops::OperatorLibrary;
use vstore_profiler::{Profiler, ProfilerConfig};
use vstore_sim::CodingCostModel;
use vstore_types::{ByteSize, Consumer, FidelitySpace, OperatorKind};

fn profiler() -> Arc<Profiler> {
    Arc::new(Profiler::new(
        OperatorLibrary::paper_testbed(),
        CodingCostModel::paper_testbed(),
        ProfilerConfig::fast_test(),
    ))
}

fn reduced_options() -> EngineOptions {
    EngineOptions {
        fidelity_space: FidelitySpace::reduced(),
        ..EngineOptions::default()
    }
}

#[test]
fn full_24_consumer_configuration_satisfies_r1_to_r3() {
    let profiler = profiler();
    let engine = ConfigurationEngine::new(Arc::clone(&profiler), reduced_options());
    let consumers = Consumer::evaluation_set();
    let config = engine.derive(&consumers).expect("derivation succeeds");
    config.validate().expect("R1/R2 validation");

    assert_eq!(config.subscriptions.len(), 24);
    // The golden format serves as the root and is the richest stored format.
    let golden = config.golden().unwrap();
    for sf in config.storage_formats.values() {
        assert!(golden.fidelity.richer_or_equal(&sf.fidelity));
    }
    // R3: consolidation — far fewer storage formats than consumers, and
    // strictly fewer than unique consumption formats unless nothing could be
    // merged.
    assert!(config.storage_formats.len() < consumers.len());
    assert!(config.storage_formats.len() <= config.unique_consumption_formats());
    // Accuracy targets met.
    for sub in &config.subscriptions {
        assert!(sub.expected_accuracy + 1e-9 >= sub.consumer.accuracy.value());
    }
    // The configuration is non-trivial: multiple knobs derived automatically.
    assert!(
        config.knob_count() > 40,
        "only {} knobs",
        config.knob_count()
    );
}

#[test]
fn lower_accuracy_consumers_get_no_slower_formats() {
    let profiler = profiler();
    let engine = ConfigurationEngine::new(profiler, reduced_options());
    let consumers = Consumer::evaluation_set();
    let config = engine.derive(&consumers).unwrap();
    for op in OperatorKind::QUERY_OPS {
        let mut last_speed = f64::INFINITY;
        // Accuracy levels in descending order: 0.95, 0.9, 0.8, 0.7.
        for accuracy in [0.95, 0.9, 0.8, 0.7] {
            let sub = config.subscription(&Consumer::new(op, accuracy)).unwrap();
            assert!(
                sub.consumption_speed.factor() >= last_speed * 0.999 || last_speed == f64::INFINITY,
                "{op:?}@{accuracy}: speed decreased when the target was relaxed"
            );
            last_speed = last_speed.min(sub.consumption_speed.factor());
        }
    }
}

#[test]
fn alternatives_rank_as_in_the_paper() {
    let profiler = profiler();
    let engine = ConfigurationEngine::new(Arc::clone(&profiler), reduced_options());
    let consumers: Vec<Consumer> = vec![
        Consumer::new(OperatorKind::Diff, 0.9),
        Consumer::new(OperatorKind::SpecializedNN, 0.9),
        Consumer::new(OperatorKind::FullNN, 0.9),
        Consumer::new(OperatorKind::FullNN, 0.7),
    ];
    let vstore = engine.derive(&consumers).unwrap();
    let one_to_one = engine
        .derive_alternative(&consumers, Alternative::OneToOne)
        .unwrap();
    let one_to_n = engine
        .derive_alternative(&consumers, Alternative::OneToN)
        .unwrap();
    let n_to_n = engine
        .derive_alternative(&consumers, Alternative::NToN)
        .unwrap();

    // Storage cost: 1→1 = 1→N ≤ VStore ≤ N→N.
    let storage = |cfg: &vstore_types::Configuration| engine.storage_bytes_per_second(cfg).bytes();
    assert_eq!(storage(&one_to_one), storage(&one_to_n));
    assert!(storage(&one_to_one) <= storage(&vstore));
    assert!(storage(&vstore) <= storage(&n_to_n));

    // Ingest cost: single-format baselines are cheapest, N→N most expensive.
    let ingest = |cfg: &vstore_types::Configuration| engine.ingest_cores(cfg);
    assert!(ingest(&one_to_one) <= ingest(&vstore) + 1e-9);
    assert!(ingest(&vstore) <= ingest(&n_to_n) + 1e-9);

    // Effective speed of the fast Diff consumer: VStore ≥ 1→N.
    let diff = Consumer::new(OperatorKind::Diff, 0.9);
    assert!(
        engine.effective_consumer_speed(&vstore, &diff).factor()
            >= engine.effective_consumer_speed(&one_to_n, &diff).factor()
    );
}

#[test]
fn distance_based_coalescing_never_beats_heuristic_storage() {
    let profiler = profiler();
    let heuristic_engine = ConfigurationEngine::new(Arc::clone(&profiler), reduced_options());
    let distance_engine = ConfigurationEngine::new(
        Arc::clone(&profiler),
        EngineOptions {
            strategy: CoalesceStrategy::DistanceBased,
            ..reduced_options()
        },
    );
    let consumers: Vec<Consumer> = OperatorKind::QUERY_OPS
        .iter()
        .flat_map(|&op| [0.9, 0.8].into_iter().map(move |a| Consumer::new(op, a)))
        .collect();
    let cfs = heuristic_engine
        .derive_consumption_formats(&consumers)
        .unwrap();
    let heuristic = heuristic_engine.derive_storage_formats(&cfs).unwrap();
    let distance = distance_engine.derive_storage_formats(&cfs).unwrap();
    assert!(
        distance.total_bytes_per_video_second.bytes() + 1
            >= heuristic.total_bytes_per_video_second.bytes()
    );
}

#[test]
fn storage_budget_produces_feasible_erosion_across_the_board() {
    let profiler = profiler();
    let base = ConfigurationEngine::new(Arc::clone(&profiler), reduced_options());
    let consumers = Consumer::evaluation_set();
    let unbudgeted = base.derive(&consumers).unwrap();
    let per_second = base.storage_bytes_per_second(&unbudgeted).bytes();
    let lifespan_days = 10u64;
    let footprint = per_second * 86_400 * lifespan_days;

    let engine = ConfigurationEngine::new(
        Arc::clone(&profiler),
        EngineOptions {
            storage_budget: Some(ByteSize(footprint * 9 / 10)),
            lifespan_days: lifespan_days as u32,
            ..reduced_options()
        },
    );
    let config = engine.derive(&consumers).unwrap();
    let plan = &config.erosion;
    assert!(plan.decay_factor >= 0.0);
    // Deleted fractions are cumulative (non-decreasing with age) and the
    // overall speed is non-increasing.
    let mut prev_speed = 1.0 + 1e-9;
    for step in &plan.steps {
        assert!(step.overall_relative_speed <= prev_speed + 1e-9);
        prev_speed = step.overall_relative_speed;
        for id in step.deleted.keys() {
            assert!(!id.is_golden(), "golden format must never be eroded");
        }
    }
}
