//! The compressed-domain query-planner acceptance suite: the metadata
//! sidecar lifecycle (reopen, backend parity, erosion/demotion), the skip
//! path's accounting invariants (a skipped segment is never fetched, never
//! decoded, never charged; cache statistics stay consistent), and the
//! exact-mode guarantee (planner off ⇒ byte-identical to the unplanned
//! engine; missing or corrupt sidecars degrade to the full decode, never a
//! wrong answer).
//!
//! The park stream is the skewed fixture throughout: near-static segments
//! score ~3–4.5 change units in the sidecar while its periodic activity
//! bursts (every 4th segment) score >12, so a skip threshold of 6.0
//! deterministically skips exactly the quiet segments.

use std::collections::BTreeMap;
use vstore::{
    BackendOptions, Configuration, ErodeRequest, IngestRequest, QueryRequest, QuerySpec, VStore,
    VStoreOptions,
};
use vstore_datasets::{Dataset, VideoSource};
use vstore_sim::ResourceKind;
use vstore_types::{ErosionStep, FormatId, Fraction};

/// Quiet park segments score below this, activity bursts far above it.
const SKIP_THRESHOLD: f64 = 6.0;

/// Configure for query A and ingest `segments` park segments.
fn ingest_park(store: &VStore, query: &QuerySpec, segments: u64) {
    store.configure(&query.consumers()).unwrap();
    store
        .ingest(IngestRequest::new(&VideoSource::new(Dataset::Park)).segments(segments))
        .unwrap();
}

/// A planned query-A request over `[0, segments)` of park at the suite's
/// skip threshold.
fn planned_request(query: &QuerySpec, segments: u64) -> QueryRequest {
    QueryRequest::new("park", query)
        .segments(segments)
        .with_planner(true)
        .skip_threshold(SKIP_THRESHOLD)
}

/// Park's burst period is 4 segments: of `[0, segments)`, every 4th index
/// (3, 7, …) is a burst, everything else is quiet and skippable at the
/// suite's threshold.
fn expected_skips(segments: u64) -> usize {
    (0..segments).filter(|seg| seg % 4 != 3).count()
}

#[test]
fn planner_off_is_byte_identical_and_planned_stages_are_annotated() {
    const SEGMENTS: u64 = 4;
    let store = VStore::open_temp(
        "planner-exact",
        VStoreOptions::fast().with_backend(BackendOptions::Mem),
    )
    .unwrap();
    let query = QuerySpec::query_a(0.8);
    ingest_park(&store, &query, SEGMENTS);

    // The session default (planner off) and an explicit off-switch are the
    // same exact scan: no skips, declaration order, no planner annotations.
    let default_off = store
        .query(QueryRequest::new("park", &query).segments(SEGMENTS))
        .unwrap();
    let explicit_off = store
        .query(
            QueryRequest::new("park", &query)
                .segments(SEGMENTS)
                .with_planner(false),
        )
        .unwrap();
    assert_eq!(default_off, explicit_off);
    assert_eq!(default_off.segments_skipped, 0);
    assert_eq!(
        default_off.stages.iter().map(|s| s.op).collect::<Vec<_>>(),
        query.cascade,
        "exact mode runs the cascade in declaration order"
    );
    assert!(default_off
        .stages
        .iter()
        .all(|s| s.planned_selectivity.is_none()));

    // The planned run annotates every stage, pins the declared final stage
    // last, skips exactly the quiet segments, and its positives are a
    // subset of the exact scan's (the skip only ever drops segments).
    let planned = store.query(planned_request(&query, SEGMENTS)).unwrap();
    assert_eq!(planned.segments_skipped, expected_skips(SEGMENTS));
    assert_eq!(
        planned.stages.last().unwrap().op,
        *query.cascade.last().unwrap()
    );
    for stage in &planned.stages {
        assert!(stage.planned_selectivity.is_some(), "{:?}", stage.op);
        if let (Some(planned_sel), Some(actual)) =
            (stage.planned_selectivity, stage.actual_selectivity())
        {
            assert!((0.0..=1.0).contains(&planned_sel));
            assert!((0.0..=1.0).contains(&actual));
        }
    }
    assert!(planned
        .positive_frames
        .iter()
        .all(|f| default_off.positive_frames.contains(f)));
}

#[test]
fn sidecars_survive_reopen_on_the_fs_backend() {
    const SEGMENTS: u64 = 4;
    let dir = vstore_storage::SegmentStore::temp_dir("planner-reopen");
    let query = QuerySpec::query_a(0.8);

    let first = {
        let store = VStore::open(&dir, VStoreOptions::fast()).unwrap();
        ingest_park(&store, &query, SEGMENTS);
        store.query(planned_request(&query, SEGMENTS)).unwrap()
    };
    assert_eq!(first.segments_skipped, expected_skips(SEGMENTS));

    // Reopen the same directory with a fresh handle: the sidecars must
    // still be there and drive the identical plan.
    let store = VStore::open(&dir, VStoreOptions::fast()).unwrap();
    store.configure(&query.consumers()).unwrap();
    let reopened = store.query(planned_request(&query, SEGMENTS)).unwrap();
    assert_eq!(first, reopened, "reopen changed the planned query");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn planned_queries_agree_across_fs_mem_and_tiered_backends() {
    const SEGMENTS: u64 = 4;
    let query = QuerySpec::query_a(0.8);
    let run = |store: &VStore| {
        ingest_park(store, &query, SEGMENTS);
        store.query(planned_request(&query, SEGMENTS)).unwrap()
    };

    let fs = VStore::open_temp("planner-parity-fs", VStoreOptions::fast()).unwrap();
    let mem = VStore::open_temp(
        "planner-parity-mem",
        VStoreOptions::fast().with_backend(BackendOptions::Mem),
    )
    .unwrap();
    let tiered = VStore::open_temp(
        "planner-parity-tiered",
        VStoreOptions::fast()
            .with_backend(BackendOptions::Mem)
            .with_cold_backend(BackendOptions::Mem),
    )
    .unwrap();

    let fs_result = run(&fs);
    let mem_result = run(&mem);
    let tiered_result = run(&tiered);
    assert_eq!(fs_result.segments_skipped, expected_skips(SEGMENTS));
    assert_eq!(fs_result, mem_result, "fs vs mem diverged");
    assert_eq!(fs_result, tiered_result, "fs vs tiered diverged");
    std::fs::remove_dir_all(fs.store_dir()).ok();
}

/// A configuration whose age-1 erosion step removes every non-golden
/// segment, so one erode call demotes a deterministic, non-empty set.
fn erode_everything_config(store: &VStore, query: &QuerySpec) -> Configuration {
    let mut config = (*store.configure(&query.consumers()).unwrap()).clone();
    let deleted: BTreeMap<FormatId, Fraction> = config
        .storage_formats
        .keys()
        .filter(|id| !id.is_golden())
        .map(|id| (*id, Fraction::ONE))
        .collect();
    assert!(!deleted.is_empty());
    config.erosion.steps = vec![ErosionStep {
        age_days: 1,
        deleted,
        overall_relative_speed: 0.5,
    }];
    config
}

#[test]
fn erode_demote_promote_keeps_sidecars_coherent() {
    const SEGMENTS: u64 = 4;
    let store = VStore::open_temp(
        "planner-tier",
        VStoreOptions::fast()
            .with_backend(BackendOptions::Mem)
            .with_cold_backend(BackendOptions::Mem),
    )
    .unwrap();
    let query = QuerySpec::query_a(0.8);
    let config = erode_everything_config(&store, &query);
    store.install_configuration(config);
    store
        .ingest(IngestRequest::new(&VideoSource::new(Dataset::Park)).segments(SEGMENTS))
        .unwrap();

    let fresh = store.query(planned_request(&query, SEGMENTS)).unwrap();
    assert_eq!(fresh.segments_skipped, expected_skips(SEGMENTS));

    // Tiered erosion demotes instead of deleting; sidecars stay with the
    // hot store and the planned query is unchanged — the non-skipped
    // segments read through the cold tier and promote back.
    let report = store
        .erode(ErodeRequest::new("park").at_age_days(1))
        .unwrap();
    assert!(report.segments_demoted > 0, "{report}");
    assert_eq!(report.segments_deleted, 0);
    let demoted = store.query(planned_request(&query, SEGMENTS)).unwrap();
    assert_eq!(fresh, demoted, "demotion changed the planned query");
    assert!(
        store.clock().usage().bytes(ResourceKind::ColdRead).bytes() > 0,
        "the surviving segments were fetched from the cold tier"
    );

    // After read-through promotion everything is hot again and the plan
    // still holds.
    let promoted = store.query(planned_request(&query, SEGMENTS)).unwrap();
    assert_eq!(fresh, promoted, "promotion changed the planned query");
}

#[test]
fn missing_or_corrupt_sidecars_degrade_to_the_full_decode() {
    const SEGMENTS: u64 = 4;
    let dir = vstore_storage::SegmentStore::temp_dir("planner-corrupt");
    let store = VStore::open(&dir, VStoreOptions::fast()).unwrap();
    let query = QuerySpec::query_a(0.8);
    ingest_park(&store, &query, SEGMENTS);

    let exact = store
        .query(
            QueryRequest::new("park", &query)
                .segments(SEGMENTS)
                .with_planner(false),
        )
        .unwrap();
    let planned = store.query(planned_request(&query, SEGMENTS)).unwrap();
    assert_eq!(planned.segments_skipped, expected_skips(SEGMENTS));

    // Overwrite every sidecar on disk with garbage: the CRC check must
    // reject them all, and the planned query must fall back to fetching
    // and decoding everything — same positives as the exact scan, zero
    // skips, never a wrong answer.
    let meta_dir = dir.join("meta");
    let mut corrupted = 0usize;
    for entry in std::fs::read_dir(&meta_dir).expect("ingest wrote sidecars") {
        let path = entry.unwrap().path();
        std::fs::write(&path, b"not a sidecar").unwrap();
        corrupted += 1;
    }
    assert!(corrupted > 0, "no sidecar files under {meta_dir:?}");
    let degraded = store.query(planned_request(&query, SEGMENTS)).unwrap();
    assert_eq!(
        degraded.segments_skipped, 0,
        "corrupt sidecars must not skip"
    );
    assert_eq!(degraded.positive_frames, exact.positive_frames);

    // Remove the sidecars entirely: same degradation.
    std::fs::remove_dir_all(&meta_dir).unwrap();
    let missing = store.query(planned_request(&query, SEGMENTS)).unwrap();
    assert_eq!(
        missing.segments_skipped, 0,
        "missing sidecars must not skip"
    );
    assert_eq!(missing.positive_frames, exact.positive_frames);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn skipped_segments_charge_nothing_and_cache_stats_stay_consistent() {
    const SEGMENTS: u64 = 4;
    let query = QuerySpec::query_a(0.8);

    // Cache off: every fetched segment is charged to the disk ledger
    // exactly once, so the ledger delta of a query equals its reported
    // bytes_read — for the exact scan AND the planned one. Skipped
    // segments therefore charge nothing anywhere.
    let store = VStore::open_temp(
        "planner-charges",
        VStoreOptions::fast().with_backend(BackendOptions::Mem),
    )
    .unwrap();
    ingest_park(&store, &query, SEGMENTS);
    let disk = |store: &VStore| store.clock().usage().bytes(ResourceKind::DiskRead);

    let before = disk(&store);
    let exact = store
        .query(
            QueryRequest::new("park", &query)
                .segments(SEGMENTS)
                .with_planner(false),
        )
        .unwrap();
    let after_exact = disk(&store);
    assert_eq!(
        after_exact - before,
        exact.bytes_read,
        "exact scan: ledger delta == reported bytes"
    );

    let planned = store.query(planned_request(&query, SEGMENTS)).unwrap();
    let after_planned = disk(&store);
    assert_eq!(planned.segments_skipped, expected_skips(SEGMENTS));
    assert_eq!(
        after_planned - after_exact,
        planned.bytes_read,
        "planned scan: ledger delta == reported bytes"
    );
    assert!(
        planned.bytes_read.bytes() * 2 < exact.bytes_read.bytes(),
        "skipping {}/{SEGMENTS} segments must shrink bytes read: {} vs {}",
        planned.segments_skipped,
        planned.bytes_read,
        exact.bytes_read
    );
    // Re-running the planned query charges the identical amount: every
    // fetched segment is charged exactly once, deterministically.
    let replay = store.query(planned_request(&query, SEGMENTS)).unwrap();
    assert_eq!(replay, planned);
    assert_eq!(disk(&store) - after_planned, planned.bytes_read);
    // The cache is disabled, and sidecar reads bypass the reader: stats
    // stay all-zero no matter how many sidecars the planner consulted.
    let stats = store.cache_stats();
    assert_eq!((stats.raw_hits, stats.raw_misses), (0, 0));
    assert_eq!((stats.decoded_hits, stats.decoded_misses), (0, 0));

    // Cache on: the planner bypasses the reader for sidecars, so cache
    // traffic only ever counts fetched segments — a planned first query
    // records strictly fewer misses than an exact first query on an
    // identical twin store, and hits/misses still add up on replay.
    let twin = |tag: &str| {
        let store = VStore::open_temp(
            tag,
            VStoreOptions::fast()
                .with_backend(BackendOptions::Mem)
                .with_cache(64 << 20, 64),
        )
        .unwrap();
        ingest_park(&store, &query, SEGMENTS);
        store
    };
    let exact_store = twin("planner-cache-exact");
    exact_store
        .query(
            QueryRequest::new("park", &query)
                .segments(SEGMENTS)
                .with_planner(false),
        )
        .unwrap();
    let exact_stats = exact_store.cache_stats();
    let planned_store = twin("planner-cache-planned");
    planned_store
        .query(planned_request(&query, SEGMENTS))
        .unwrap();
    let planned_stats = planned_store.cache_stats();
    assert!(
        planned_stats.raw_misses + planned_stats.decoded_misses
            < exact_stats.raw_misses + exact_stats.decoded_misses,
        "skipped segments must not produce cache misses: {planned_stats:?} vs {exact_stats:?}"
    );
    // A hot replay of the planned query is served by the caches — the skip
    // path did not poison hit/miss accounting.
    let misses_before = planned_stats.raw_misses + planned_stats.decoded_misses;
    planned_store
        .query(planned_request(&query, SEGMENTS))
        .unwrap();
    let replay_stats = planned_store.cache_stats();
    assert_eq!(
        replay_stats.raw_misses + replay_stats.decoded_misses,
        misses_before,
        "hot replay must not miss"
    );
    assert!(
        replay_stats.raw_hits + replay_stats.decoded_hits
            > planned_stats.raw_hits + planned_stats.decoded_hits,
        "hot replay must hit the caches"
    );
}
