//! Backend parity: [`MemBackend`] must be observationally identical to
//! [`FsBackend`] — same store statistics byte for byte (the record framing
//! is backend-independent), same resource ledgers, same query results. The
//! backend trait changes *where* bytes live, never *what* the store does.

use std::sync::Arc;
use vstore::{
    BackendOptions, ErodeRequest, IngestRequest, QueryRequest, QuerySpec, VStore, VStoreOptions,
};
use vstore_datasets::{Dataset, VideoSource};
use vstore_sim::ResourceKind;
use vstore_storage::{FsBackend, MemBackend, SegmentKey, SegmentStore, StorageBackend};
use vstore_types::FormatId;

fn key(stream: &str, format: u32, index: u64) -> SegmentKey {
    SegmentKey::new(stream, FormatId(format), index)
}

/// Drive an identical put/overwrite/delete/compact workload and return the
/// stats trail.
fn run_store_workload(store: &SegmentStore) -> Vec<vstore_storage::StoreStats> {
    let mut trail = Vec::new();
    for i in 0..40 {
        store
            .put(
                &key("parity", 1, i),
                &vec![(i % 251) as u8; 700 + i as usize],
            )
            .unwrap();
    }
    for i in 0..10 {
        store.put(&key("parity", 1, i), &vec![9u8; 300]).unwrap(); // supersede
    }
    for i in 30..40 {
        store.delete(&key("parity", 1, i)).unwrap();
    }
    let _ = store.get(&key("parity", 1, 5)).unwrap();
    let _ = store.get(&key("parity", 1, 35)).unwrap(); // miss
    trail.push(store.stats());
    store.compact().unwrap();
    trail.push(store.stats());
    trail
}

#[test]
fn mem_and_fs_stores_produce_byte_identical_stats() {
    let fs = SegmentStore::open_temp_with_shards("backend-parity-fs", 4).unwrap();
    let mem = SegmentStore::open_mem_with_shards(4).unwrap();

    let fs_trail = run_store_workload(&fs);
    let mem_trail = run_store_workload(&mem);
    assert_eq!(
        fs_trail, mem_trail,
        "StoreStats diverged between backends (framing must be identical)"
    );
    // Key and byte accounting agree per (stream, format) too.
    assert_eq!(
        fs.segments_of("parity", FormatId(1)),
        mem.segments_of("parity", FormatId(1))
    );
    assert_eq!(
        fs.bytes_of("parity", FormatId(1)),
        mem.bytes_of("parity", FormatId(1))
    );
    std::fs::remove_dir_all(fs.dir()).ok();
}

#[test]
fn shard_meta_round_trips_identically_on_both_backends() {
    // Reopening on the same backend honours the recorded shard count on
    // both implementations (the SHARDS meta file goes through the trait).
    let dir =
        std::env::temp_dir().join(format!("vstore-backend-parity-meta-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let backends: Vec<Arc<dyn StorageBackend>> = vec![
        Arc::new(FsBackend::new(&dir).unwrap()),
        Arc::new(MemBackend::new()),
    ];
    for backend in backends {
        let store = SegmentStore::open_with_backend(Arc::clone(&backend), 3).unwrap();
        store.put(&key("meta", 1, 0), b"value").unwrap();
        store.sync().unwrap();
        drop(store);
        let reopened = SegmentStore::open_with_backend(backend, 16).unwrap();
        assert_eq!(reopened.shard_count(), 3);
        assert_eq!(reopened.get(&key("meta", 1, 0)).unwrap().unwrap(), b"value");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_lifecycle_ledgers_match_across_backends() {
    let query = QuerySpec::query_a(0.8);
    let source = VideoSource::new(Dataset::Jackson);

    let run = |backend: BackendOptions| {
        let store = VStore::open_temp(
            "backend-parity-lifecycle",
            VStoreOptions::fast().with_backend(backend),
        )
        .unwrap();
        store.configure(&query.consumers()).unwrap();
        let ingest = store
            .ingest(IngestRequest::new(&source).segments(3))
            .unwrap();
        let result = store
            .query(QueryRequest::new("jackson", &query).segments(3))
            .unwrap();
        let eroded = store
            .erode(ErodeRequest::new("jackson").at_age_days(5))
            .unwrap();
        let stats = store.store_stats();
        let usage = store.clock().usage();
        let dir = store.store_dir();
        drop(store);
        std::fs::remove_dir_all(dir).ok();
        (ingest, result, eroded, stats, usage)
    };

    let (fs_ingest, fs_result, fs_eroded, fs_stats, fs_usage) = run(BackendOptions::Fs);
    let (mem_ingest, mem_result, mem_eroded, mem_stats, mem_usage) = run(BackendOptions::Mem);

    // Byte-identical ingest reports, query results and store statistics.
    assert_eq!(fs_ingest, mem_ingest);
    assert_eq!(fs_result, mem_result);
    assert_eq!(fs_eroded, mem_eroded);
    assert_eq!(fs_stats, mem_stats);

    // The resource ledgers agree byte for byte as well.
    for kind in ResourceKind::ALL {
        assert_eq!(
            fs_usage.bytes(kind),
            mem_usage.bytes(kind),
            "byte ledger diverged for {kind}"
        );
        assert!(
            (fs_usage.seconds(kind) - mem_usage.seconds(kind)).abs() < 1e-12,
            "seconds ledger diverged for {kind}"
        );
    }
}
