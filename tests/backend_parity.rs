//! Backend parity: every [`StorageBackend`] must be observationally
//! identical to [`FsBackend`] — same store statistics byte for byte (the
//! record framing is backend-independent), same resource ledgers, same
//! query results. The backend trait changes *where* bytes live, never
//! *what* the store does. Covered backends: [`MemBackend`], the
//! object-store-style [`ColdBackend`], and the hot+cold [`TieredBackend`]
//! (including with live segments demoted to its cold half).

use std::sync::Arc;
use vstore::{
    BackendOptions, ErodeRequest, IngestRequest, QueryRequest, QuerySpec, VStore, VStoreOptions,
};
use vstore_datasets::{Dataset, VideoSource};
use vstore_sim::ResourceKind;
use vstore_storage::{
    ColdBackend, FsBackend, MemBackend, SegmentKey, SegmentStore, StorageBackend, TieredBackend,
};
use vstore_types::FormatId;

/// A fresh cold backend over an in-memory device.
fn cold_backend() -> Arc<dyn StorageBackend> {
    Arc::new(ColdBackend::new(Arc::new(MemBackend::new())).unwrap())
}

/// A fresh tiered backend: in-memory hot half, cold-object cold half.
fn tiered_backend() -> Arc<dyn StorageBackend> {
    Arc::new(TieredBackend::new(Arc::new(MemBackend::new()), cold_backend()).unwrap())
}

fn key(stream: &str, format: u32, index: u64) -> SegmentKey {
    SegmentKey::new(stream, FormatId(format), index)
}

/// Drive an identical put/overwrite/delete/compact workload and return the
/// stats trail.
fn run_store_workload(store: &SegmentStore) -> Vec<vstore_storage::StoreStats> {
    let mut trail = Vec::new();
    for i in 0..40 {
        store
            .put(
                &key("parity", 1, i),
                &vec![(i % 251) as u8; 700 + i as usize],
            )
            .unwrap();
    }
    for i in 0..10 {
        store.put(&key("parity", 1, i), &vec![9u8; 300]).unwrap(); // supersede
    }
    for i in 30..40 {
        store.delete(&key("parity", 1, i)).unwrap();
    }
    let _ = store.get(&key("parity", 1, 5)).unwrap();
    let _ = store.get(&key("parity", 1, 35)).unwrap(); // miss
    trail.push(store.stats());
    store.compact().unwrap();
    trail.push(store.stats());
    trail
}

#[test]
fn all_backends_produce_byte_identical_stats() {
    let fs = SegmentStore::open_temp_with_shards("backend-parity-fs", 4).unwrap();
    let fs_trail = run_store_workload(&fs);

    for (label, store) in [
        ("mem", SegmentStore::open_mem_with_shards(4).unwrap()),
        (
            "cold",
            SegmentStore::open_with_backend(cold_backend(), 4).unwrap(),
        ),
        (
            "tiered",
            SegmentStore::open_with_backend(tiered_backend(), 4).unwrap(),
        ),
    ] {
        let trail = run_store_workload(&store);
        assert_eq!(
            fs_trail, trail,
            "StoreStats diverged between fs and {label} (framing must be identical)"
        );
        // Key and byte accounting agree per (stream, format) too.
        assert_eq!(
            fs.segments_of("parity", FormatId(1)),
            store.segments_of("parity", FormatId(1)),
            "{label}"
        );
        assert_eq!(
            fs.bytes_of("parity", FormatId(1)),
            store.bytes_of("parity", FormatId(1)),
            "{label}"
        );
    }
    std::fs::remove_dir_all(fs.dir()).ok();
}

/// A store on a [`TieredBackend`] keeps serving byte-identical reads after
/// its sealed value logs are demoted to the cold half — placement changes
/// where bytes live, never what a `get` returns — and stays identical
/// after a reopen on the same backends.
#[test]
fn tiered_store_reads_are_identical_across_hot_and_cold_placement() {
    let hot: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
    let cold = cold_backend();
    let tiered = Arc::new(TieredBackend::new(Arc::clone(&hot), Arc::clone(&cold)).unwrap());
    let backend: Arc<dyn StorageBackend> = Arc::clone(&tiered) as Arc<dyn StorageBackend>;
    let store = SegmentStore::open_with_backend(Arc::clone(&backend), 2).unwrap();
    for i in 0..30 {
        store
            .put(&key("placement", 1, i), &vec![(i % 7) as u8; 900])
            .unwrap();
    }
    store.sync().unwrap();
    let before: Vec<_> = (0..30)
        .map(|i| store.get(&key("placement", 1, i)).unwrap().unwrap())
        .collect();
    let stats_before = store.stats();

    // Demote every sealed shard log (reopen seals the current actives).
    drop(store);
    let store = SegmentStore::open_with_backend(Arc::clone(&backend), 2).unwrap();
    let mut demoted_logs = 0;
    for shard in backend.list("").unwrap() {
        if !shard.starts_with("shard-") {
            continue;
        }
        for log in backend.list(&shard).unwrap() {
            let name = format!("{shard}/{log}");
            if backend.len(&name).unwrap().unwrap_or(0) > 0 {
                tiered.demote_log(&name).unwrap();
                demoted_logs += 1;
            }
        }
    }
    assert!(demoted_logs > 0, "nothing demoted — test is vacuous");
    drop(store);

    // Reopen over the demoted logs: recovery scans read through the cold
    // half, and every value is byte-identical.
    let reopened = SegmentStore::open_with_backend(backend, 8).unwrap();
    assert_eq!(reopened.shard_count(), 2, "recorded shard count wins");
    for (i, want) in before.iter().enumerate() {
        assert_eq!(
            reopened
                .get(&key("placement", 1, i as u64))
                .unwrap()
                .unwrap(),
            *want,
            "value {i} diverged after demotion"
        );
    }
    let stats_after = reopened.stats();
    assert_eq!(stats_before.live_segments, stats_after.live_segments);
    assert_eq!(stats_before.live_bytes, stats_after.live_bytes);
    assert!(tiered.stats().cold_reads > 0, "reads actually went cold");
}

#[test]
fn shard_meta_round_trips_identically_on_both_backends() {
    // Reopening on the same backend honours the recorded shard count on
    // both implementations (the SHARDS meta file goes through the trait).
    let dir =
        std::env::temp_dir().join(format!("vstore-backend-parity-meta-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let backends: Vec<Arc<dyn StorageBackend>> = vec![
        Arc::new(FsBackend::new(&dir).unwrap()),
        Arc::new(MemBackend::new()),
        cold_backend(),
        tiered_backend(),
    ];
    for backend in backends {
        let store = SegmentStore::open_with_backend(Arc::clone(&backend), 3).unwrap();
        store.put(&key("meta", 1, 0), b"value").unwrap();
        store.sync().unwrap();
        drop(store);
        let reopened = SegmentStore::open_with_backend(backend, 16).unwrap();
        assert_eq!(reopened.shard_count(), 3);
        assert_eq!(reopened.get(&key("meta", 1, 0)).unwrap().unwrap(), b"value");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_lifecycle_ledgers_match_across_backends() {
    let query = QuerySpec::query_a(0.8);
    let source = VideoSource::new(Dataset::Jackson);

    let run = |backend: BackendOptions| {
        let store = VStore::open_temp(
            "backend-parity-lifecycle",
            VStoreOptions::fast().with_backend(backend),
        )
        .unwrap();
        store.configure(&query.consumers()).unwrap();
        let ingest = store
            .ingest(IngestRequest::new(&source).segments(3))
            .unwrap();
        let result = store
            .query(QueryRequest::new("jackson", &query).segments(3))
            .unwrap();
        let eroded = store
            .erode(ErodeRequest::new("jackson").at_age_days(5))
            .unwrap();
        let stats = store.store_stats();
        let usage = store.clock().usage();
        let dir = store.store_dir();
        drop(store);
        std::fs::remove_dir_all(dir).ok();
        (ingest, result, eroded, stats, usage)
    };

    let (fs_ingest, fs_result, fs_eroded, fs_stats, fs_usage) = run(BackendOptions::Fs);
    let (mem_ingest, mem_result, mem_eroded, mem_stats, mem_usage) = run(BackendOptions::Mem);

    // Byte-identical ingest reports, query results and store statistics.
    assert_eq!(fs_ingest, mem_ingest);
    assert_eq!(fs_result, mem_result);
    assert_eq!(fs_eroded, mem_eroded);
    assert_eq!(fs_stats, mem_stats);

    // The resource ledgers agree byte for byte as well.
    for kind in ResourceKind::ALL {
        assert_eq!(
            fs_usage.bytes(kind),
            mem_usage.bytes(kind),
            "byte ledger diverged for {kind}"
        );
        assert!(
            (fs_usage.seconds(kind) - mem_usage.seconds(kind)).abs() < 1e-12,
            "seconds ledger diverged for {kind}"
        );
    }
}
