//! Serving-layer integration: requests through the `vstore-serve` front end
//! must behave exactly like requests issued directly on the handle.
//!
//! * **Parity** — ingest/query/erode responses served through the bounded
//!   queue + worker pool are equal (and wire-byte-identical) to direct
//!   calls on an identically prepared store.
//! * **Back-pressure** — 16+ concurrent clients against a tiny queue are
//!   shed with `Busy`, never queued without bound.
//! * **Resilience** — mid-stream disconnects and concurrent `configure`
//!   epoch swaps leave the server serving.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use vstore::datasets::{Dataset, VideoSource};
use vstore::{
    BackendOptions, IngestRequest, QueryRequest, QuerySpec, QueueFullPolicy, ServeOptions,
    ServeRequest, ServeResponse, VStore, VStoreOptions,
};

fn mem_store(tag: &str) -> VStore {
    VStore::open_temp(tag, VStoreOptions::fast().with_backend(BackendOptions::Mem)).unwrap()
}

/// Two identically prepared stores: requests through the front end of one
/// must match direct calls on the other, byte for byte on the wire.
#[test]
fn served_responses_match_direct_handle_calls() {
    let query = QuerySpec::query_a(0.8);
    let consumers = query.consumers();
    let source = VideoSource::new(Dataset::Jackson);

    let direct = mem_store("serve-parity-direct");
    direct.configure(&consumers).unwrap();
    let served = mem_store("serve-parity-served");
    served.configure(&consumers).unwrap();

    let server = served
        .serve(ServeOptions::default().with_workers(4).with_queue_depth(64))
        .unwrap();

    // Ingest [0, 6) of jackson: directly on one store, and as three
    // concurrent served clients with disjoint ranges on the other. Reports
    // are range-deterministic, so each served response must equal the
    // direct report for the same range.
    let ranges: [(u64, u64); 3] = [(0, 2), (2, 2), (4, 2)];
    std::thread::scope(|scope| {
        for &(first, count) in &ranges {
            let mut client = server.connect();
            let source = source.clone();
            scope.spawn(move || {
                let response = client
                    .call(ServeRequest::Ingest {
                        source,
                        first_segment: first,
                        count,
                    })
                    .unwrap();
                assert!(!response.is_error(), "{response:?}");
                response
            });
        }
    });
    for &(first, count) in &ranges {
        let direct_report = direct
            .ingest(
                IngestRequest::new(&source)
                    .starting_at(first)
                    .segments(count),
            )
            .unwrap();
        // Re-issue the same range through the front end: ingest is
        // deterministic, so the served report matches the direct one.
        let mut client = server.connect();
        let response = client
            .call(ServeRequest::Ingest {
                source: source.clone(),
                first_segment: first,
                count,
            })
            .unwrap();
        let expected = ServeResponse::Ingest(direct_report);
        assert_eq!(response, expected);
        assert_eq!(response.to_wire(), expected.to_wire(), "wire bytes differ");
    }
    assert_eq!(
        direct.store_stats().live_segments,
        served.store_stats().live_segments
    );

    // Mixed query parity from 8 concurrent clients: every served response
    // equals the direct result for the same request.
    let cases: Vec<(u64, u64)> = vec![(0, 6), (0, 2), (2, 4), (4, 2)];
    let expected: Vec<ServeResponse> = cases
        .iter()
        .map(|&(first, count)| {
            ServeResponse::Query(
                direct
                    .query(
                        QueryRequest::new("jackson", &query)
                            .starting_at(first)
                            .segments(count),
                    )
                    .unwrap(),
            )
        })
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let mut client = server.connect();
            let query = query.clone();
            let cases = &cases;
            let expected = &expected;
            scope.spawn(move || {
                for (&(first, count), want) in cases.iter().zip(expected) {
                    let response = client
                        .call(ServeRequest::Query {
                            stream: "jackson".into(),
                            spec: query.clone(),
                            first_segment: first,
                            count,
                        })
                        .unwrap();
                    assert_eq!(&response, want);
                    assert_eq!(response.to_wire(), want.to_wire(), "wire bytes differ");
                }
            });
        }
    });

    // Erosion parity: both stores are in the same state, so the served
    // erode deletes exactly as many segments as the direct one.
    let direct_deleted = direct
        .erode(vstore::ErodeRequest::new("jackson").at_age_days(0))
        .unwrap();
    let mut client = server.connect();
    match client
        .call(ServeRequest::Erode {
            stream: "jackson".into(),
            age_days: 0,
        })
        .unwrap()
    {
        ServeResponse::Erode(report) => assert_eq!(report, direct_deleted),
        other => panic!("unexpected {other:?}"),
    }

    let stats = server.shutdown();
    assert_eq!(stats.failed, 0, "{stats}");
    assert_eq!(stats.panics, 0);
    // 6 ingests + 8 clients × the query cases + 1 erode, at minimum.
    assert!(stats.completed > 6 + 8 * cases.len() as u64);
}

/// 16+ concurrent clients against a one-slot queue: overload is shed with
/// `Busy` (bounded memory), accepted requests all complete, and the split
/// adds up exactly.
#[test]
fn bounded_queue_sheds_load_with_busy_at_16_clients() {
    let store = mem_store("serve-busy");
    let query = QuerySpec::query_a(0.8);
    store.configure(&query.consumers()).unwrap();
    let source = VideoSource::new(Dataset::Jackson);
    store
        .ingest(IngestRequest::new(&source).segments(2))
        .unwrap();

    let server = store
        .serve(
            ServeOptions::sequential()
                .with_queue_depth(2)
                .with_on_full(QueueFullPolicy::Reject),
        )
        .unwrap();

    const CLIENTS: usize = 16;
    const REQUESTS_PER_CLIENT: usize = 8;
    let ok = Arc::new(AtomicUsize::new(0));
    let busy = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let mut client = server.connect();
            let query = query.clone();
            let ok = Arc::clone(&ok);
            let busy = Arc::clone(&busy);
            scope.spawn(move || {
                let mut submitted = Vec::new();
                for _ in 0..REQUESTS_PER_CLIENT {
                    let request = ServeRequest::Query {
                        stream: "jackson".into(),
                        spec: query.clone(),
                        first_segment: 0,
                        count: 2,
                    };
                    match client.submit(request) {
                        Ok(id) => submitted.push(id),
                        Err(e) => {
                            assert!(e.is_busy(), "only Busy may be shed: {e}");
                            busy.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                for id in submitted {
                    let response = client.recv_response(id).unwrap();
                    assert!(!response.is_error(), "{response:?}");
                    ok.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let stats = server.shutdown();
    let ok = ok.load(Ordering::Relaxed);
    let busy = busy.load(Ordering::Relaxed);
    assert_eq!(ok + busy, CLIENTS * REQUESTS_PER_CLIENT);
    assert_eq!(stats.submitted, ok as u64);
    assert_eq!(stats.completed, ok as u64);
    assert_eq!(stats.rejected_busy, busy as u64);
    assert!(
        busy > 0,
        "16 clients flooding a 2-slot serial queue must shed: {stats}"
    );
    assert!(
        stats.peak_queue_depth <= 2,
        "queue grew past its bound: {stats}"
    );
}

/// Clients that vanish mid-stream and a concurrent `configure` epoch swap
/// leave the server serving; surviving clients keep getting correct
/// answers.
#[test]
fn disconnects_and_epoch_swaps_leave_the_server_serving() {
    let store = mem_store("serve-chaos");
    let query = QuerySpec::query_a(0.8);
    let consumers = query.consumers();
    let config = store.configure(&consumers).unwrap();
    let source = VideoSource::new(Dataset::Jackson);
    store
        .ingest(IngestRequest::new(&source).segments(4))
        .unwrap();

    let server = store
        .serve(ServeOptions::default().with_workers(4).with_queue_depth(32))
        .unwrap();
    let expected = store
        .query(QueryRequest::new("jackson", &query).segments(4))
        .unwrap();

    std::thread::scope(|scope| {
        // Deserters: submit and drop the connection without receiving.
        for _ in 0..4 {
            let mut client = server.connect();
            let query = query.clone();
            scope.spawn(move || {
                for _ in 0..3 {
                    let _ = client.submit(ServeRequest::Query {
                        stream: "jackson".into(),
                        spec: query.clone(),
                        first_segment: 0,
                        count: 4,
                    });
                }
                drop(client);
            });
        }
        // A control plane swapping the configuration epoch mid-stream.
        {
            let store = store.clone();
            let consumers = consumers.clone();
            let config = Arc::clone(&config);
            scope.spawn(move || {
                for round in 0..6 {
                    if round % 2 == 0 {
                        store.install_configuration((*config).clone());
                    } else {
                        store.configure(&consumers).unwrap();
                    }
                }
            });
        }
        // Survivors: every response must still be the correct one (the
        // swapped-in configurations are identical, so results are stable).
        for _ in 0..4 {
            let mut client = server.connect();
            let query = query.clone();
            let expected = &expected;
            scope.spawn(move || {
                for _ in 0..5 {
                    let response = client
                        .call(ServeRequest::Query {
                            stream: "jackson".into(),
                            spec: query.clone(),
                            first_segment: 0,
                            count: 4,
                        })
                        .unwrap();
                    assert_eq!(response, ServeResponse::Query(expected.clone()));
                }
            });
        }
    });

    assert!(store.configuration_epoch() >= 7);
    let stats = server.shutdown();
    assert_eq!(stats.panics, 0, "{stats}");
    assert_eq!(stats.failed, 0, "{stats}");
    // Every deserter's answered requests were counted as disconnects (some
    // may still have been in flight when the connection died — all that is
    // guaranteed is that none of them disturbed the survivors).
    assert!(stats.completed >= 4 * 5);
}
