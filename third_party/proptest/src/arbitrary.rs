//! `any::<T>()` and the `Arbitrary` implementations the tests need.

use crate::runner::TestRunner;
use crate::strategy::Strategy;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

/// The canonical strategy for `T` (`any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> bool {
        runner.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> $t {
                runner.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(runner: &mut TestRunner) -> f64 {
        runner.unit()
    }
}

macro_rules! tuple_arbitrary {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                ($($name::arbitrary(runner),)+)
            }
        }
    )*};
}

tuple_arbitrary! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}
