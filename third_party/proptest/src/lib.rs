//! A small, deterministic property-testing framework exposing the subset of
//! proptest's API this repository uses (offline stub — see
//! `third_party/README.md`).
//!
//! Differences from real proptest, by design:
//!
//! * values are drawn from a deterministic SplitMix64 stream seeded by the
//!   test name, so runs are reproducible without a persistence file;
//! * there is no shrinking — a failing case panics with its case number;
//! * string strategies support only the simple `[a-z]{m,n}` char-class
//!   pattern form (which is all the test suite uses).

pub mod arbitrary;
pub mod collection;
pub mod runner;
pub mod sample;
pub mod strategy;

pub use arbitrary::{any, Arbitrary};
pub use runner::{ProptestConfig, TestRunner};
pub use strategy::{BoxedStrategy, Just, Strategy};

/// Everything a proptest-based test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::runner::ProptestConfig;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::sample::select`,
    /// `prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests over generated inputs.
///
/// Supports the `#![proptest_config(..)]` inner attribute followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut runner = $crate::TestRunner::deterministic(
                        $crate::runner::seed_from_name(stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut runner);)+
                    $body
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

/// Compose strategies into a named strategy-returning function.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)
        ($($arg:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(move |runner: &mut $crate::TestRunner| {
                $(let $arg = $crate::Strategy::new_value(&($strat), runner);)+
                $body
            })
        }
    };
}

/// A strategy choosing uniformly between the given strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assert a property holds (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert two values are equal (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert two values differ (stub: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_pair()(a in 0u8..10, b in 0u8..10) -> (u8, u8) { (a, b) }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn composed_pairs(p in arb_pair()) {
            prop_assert!(p.0 < 10 && p.1 < 10);
        }

        #[test]
        fn oneof_selects_an_arm(v in prop_oneof![Just(1u32), (2u32..5).prop_map(|x| x * 10)]) {
            prop_assert!(v == 1 || (20..50).contains(&v));
        }

        #[test]
        fn vectors_and_strings(
            xs in prop::collection::vec(any::<u8>(), 2..6),
            s in "[a-z]{1,4}",
            pick in prop::sample::select(vec![7u8, 8, 9]),
        ) {
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!((7..=9).contains(&pick));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRunner::deterministic(1, 2);
        let mut b = crate::TestRunner::deterministic(1, 2);
        let s = crate::Strategy::new_value(&(0u64..1000), &mut a);
        let t = crate::Strategy::new_value(&(0u64..1000), &mut b);
        assert_eq!(s, t);
    }
}
