//! Sampling strategies (`prop::sample::select`).

use crate::runner::TestRunner;
use crate::strategy::Strategy;

/// A strategy choosing uniformly from a fixed set of values.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        let idx = runner.below(self.options.len() as u64) as usize;
        self.options[idx].clone()
    }
}
