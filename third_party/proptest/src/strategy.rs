//! The `Strategy` trait and the combinators the test suite uses.

use crate::runner::TestRunner;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value from the runner's stream.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        (**self).new_value(runner)
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.new_value(runner))
    }
}

/// A strategy wrapping a generation closure (used by `prop_compose!`).
pub struct FnStrategy<F> {
    f: F,
}

impl<F> FnStrategy<F> {
    /// Wrap a closure drawing values from a runner.
    pub fn new(f: F) -> Self {
        FnStrategy { f }
    }
}

impl<T, F: Fn(&mut TestRunner) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        (self.f)(runner)
    }
}

/// A uniform choice between boxed strategies (used by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        let idx = runner.below(self.arms.len() as u64) as usize;
        self.arms[idx].new_value(runner)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = u64::from(self.end.wrapping_sub(self.start) as u64);
                self.start + runner.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn new_value(&self, runner: &mut TestRunner) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + runner.below(self.end - self.start)
    }
}

impl Strategy for Range<i32> {
    type Value = i32;
    fn new_value(&self, runner: &mut TestRunner) -> i32 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (i64::from(self.end) - i64::from(self.start)) as u64;
        (i64::from(self.start) + runner.below(span) as i64) as i32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, runner: &mut TestRunner) -> f64 {
        self.start + runner.unit() * (self.end - self.start)
    }
}

/// String pattern strategy. Supports the `[a-z]{m,n}` char-class form used
/// by the test suite; any other pattern generates its literal text.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, runner: &mut TestRunner) -> String {
        match parse_class_pattern(self) {
            Some((lo, hi, min, max)) => {
                let len = min + runner.below((max - min + 1) as u64) as usize;
                let span = (hi as u32 - lo as u32 + 1) as u64;
                (0..len)
                    .map(|_| char::from_u32(lo as u32 + runner.below(span) as u32).unwrap_or(lo))
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

/// Parse `[x-y]{m,n}` into `(x, y, m, n)`.
fn parse_class_pattern(pattern: &str) -> Option<(char, char, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut chars = class.chars();
    let (lo, dash, hi) = (chars.next()?, chars.next()?, chars.next()?);
    if dash != '-' || chars.next().is_some() || hi < lo {
        return None;
    }
    let rest = rest.strip_prefix('{')?;
    let (counts, rest) = rest.split_once('}')?;
    if !rest.is_empty() {
        return None;
    }
    let (min, max) = counts.split_once(',')?;
    let (min, max) = (min.trim().parse().ok()?, max.trim().parse().ok()?);
    (min <= max).then_some((lo, hi, min, max))
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}
