//! Collection strategies (`prop::collection::vec`).

use crate::runner::TestRunner;
use crate::strategy::Strategy;
use std::ops::Range;

/// A strategy producing vectors whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + runner.below(span) as usize;
        (0..len).map(|_| self.element.new_value(runner)).collect()
    }
}
