//! The deterministic value source behind every strategy.

/// SplitMix64 mixing step.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A stable seed derived from a test's name (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    h
}

/// The per-case random stream strategies draw from.
#[derive(Debug, Clone)]
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    /// A runner for one `(test, case)` pair; the same pair always produces
    /// the same value stream.
    pub fn deterministic(seed: u64, case: u32) -> Self {
        TestRunner {
            state: splitmix64(seed ^ (u64::from(case).wrapping_mul(0xA076_1D64_78BD_642F))),
        }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform integer draw in `[0, n)`; 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }
    }
}

/// Test-run configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}
