//! Marker-trait facade for serde (offline stub).
//!
//! Provides the `Serialize` / `Deserialize` trait names plus the derive
//! macros of the same names, which is all this repository uses of serde.
//! See `third_party/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
