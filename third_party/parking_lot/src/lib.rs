//! `std::sync` wrappers exposing parking_lot's poison-free locking API
//! (offline stub — see `third_party/README.md`).
//!
//! parking_lot's `lock()` returns the guard directly rather than a
//! `LockResult`; these wrappers recover the guard from a poisoned std lock,
//! which matches parking_lot's semantics (a panicking holder does not poison
//! the data for subsequent holders).

use std::fmt;
use std::sync::TryLockError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive with parking_lot's panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poisoned_lock_recovers() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
