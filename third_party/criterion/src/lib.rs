//! A minimal timing harness exposing the subset of criterion's API the
//! `vstore-bench` benches use (offline stub — see `third_party/README.md`).
//!
//! Each `bench_function` runs a short warm-up, then `sample_size` timed
//! samples, and prints the per-iteration median. No statistics beyond that:
//! the goal is comparable numbers between configurations in one run, not
//! criterion's full regression machinery.

use std::time::{Duration, Instant};

/// How a batched benchmark's input batches are sized. The stub runs one
/// input per iteration regardless, so the variants only exist for API
/// compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// Per-iteration setup output of unknown size.
    PerIteration,
}

/// One recorded measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/function` benchmark id.
    pub id: String,
    /// Median per-iteration time across samples.
    pub median: Duration,
    /// Iterations run per sample.
    pub iters_per_sample: u64,
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    measurements: Vec<Measurement>,
}

impl Criterion {
    /// A driver with default settings.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Accepted for API compatibility; command-line options are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let m = run_bench(name, 20, f);
        self.measurements.push(m);
        self
    }

    /// All measurements recorded so far (used by benches that export
    /// baselines to disk).
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API compatibility; throughput annotation is ignored.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmark one function within the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let id = format!("{}/{}", self.name, name);
        let m = run_bench(&id, self.sample_size, f);
        self.criterion.measurements.push(m);
        self
    }

    /// Finish the group.
    pub fn finish(&mut self) {}
}

/// Throughput annotation (ignored by the stub).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to the benchmarked closure; runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called `self.iters` times.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench(id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) -> Measurement {
    // Calibrate the per-sample iteration count so one sample takes roughly
    // 5 ms (bounded to keep total bench time low on slow hosts).
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let once = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

    let mut samples: Vec<Duration> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed / iters as u32
        })
        .collect();
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!("{id:<50} time: {median:>12.3?}  ({iters} iters/sample, {sample_size} samples)");
    Measurement {
        id: id.to_string(),
        median,
        iters_per_sample: iters,
    }
}

/// Declare a group of benchmark entry points.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(c.measurements().len(), 2);
        assert_eq!(c.measurements()[0].id, "stub/noop");
    }
}
