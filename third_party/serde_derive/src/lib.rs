//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The repo derives serde traits on its data types for downstream
//! interoperability, but nothing in the tree serialises through serde, so the
//! derives can expand to nothing. See `third_party/README.md`.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
