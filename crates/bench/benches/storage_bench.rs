//! Criterion microbenchmarks of the segment store: put, get, range scan —
//! plus the shard-scaling experiment (1/2/4/8 shards under parallel
//! writers), the storage-backend comparison (`FsBackend` vs `MemBackend`
//! get/put) and the segment-cache hot/cold experiment (cold gets through
//! the `SegmentReader` vs repeated hot gets served by its two cache
//! tiers), whose results are exported to `BENCH_storage.json` at the
//! repository root as the performance baseline for this host. The backend
//! case tracks the overhead of the `StorageBackend` seam, and the cache
//! case the hit-rate and hot-get latency of the read path, from the PRs
//! that introduced them onward.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Instant;
use vstore::{
    BackendOptions, IngestRequest, NetClient, NetOptions, QueryRequest, QuerySpec, ServeRequest,
    ServeResponse, TraceOptions, VStore, VStoreOptions,
};
use vstore_codec::frame::materialize_clip;
use vstore_codec::{encode_segment, SegmentData};
use vstore_datasets::{Dataset, VideoSource};
use vstore_storage::{
    ColdBackend, MemBackend, ReadSource, SegmentKey, SegmentReader, SegmentStore, StorageBackend,
    TierEngine, TierOptions,
};
use vstore_types::{
    CropFactor, Fidelity, FormatId, FrameSampling, ImageQuality, KeyframeInterval,
    LiveIngestOptions, QueueFullPolicy, Resolution, ServeOptions, SpeedStep,
};

/// 256 KiB values: the size class of one encoded 8-second segment.
const VALUE_BYTES: usize = 256 * 1024;
/// Writer threads in the scaling experiment.
const WRITERS: u64 = 4;
/// Puts per writer per configuration.
const PUTS_PER_WRITER: u64 = 120;

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("segment_store");
    group.sample_size(10);

    // A store pre-populated with one hour of 8-second segments in two
    // formats (450 segments each) of ~256 KiB.
    let store = SegmentStore::open_temp("bench-populated").unwrap();
    let value = vec![0xA5u8; VALUE_BYTES];
    for seg in 0..450u64 {
        store
            .put(&SegmentKey::new("jackson", FormatId(1), seg), &value)
            .unwrap();
        store
            .put(&SegmentKey::new("jackson", FormatId(2), seg), &value)
            .unwrap();
    }

    group.bench_function("put_256KiB", |b| {
        let mut seg = 10_000u64;
        b.iter(|| {
            seg += 1;
            store
                .put(&SegmentKey::new("bench", FormatId(3), seg), &value)
                .unwrap();
        })
    });
    group.bench_function("get_256KiB", |b| {
        let mut seg = 0u64;
        b.iter(|| {
            seg = (seg + 1) % 450;
            store
                .get(&SegmentKey::new("jackson", FormatId(1), seg))
                .unwrap()
                .unwrap()
        })
    });
    group.bench_function("scan_stream_format", |b| {
        b.iter(|| store.segments_of("jackson", FormatId(2)))
    });
    group.finish();

    std::fs::remove_dir_all(store.dir()).ok();
}

/// One shard-scaling measurement: `WRITERS` threads each appending
/// `PUTS_PER_WRITER` 256 KiB segments into a store with `shards` shards.
/// Returns (elapsed seconds, aggregate puts/sec).
fn measure_parallel_puts(shards: usize) -> (f64, f64) {
    let store = Arc::new(
        SegmentStore::open_temp_with_shards(&format!("bench-scale-{shards}"), shards).unwrap(),
    );
    let value = Arc::new(vec![0x5Au8; VALUE_BYTES]);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for writer in 0..WRITERS {
            let store = Arc::clone(&store);
            let value = Arc::clone(&value);
            scope.spawn(move || {
                for i in 0..PUTS_PER_WRITER {
                    let key = SegmentKey::new(format!("writer-{writer}"), FormatId(1), i);
                    store.put(&key, &value).unwrap();
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let total_puts = (WRITERS * PUTS_PER_WRITER) as f64;
    assert_eq!(store.len() as u64, WRITERS * PUTS_PER_WRITER);
    std::fs::remove_dir_all(store.dir()).ok();
    (elapsed, total_puts / elapsed)
}

/// Sequential puts of `ops` 256 KiB segments followed by the same number of
/// gets, against one already-open store. Returns
/// `(put_seconds, put_mib_per_sec, get_seconds, get_mib_per_sec)` —
/// single-threaded so the numbers isolate backend overhead from lock
/// contention.
fn measure_backend_get_put(store: &SegmentStore, ops: u64) -> (f64, f64, f64, f64) {
    let value = vec![0xC3u8; VALUE_BYTES];
    let mib = |count: u64, seconds: f64| {
        (count as f64 * VALUE_BYTES as f64) / (1024.0 * 1024.0) / seconds
    };
    let start = Instant::now();
    for i in 0..ops {
        store
            .put(&SegmentKey::new("backend", FormatId(1), i), &value)
            .unwrap();
    }
    let put_seconds = start.elapsed().as_secs_f64();
    let start = Instant::now();
    for i in 0..ops {
        let got = store
            .get(&SegmentKey::new("backend", FormatId(1), i))
            .unwrap()
            .unwrap();
        assert_eq!(got.len(), VALUE_BYTES);
    }
    let get_seconds = start.elapsed().as_secs_f64();
    (
        put_seconds,
        mib(ops, put_seconds),
        get_seconds,
        mib(ops, get_seconds),
    )
}

/// The segment-cache hot/cold experiment: every key is read once cold
/// (cache miss — backend read + CRC, plus container parse + decode for the
/// decoded tier) and then `hot_rounds` times hot. `MemBackend` backs the
/// store, so the cold side is already a pure in-memory baseline and the
/// reported speedup is the cache's own win, not disk avoidance. Returns
/// one JSON row per tier.
fn measure_cache_hot_cold(hot_rounds: u64) -> Vec<String> {
    let mut rows = Vec::new();
    let us_per_get = |seconds: f64, gets: u64| seconds / gets as f64 * 1e6;

    // Tier 1 (raw bytes): 256 KiB opaque values; a hit skips the backend
    // read and the CRC verification.
    const RAW_KEYS: u64 = 64;
    let store = Arc::new(SegmentStore::open_mem_with_shards(8).unwrap());
    let reader = SegmentReader::new(Arc::clone(&store), 256 << 20, 0);
    let value = vec![0x7Eu8; VALUE_BYTES];
    let raw_key = |seg: u64| SegmentKey::new("hotcold", FormatId(1), seg);
    for seg in 0..RAW_KEYS {
        reader.put(&raw_key(seg), &value).unwrap();
    }
    let start = Instant::now();
    for seg in 0..RAW_KEYS {
        let (bytes, source) = reader.get(&raw_key(seg)).unwrap().unwrap();
        assert_eq!(bytes.len(), VALUE_BYTES);
        assert!(!source.is_cached());
    }
    let cold_seconds = start.elapsed().as_secs_f64();
    let start = Instant::now();
    for _ in 0..hot_rounds {
        for seg in 0..RAW_KEYS {
            let (_, source) = reader.get(&raw_key(seg)).unwrap().unwrap();
            assert!(source.is_cached());
        }
    }
    let hot_seconds = start.elapsed().as_secs_f64() / hot_rounds as f64;
    let hit_rate = reader.cache_stats().raw_hit_rate();
    let speedup = cold_seconds / hot_seconds;
    println!(
        "segment_store/cache raw: cold {:>7.1} µs/get, hot {:>7.2} µs/get \
         ({speedup:.0}x, {:.0}% hits)",
        us_per_get(cold_seconds, RAW_KEYS),
        us_per_get(hot_seconds, RAW_KEYS),
        hit_rate * 100.0
    );
    rows.push(format!(
        "    {{ \"tier\": \"raw\", \"keys\": {RAW_KEYS}, \"value_bytes\": {VALUE_BYTES}, \
         \"cold_us_per_get\": {:.3}, \"hot_us_per_get\": {:.3}, \
         \"speedup\": {speedup:.1}, \"hit_rate\": {hit_rate:.4} }}",
        us_per_get(cold_seconds, RAW_KEYS),
        us_per_get(hot_seconds, RAW_KEYS)
    ));

    // Tier 2 (decoded frames): real encoded segments, so a miss pays
    // container parsing and decode_sampled while a hit skips both.
    const DECODED_KEYS: u64 = 16;
    let store = Arc::new(SegmentStore::open_mem_with_shards(8).unwrap());
    let reader = SegmentReader::new(Arc::clone(&store), 0, 1024);
    let fidelity = Fidelity::new(
        ImageQuality::Good,
        CropFactor::C75,
        Resolution::R180,
        FrameSampling::Full,
    );
    let frames = materialize_clip(&VideoSource::new(Dataset::Jackson).clip(0, 30), fidelity);
    let encoded = encode_segment(&frames, KeyframeInterval::K5, SpeedStep::Fast).unwrap();
    let segment_bytes = SegmentData::Encoded(encoded).to_bytes();
    let decoded_key = |seg: u64| SegmentKey::new("hotcold-decoded", FormatId(1), seg);
    for seg in 0..DECODED_KEYS {
        reader.put(&decoded_key(seg), &segment_bytes).unwrap();
    }
    let start = Instant::now();
    for seg in 0..DECODED_KEYS {
        let read = reader
            .get_decoded(&decoded_key(seg), FrameSampling::Full)
            .unwrap()
            .unwrap();
        assert!(!read.source.is_cached());
        assert_eq!(read.segment.frames.len(), frames.len());
    }
    let cold_seconds = start.elapsed().as_secs_f64();
    let start = Instant::now();
    for _ in 0..hot_rounds {
        for seg in 0..DECODED_KEYS {
            let read = reader
                .get_decoded(&decoded_key(seg), FrameSampling::Full)
                .unwrap()
                .unwrap();
            assert!(read.source.is_cached());
        }
    }
    let hot_seconds = start.elapsed().as_secs_f64() / hot_rounds as f64;
    let hit_rate = reader.cache_stats().decoded_hit_rate();
    let speedup = cold_seconds / hot_seconds;
    println!(
        "segment_store/cache decoded: cold {:>7.1} µs/get, hot {:>7.2} µs/get \
         ({speedup:.0}x, {:.0}% hits)",
        us_per_get(cold_seconds, DECODED_KEYS),
        us_per_get(hot_seconds, DECODED_KEYS),
        hit_rate * 100.0
    );
    rows.push(format!(
        "    {{ \"tier\": \"decoded\", \"keys\": {DECODED_KEYS}, \"value_bytes\": {}, \
         \"cold_us_per_get\": {:.3}, \"hot_us_per_get\": {:.3}, \
         \"speedup\": {speedup:.1}, \"hit_rate\": {hit_rate:.4} }}",
        segment_bytes.len(),
        us_per_get(cold_seconds, DECODED_KEYS),
        us_per_get(hot_seconds, DECODED_KEYS)
    ));
    rows
}

/// A fresh tiered fixture: an in-memory hot store behind a caching reader,
/// with a cold-object store and a tiering engine attached.
fn tier_fixture(options: TierOptions) -> (Arc<SegmentReader>, Arc<TierEngine>) {
    let hot = Arc::new(SegmentStore::open_mem_with_shards(8).unwrap());
    let reader = Arc::new(SegmentReader::new(hot, 256 << 20, 0));
    let cold_backend: Arc<dyn StorageBackend> =
        Arc::new(ColdBackend::new(Arc::new(MemBackend::new())).unwrap());
    let cold = Arc::new(SegmentStore::open_with_backend(cold_backend, 8).unwrap());
    let engine = TierEngine::start(Arc::clone(&reader), cold, options).unwrap();
    reader.attach_tier(&engine);
    (reader, engine)
}

/// The tier read-path experiment: µs/get for a **cold read** (segment
/// demoted to the cold tier; promotion off so every pass pays the object
/// fetch + checksum) vs a **hot read** (first store read) vs a **cache
/// hit** (the reader's raw tier). One JSON row per case.
fn measure_tier_reads(rounds: u64) -> Vec<String> {
    const KEYS: u64 = 64;
    let us_per_get = |seconds: f64, gets: u64| seconds / gets as f64 * 1e6;
    let (reader, engine) = tier_fixture(TierOptions::cold_mem().with_promotion(false));
    let value = vec![0x42u8; VALUE_BYTES];
    let key = |seg: u64| SegmentKey::new("tiered", FormatId(1), seg);
    for seg in 0..KEYS {
        reader.put(&key(seg), &value).unwrap();
    }

    // Hot read: the first pass reads the store (cache cold).
    let start = Instant::now();
    for seg in 0..KEYS {
        let (bytes, source) = reader.get(&key(seg)).unwrap().unwrap();
        assert_eq!(bytes.len(), VALUE_BYTES);
        assert_eq!(source, ReadSource::Disk);
    }
    let hot_seconds = start.elapsed().as_secs_f64();

    // Cache hit: repeated passes served by the raw tier.
    let start = Instant::now();
    for _ in 0..rounds {
        for seg in 0..KEYS {
            let (_, source) = reader.get(&key(seg)).unwrap().unwrap();
            assert_eq!(source, ReadSource::RawCache);
        }
    }
    let cache_seconds = start.elapsed().as_secs_f64() / rounds as f64;

    // Cold read: demote everything; with promotion off every pass pays the
    // cold fetch (manifest lookup + object read + checksum).
    let report = engine.demote_batch((0..KEYS).map(key).collect()).unwrap();
    assert_eq!(report.segments as u64, KEYS);
    let start = Instant::now();
    for _ in 0..rounds {
        for seg in 0..KEYS {
            let (bytes, source) = reader.get(&key(seg)).unwrap().unwrap();
            assert_eq!(bytes.len(), VALUE_BYTES);
            assert_eq!(source, ReadSource::Cold);
        }
    }
    let cold_seconds = start.elapsed().as_secs_f64() / rounds as f64;

    let mut rows = Vec::new();
    for (case, seconds) in [
        ("cold_read", cold_seconds),
        ("hot_read", hot_seconds),
        ("cache_hit", cache_seconds),
    ] {
        println!(
            "segment_store/tier {case}: {:>8.2} µs/get",
            us_per_get(seconds, KEYS)
        );
        rows.push(format!(
            "    {{ \"case\": \"{case}\", \"keys\": {KEYS}, \"value_bytes\": {VALUE_BYTES}, \
             \"us_per_get\": {:.3} }}",
            us_per_get(seconds, KEYS)
        ));
    }
    rows
}

/// The demotion-throughput experiment: how fast the migration queue drains
/// a demote batch (unthrottled, 2 workers) while `readers` query threads
/// hammer hot segments of a different format the whole time. Returns one
/// JSON row.
fn measure_demotion_throughput(readers: usize) -> String {
    const DEMOTE_KEYS: u64 = 192;
    const HOT_KEYS: u64 = 32;
    let (reader, engine) = tier_fixture(TierOptions::cold_mem().with_demote_queue(2, 64));
    let value = vec![0x99u8; VALUE_BYTES];
    let demote_key = |seg: u64| SegmentKey::new("aging", FormatId(1), seg);
    let hot_key = |seg: u64| SegmentKey::new("busy", FormatId(2), seg);
    for seg in 0..DEMOTE_KEYS {
        reader.put(&demote_key(seg), &value).unwrap();
    }
    for seg in 0..HOT_KEYS {
        reader.put(&hot_key(seg), &value).unwrap();
    }

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let queries_served = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let (seconds, batch) = std::thread::scope(|scope| {
        for _ in 0..readers {
            let reader = Arc::clone(&reader);
            let stop = Arc::clone(&stop);
            let served = Arc::clone(&queries_served);
            scope.spawn(move || {
                let mut seg = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    seg = (seg + 1) % HOT_KEYS;
                    reader.get(&hot_key(seg)).unwrap().unwrap();
                    served.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
        let start = Instant::now();
        let batch = engine
            .demote_batch((0..DEMOTE_KEYS).map(demote_key).collect())
            .unwrap();
        let seconds = start.elapsed().as_secs_f64();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        (seconds, batch)
    });
    assert_eq!(batch.segments as u64, DEMOTE_KEYS);
    let mib_per_sec = batch.bytes as f64 / (1024.0 * 1024.0) / seconds;
    let queries = queries_served.load(std::sync::atomic::Ordering::Relaxed);
    println!(
        "segment_store/tier demote: {mib_per_sec:>7.0} MiB/s over {seconds:.3}s \
         with {readers} concurrent readers ({queries} queries served)"
    );
    format!(
        "    {{ \"segments\": {DEMOTE_KEYS}, \"value_bytes\": {VALUE_BYTES}, \
         \"seconds\": {seconds:.6}, \"mib_per_sec\": {mib_per_sec:.1}, \
         \"concurrent_readers\": {readers}, \"concurrent_queries_served\": {queries} }}"
    )
}

/// The serve-throughput experiment: `clients` client threads issue
/// `requests_per_client` query requests each through the `vstore-serve`
/// front end (thread-per-core workers, blocking back-pressure so nothing is
/// shed), against a pre-ingested in-memory store. Returns
/// `(seconds, requests_per_sec, p99_queue_wait_us)`.
fn measure_serve_throughput(
    store: &VStore,
    query: &QuerySpec,
    clients: usize,
    requests_per_client: usize,
) -> (f64, f64, u64) {
    let server = store
        .serve(
            ServeOptions::default()
                .with_queue_depth(256)
                .with_on_full(QueueFullPolicy::Block),
        )
        .unwrap();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let mut client = server.connect();
            let query = query.clone();
            scope.spawn(move || {
                for _ in 0..requests_per_client {
                    let response = client
                        .call(ServeRequest::Query {
                            stream: "jackson".into(),
                            spec: query.clone(),
                            first_segment: 0,
                            count: 2,
                        })
                        .unwrap();
                    assert!(matches!(response, ServeResponse::Query(_)), "{response:?}");
                }
            });
        }
    });
    let seconds = start.elapsed().as_secs_f64();
    let stats = server.shutdown();
    let total = (clients * requests_per_client) as u64;
    assert_eq!(stats.completed, total);
    assert_eq!(stats.rejected_busy, 0, "Block policy never sheds");
    (
        seconds,
        total as f64 / seconds,
        stats.queue_wait.quantile_us(0.99),
    )
}

/// The serve-throughput rows for 1/4/16 clients over one shared store.
fn measure_serve_throughput_cases() -> Vec<String> {
    const REQUESTS_PER_CLIENT: usize = 12;
    let store = VStore::open_temp(
        "bench-serve",
        VStoreOptions::fast().with_backend(BackendOptions::Mem),
    )
    .unwrap();
    let query = QuerySpec::query_a(0.8);
    store.configure(&query.consumers()).unwrap();
    store
        .ingest(IngestRequest::new(&VideoSource::new(Dataset::Jackson)).segments(2))
        .unwrap();
    let mut rows = Vec::new();
    for clients in [1usize, 4, 16] {
        // Warm-up pass, then the measured pass.
        measure_serve_throughput(&store, &query, clients, 2);
        let (seconds, req_per_sec, p99_wait_us) =
            measure_serve_throughput(&store, &query, clients, REQUESTS_PER_CLIENT);
        println!(
            "segment_store/serve clients={clients:>2}: {req_per_sec:>7.0} req/s \
             ({seconds:.3}s, p99 queue wait <{p99_wait_us} µs)"
        );
        rows.push(format!(
            "    {{ \"clients\": {clients}, \"requests_per_client\": {REQUESTS_PER_CLIENT}, \
             \"seconds\": {seconds:.6}, \"requests_per_sec\": {req_per_sec:.1}, \
             \"p99_queue_wait_us\": {p99_wait_us} }}"
        ));
    }
    rows
}

/// One socket-throughput measurement: `clients` TCP connections each
/// issuing `requests` live-stats requests against a fresh socket front
/// end. `window` is the pipelining depth — 32 keeps a batch's worth of
/// requests in flight per connection; 1 degenerates to the naive
/// one-request-per-write mode (submit, wait, repeat), which also defeats
/// response batching since the pipeline is always empty.
fn measure_net_throughput(
    store: &VStore,
    clients: usize,
    requests: usize,
    window: usize,
) -> (f64, f64, u64, f64, f64) {
    let server = store
        .serve_net(
            "127.0.0.1:0",
            NetOptions::default(),
            ServeOptions::default().with_queue_depth(4096),
        )
        .unwrap();
    let addr = server.local_addr();
    let latency = std::sync::Mutex::new(vstore_types::hist::LatencyHistogram::default());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let latency = &latency;
            scope.spawn(move || {
                let mut client = NetClient::connect(addr).unwrap();
                // Bursts of `window` requests: submit them all (one
                // coalesced write on the wire), then drain the responses.
                // A window of 1 is exactly the naive call: one request on
                // the wire, one response back, repeat.
                let mut remaining = requests;
                while remaining > 0 {
                    let burst = window.min(remaining);
                    for _ in 0..burst {
                        client.submit(&ServeRequest::LiveStats).unwrap();
                    }
                    for _ in 0..burst {
                        let (_, response) = client.recv().unwrap();
                        assert!(!response.is_error(), "{response:?}");
                    }
                    remaining -= burst;
                }
                latency.lock().unwrap().accumulate(client.latency());
            });
        }
    });
    let seconds = start.elapsed().as_secs_f64();
    let (net, _serve) = server.shutdown();
    let total = (clients * requests) as u64;
    assert_eq!(net.frames_out, total, "{net:?}");
    let p99_e2e_us = latency.lock().unwrap().quantile_us(0.99);
    (
        seconds,
        total as f64 / seconds,
        p99_e2e_us,
        net.mean_batch(),
        net.writes_per_response(),
    )
}

/// The socket-throughput rows: pipelined at 1/8/64 connections, then the
/// naive one-request-per-write mode at 64 — the pipelining + batching
/// speedup the acceptance gate watches.
fn measure_net_throughput_cases() -> Vec<String> {
    const REQUESTS_PER_CLIENT: usize = 128;
    const WINDOW: usize = 32;
    let store = VStore::open_temp(
        "bench-net",
        VStoreOptions::fast().with_backend(BackendOptions::Mem),
    )
    .unwrap();
    let mut rows = Vec::new();
    let mut rates = Vec::new();
    for (mode, clients, window) in [
        ("pipelined", 1usize, WINDOW),
        ("pipelined", 8, WINDOW),
        ("pipelined", 64, WINDOW),
        ("naive", 64, 1),
    ] {
        // Warm-up pass, then the measured pass.
        measure_net_throughput(&store, clients, 8, window);
        let (seconds, req_per_sec, p99_e2e_us, mean_batch, writes_per_response) =
            measure_net_throughput(&store, clients, REQUESTS_PER_CLIENT, window);
        println!(
            "segment_store/net {mode:>9} conns={clients:>2}: {req_per_sec:>8.0} req/s \
             ({seconds:.3}s, p99 e2e <{p99_e2e_us} µs, mean batch {mean_batch:.1}, \
             {writes_per_response:.2} writes/resp)"
        );
        rows.push(format!(
            "    {{ \"mode\": \"{mode}\", \"clients\": {clients}, \
             \"requests_per_client\": {REQUESTS_PER_CLIENT}, \"window\": {window}, \
             \"seconds\": {seconds:.6}, \"net_requests_per_sec\": {req_per_sec:.1}, \
             \"p99_e2e_us\": {p99_e2e_us}, \"mean_batch\": {mean_batch:.2}, \
             \"writes_per_response\": {writes_per_response:.3} }}"
        ));
        rates.push(req_per_sec);
    }
    println!(
        "segment_store/net pipelined+batched speedup at 64 conns: {:.1}x over naive",
        rates[2] / rates[3]
    );
    rows
}

/// The tracing-overhead experiment: the pipelined socket workload from the
/// net-throughput cases, once with the request tracer disabled (the
/// default — every span site is one relaxed atomic load) and once
/// head-sampling 1 trace per 1000 requests (the recommended production
/// setting). The disabled row is the acceptance bar: it must stay within
/// noise of the plain `net_throughput` pipelined rows, since a store that
/// never enabled tracing should not pay for it. One JSON row per mode;
/// the sampled row carries the measured overhead percentage.
fn measure_trace_overhead() -> Vec<String> {
    const CLIENTS: usize = 8;
    const REQUESTS_PER_CLIENT: usize = 128;
    const WINDOW: usize = 32;
    let mut measured = Vec::new();
    for (mode, trace) in [
        ("off", TraceOptions::default()),
        (
            "sampled_1_per_1k",
            TraceOptions::enabled().with_sample_per_1k(1),
        ),
    ] {
        let store = VStore::open_temp(
            &format!("bench-trace-{mode}"),
            VStoreOptions::fast()
                .with_backend(BackendOptions::Mem)
                .with_trace(trace),
        )
        .unwrap();
        // Warm-up pass, then the measured pass.
        measure_net_throughput(&store, CLIENTS, 8, WINDOW);
        let (seconds, req_per_sec, p99_e2e_us, _, _) =
            measure_net_throughput(&store, CLIENTS, REQUESTS_PER_CLIENT, WINDOW);
        measured.push((mode, seconds, req_per_sec, p99_e2e_us));
    }
    let (off_rate, sampled_rate) = (measured[0].2, measured[1].2);
    let overhead_pct = (off_rate / sampled_rate - 1.0) * 100.0;
    let mut rows = Vec::new();
    for (mode, seconds, req_per_sec, p99_e2e_us) in measured {
        println!(
            "segment_store/trace {mode:>16}: {req_per_sec:>8.0} req/s \
             ({seconds:.3}s, p99 e2e <{p99_e2e_us} µs)"
        );
        let overhead = if mode == "off" {
            String::new()
        } else {
            format!(", \"overhead_pct\": {overhead_pct:.2}")
        };
        rows.push(format!(
            "    {{ \"tracing\": \"{mode}\", \"clients\": {CLIENTS}, \
             \"requests_per_client\": {REQUESTS_PER_CLIENT}, \"window\": {WINDOW}, \
             \"seconds\": {seconds:.6}, \"net_requests_per_sec\": {req_per_sec:.1}, \
             \"p99_e2e_us\": {p99_e2e_us}{overhead} }}"
        ));
    }
    println!("segment_store/trace sampling 1/1k costs {overhead_pct:.1}% vs tracing off");
    rows
}

/// The planner decode-skip experiment: a skewed workload — the park stream
/// is near-static with periodic bursts of activity — queried with the
/// cascade planner off and on. With the planner off, the first cascade
/// stage fetches and decodes every segment of the range; with it on,
/// segments whose ingest-time metadata sidecar stays below the skip
/// threshold are never fetched at all. The threshold sits between park's
/// quiet-segment scores (~3–4.5 change units) and its activity bursts
/// (>12), the tuning the README's planner table documents for skewed
/// streams. Returns one JSON row recording the reduction in decoded
/// segments per query.
fn measure_planner_skip() -> String {
    const SEGMENTS: u64 = 12;
    const SKIP_THRESHOLD: f64 = 6.0;
    let store = VStore::open_temp(
        "bench-planner",
        VStoreOptions::fast().with_backend(BackendOptions::Mem),
    )
    .unwrap();
    let query = QuerySpec::query_a(0.8);
    store.configure(&query.consumers()).unwrap();
    store
        .ingest(IngestRequest::new(&VideoSource::new(Dataset::Park)).segments(SEGMENTS))
        .unwrap();

    let exact = store
        .query(
            QueryRequest::new("park", &query)
                .segments(SEGMENTS)
                .with_planner(false),
        )
        .unwrap();
    let planned = store
        .query(
            QueryRequest::new("park", &query)
                .segments(SEGMENTS)
                .with_planner(true)
                .skip_threshold(SKIP_THRESHOLD),
        )
        .unwrap();
    assert_eq!(exact.segments_skipped, 0, "exact mode never skips");
    let decoded_off = exact.stages[0].segments_processed;
    let decoded_on = planned.stages[0].segments_processed;
    assert_eq!(
        decoded_on + planned.segments_skipped,
        decoded_off,
        "every non-skipped segment reaches the first stage"
    );
    let decode_reduction = decoded_off as f64 / (decoded_on.max(1)) as f64;
    println!(
        "segment_store/planner skip: {decoded_off} segments decoded exact, \
         {decoded_on} planned ({} skipped, {decode_reduction:.1}x reduction)",
        planned.segments_skipped
    );
    format!(
        "    {{ \"case\": \"planner_skip\", \"stream\": \"park\", \"segments\": {SEGMENTS}, \
         \"skip_threshold\": {SKIP_THRESHOLD}, \"decoded_exact\": {decoded_off}, \
         \"decoded_planned\": {decoded_on}, \"segments_skipped\": {}, \
         \"decode_reduction\": {decode_reduction:.1} }}",
        planned.segments_skipped
    )
}

/// Deterministic CPU busy-work for the pool-scaling experiment: `iters`
/// rounds of integer mixing the optimizer cannot elide.
fn spin_work(iters: u64) -> u64 {
    let mut acc = 0x9E37_79B9_7F4A_7C15u64;
    for i in 0..iters {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        acc ^= acc >> 29;
    }
    std::hint::black_box(acc)
}

/// One pass of the imbalanced map: run every item's busy-work through the
/// chosen pool and return the **makespan in work units** — the busiest
/// worker thread's total executed iterations. Unit makespan is what
/// wall-clock is proportional to on an unloaded multi-core host, and
/// unlike wall-clock (or per-item `Instant` spans, which preemption
/// inflates) it stays meaningful on oversubscribed or single-core CI
/// runners where all worker threads timeshare one core.
fn imbalanced_makespan(stealing: bool, items: &[u64], workers: usize) -> u64 {
    use std::collections::HashMap;
    use std::sync::Mutex;
    let done: Mutex<HashMap<std::thread::ThreadId, u64>> = Mutex::new(HashMap::new());
    let work = |_: usize, iters: u64| {
        let out = spin_work(iters);
        *done
            .lock()
            .unwrap()
            .entry(std::thread::current().id())
            .or_default() += iters;
        out
    };
    let out = if stealing {
        vstore_sim::scoped_map(items.to_vec(), workers, work)
    } else {
        vstore_sim::scoped_map_static(items.to_vec(), workers, work)
    };
    assert_eq!(out.len(), items.len());
    let done = done.into_inner().unwrap();
    done.values().copied().max().unwrap_or(0)
}

/// The worker-pool scaling experiment: an imbalanced item mix — all the
/// heavy items land in the first worker's seeded chunk — mapped with
/// static contiguous chunking vs the work-stealing pool at the same worker
/// count. Static chunking convoys on the worker that owns the heavy chunk
/// (its makespan is the whole heavy block); the stealing pool spreads the
/// heavy items across the idle workers. Returns one JSON row with the
/// makespan speedup.
fn measure_pool_scaling() -> String {
    const WORKERS: usize = 4;
    const ITEMS: usize = 32;
    const HEAVY_ITERS: u64 = 4_000_000;
    const LIGHT_ITERS: u64 = 40_000;
    // Heavy items clustered in worker 0's seeded block [0, ITEMS/WORKERS).
    let items: Vec<u64> = (0..ITEMS)
        .map(|i| {
            if i < ITEMS / WORKERS {
                HEAVY_ITERS
            } else {
                LIGHT_ITERS
            }
        })
        .collect();
    // Warm-up pass, then the measured pass.
    imbalanced_makespan(false, &items, WORKERS);
    let static_units = imbalanced_makespan(false, &items, WORKERS);
    imbalanced_makespan(true, &items, WORKERS);
    let stealing_units = imbalanced_makespan(true, &items, WORKERS);
    let steal_speedup = static_units as f64 / stealing_units.max(1) as f64;
    println!(
        "segment_store/pool workers={WORKERS}: makespan static {static_units} units, \
         stealing {stealing_units} units ({steal_speedup:.1}x)"
    );
    format!(
        "    {{ \"case\": \"imbalanced_chunk\", \"workers\": {WORKERS}, \"items\": {ITEMS}, \
         \"static_makespan_units\": {static_units}, \
         \"stealing_makespan_units\": {stealing_units}, \
         \"steal_speedup\": {steal_speedup:.1} }}"
    )
}

/// The live-ingest sustained-overload experiment: a burst of segments
/// offered back to back — far faster than the single transcode worker can
/// drain — through the back-pressured live ingestor with a tight lag
/// budget, so the degradation ladder engages. The row records the offered
/// rate vs the sustained (transcoded) rate, the p99 queue lag, and the
/// degradation dwell (how many segments were transcoded below full
/// fidelity before the ladder stepped back up). `sustained_segments_per_sec`
/// is the gated throughput key. Returns one JSON row.
fn measure_live_overload() -> String {
    const SEGMENTS: u64 = 12;
    let store = VStore::open_temp(
        "bench-live",
        VStoreOptions::fast().with_backend(BackendOptions::Mem),
    )
    .unwrap();
    let query = QuerySpec::query_a(0.8);
    store.configure(&query.consumers()).unwrap();
    let options = LiveIngestOptions::default()
        .with_workers(1)
        .with_queue_depth(32)
        .with_on_full(QueueFullPolicy::Reject)
        .with_max_lag_segments(2);
    let camera = || VideoSource::new(Dataset::Jackson);

    // Warm-up pass (codec + store paths), then the measured pass with a
    // fresh ingestor so its counters cover exactly the measured burst.
    let warm = store.live_ingest(camera(), options).unwrap();
    warm.offer_range(0..2).unwrap();
    warm.shutdown();

    let ingestor = store.live_ingest(camera(), options).unwrap();
    let start = Instant::now();
    let outcome = ingestor.offer_range(0..SEGMENTS).unwrap();
    let offer_seconds = start.elapsed().as_secs_f64();
    ingestor.wait_idle();
    let seconds = start.elapsed().as_secs_f64();
    let stats = ingestor.shutdown();
    assert_eq!(
        outcome.accepted, SEGMENTS,
        "queue_depth 32 absorbs the burst"
    );
    assert_eq!(stats.completed, SEGMENTS);
    assert_eq!(stats.failed, 0);

    let offered_per_sec = SEGMENTS as f64 / offer_seconds.max(1e-9);
    let sustained_per_sec = stats.completed as f64 / seconds;
    let p99_lag_us = stats.lag.quantile_us(0.99);
    println!(
        "segment_store/live overload: offered {offered_per_sec:>9.0} seg/s, sustained \
         {sustained_per_sec:>5.1} seg/s (p99 lag <{p99_lag_us} µs, {} degraded, \
         {} down / {} up)",
        stats.degraded_segments, stats.step_downs, stats.step_ups
    );
    format!(
        "    {{ \"case\": \"sustained_overload\", \"segments\": {SEGMENTS}, \"workers\": 1, \
         \"queue_depth\": 32, \"max_lag_segments\": 2, \"seconds\": {seconds:.6}, \
         \"offered_segments_per_sec\": {offered_per_sec:.1}, \
         \"sustained_segments_per_sec\": {sustained_per_sec:.3}, \
         \"p99_lag_us\": {p99_lag_us}, \"shed\": {}, \"degraded_segments\": {}, \
         \"step_downs\": {}, \"step_ups\": {} }}",
        stats.shed, stats.degraded_segments, stats.step_downs, stats.step_ups
    )
}

fn bench_shard_scaling(_c: &mut Criterion) {
    // A bare (non-flag, non-flag-value) CLI argument is a bench name filter:
    // such a run wants one of the criterion benches above, not a full scaling
    // sweep (which also rewrites the BENCH_storage.json baseline).
    let args: Vec<String> = std::env::args().skip(1).collect();
    let filter_given = args
        .iter()
        .enumerate()
        .any(|(i, a)| !a.starts_with('-') && (i == 0 || !args[i - 1].starts_with("--")));
    if filter_given {
        println!("segment_store/scaling: skipped (bench filter given)");
        return;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut scaling_rows = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        // Warm-up pass, then the measured pass.
        measure_parallel_puts(shards);
        let (seconds, puts_per_sec) = measure_parallel_puts(shards);
        let mib_per_sec = puts_per_sec * VALUE_BYTES as f64 / (1024.0 * 1024.0);
        println!(
            "segment_store/scaling shards={shards} writers={WRITERS}: \
             {puts_per_sec:>8.0} puts/s ({mib_per_sec:>7.0} MiB/s, {seconds:.3}s)"
        );
        scaling_rows.push(format!(
            "    {{ \"shards\": {shards}, \"writers\": {WRITERS}, \"puts\": {}, \
             \"value_bytes\": {VALUE_BYTES}, \"seconds\": {seconds:.6}, \
             \"puts_per_sec\": {puts_per_sec:.1}, \"mib_per_sec\": {mib_per_sec:.1} }}",
            WRITERS * PUTS_PER_WRITER
        ));
    }

    // Backend comparison: the same single-threaded get/put workload on the
    // filesystem backend and the in-memory backend, so the overhead of the
    // StorageBackend seam (and the headroom above the disk) is tracked from
    // the PR that introduced it onward.
    const BACKEND_OPS: u64 = 256;
    let mut backend_rows = Vec::new();
    for (label, store) in [
        (
            "fs",
            SegmentStore::open_temp_with_shards("bench-backend-fs", 8).unwrap(),
        ),
        ("mem", SegmentStore::open_mem_with_shards(8).unwrap()),
    ] {
        let (put_seconds, put_mib, get_seconds, get_mib) =
            measure_backend_get_put(&store, BACKEND_OPS);
        println!(
            "segment_store/backend {label}: put {put_mib:>7.0} MiB/s ({put_seconds:.3}s), \
             get {get_mib:>7.0} MiB/s ({get_seconds:.3}s)"
        );
        backend_rows.push(format!(
            "    {{ \"backend\": \"{label}\", \"ops\": {BACKEND_OPS}, \
             \"value_bytes\": {VALUE_BYTES}, \"put_seconds\": {put_seconds:.6}, \
             \"put_mib_per_sec\": {put_mib:.1}, \"get_seconds\": {get_seconds:.6}, \
             \"get_mib_per_sec\": {get_mib:.1} }}"
        ));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    // The read-path cache: hit-rate and hot-get latency vs the cold path,
    // tracked per tier so a regression in either cache shows up here.
    let cache_rows = measure_cache_hot_cold(8);

    // The cold-storage tier: cold-read vs hot-read vs cache-hit latency,
    // and demotion throughput under concurrent queries.
    let tier_rows = measure_tier_reads(8);
    let demote_row = measure_demotion_throughput(2);

    // The serving front end: end-to-end request throughput at 1/4/16
    // concurrent clients through the bounded queue + worker pool.
    let serve_rows = measure_serve_throughput_cases();

    // The socket front end: pipelined+batched TCP throughput at 1/8/64
    // connections vs the naive one-request-per-write mode.
    let net_rows = measure_net_throughput_cases();

    // Request tracing: the same socket workload with the tracer disabled
    // vs head-sampling 1/1k — the observability tax, or lack of one.
    let trace_rows = measure_trace_overhead();

    // The cascade planner: decoded-segments reduction from the metadata
    // skip on a mostly-static stream.
    let planner_row = measure_planner_skip();

    // The worker pool: work-stealing vs static chunking on an imbalanced
    // item mix.
    let pool_row = measure_pool_scaling();

    // The live ingestor: sustained overload against one transcode worker —
    // offered vs sustained rate, p99 lag, degradation dwell.
    let live_row = measure_live_overload();

    // Record the baseline next to the workspace root so runs are comparable
    // across PRs. Override the destination with VSTORE_BENCH_JSON.
    let path = std::env::var("VSTORE_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_storage.json", env!("CARGO_MANIFEST_DIR")));
    let json = format!(
        "{{\n  \"bench\": \"segment_store\",\n  \"host_cores\": {cores},\n  \
         \"shard_scaling\": [\n{}\n  ],\n  \"backend_get_put\": [\n{}\n  ],\n  \
         \"cache_hot_cold\": [\n{}\n  ],\n  \"tier_reads\": [\n{}\n  ],\n  \
         \"demote_throughput\": [\n{}\n  ],\n  \"serve_throughput\": [\n{}\n  ],\n  \
         \"net_throughput\": [\n{}\n  ],\n  \"trace_overhead\": [\n{}\n  ],\n  \
         \"planner_skip\": [\n{}\n  ],\n  \"pool_scaling\": [\n{}\n  ],\n  \
         \"live_overload\": [\n{}\n  ]\n}}\n",
        scaling_rows.join(",\n"),
        backend_rows.join(",\n"),
        cache_rows.join(",\n"),
        tier_rows.join(",\n"),
        demote_row,
        serve_rows.join(",\n"),
        net_rows.join(",\n"),
        trace_rows.join(",\n"),
        planner_row,
        pool_row,
        live_row
    );
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("storage baseline written to {path}");
    }
}

criterion_group!(benches, bench_storage, bench_shard_scaling);
criterion_main!(benches);
