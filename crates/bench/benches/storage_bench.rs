//! Criterion microbenchmarks of the segment store: put, get, range scan —
//! plus the shard-scaling experiment (1/2/4/8 shards under parallel
//! writers) and the storage-backend comparison (`FsBackend` vs
//! `MemBackend` get/put), whose results are exported to
//! `BENCH_storage.json` at the repository root as the performance baseline
//! for this host. The backend case tracks the overhead of the
//! `StorageBackend` seam from the PR that introduced it onward.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Instant;
use vstore_storage::{SegmentKey, SegmentStore};
use vstore_types::FormatId;

/// 256 KiB values: the size class of one encoded 8-second segment.
const VALUE_BYTES: usize = 256 * 1024;
/// Writer threads in the scaling experiment.
const WRITERS: u64 = 4;
/// Puts per writer per configuration.
const PUTS_PER_WRITER: u64 = 120;

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("segment_store");
    group.sample_size(10);

    // A store pre-populated with one hour of 8-second segments in two
    // formats (450 segments each) of ~256 KiB.
    let store = SegmentStore::open_temp("bench-populated").unwrap();
    let value = vec![0xA5u8; VALUE_BYTES];
    for seg in 0..450u64 {
        store
            .put(&SegmentKey::new("jackson", FormatId(1), seg), &value)
            .unwrap();
        store
            .put(&SegmentKey::new("jackson", FormatId(2), seg), &value)
            .unwrap();
    }

    group.bench_function("put_256KiB", |b| {
        let mut seg = 10_000u64;
        b.iter(|| {
            seg += 1;
            store
                .put(&SegmentKey::new("bench", FormatId(3), seg), &value)
                .unwrap();
        })
    });
    group.bench_function("get_256KiB", |b| {
        let mut seg = 0u64;
        b.iter(|| {
            seg = (seg + 1) % 450;
            store
                .get(&SegmentKey::new("jackson", FormatId(1), seg))
                .unwrap()
                .unwrap()
        })
    });
    group.bench_function("scan_stream_format", |b| {
        b.iter(|| store.segments_of("jackson", FormatId(2)))
    });
    group.finish();

    std::fs::remove_dir_all(store.dir()).ok();
}

/// One shard-scaling measurement: `WRITERS` threads each appending
/// `PUTS_PER_WRITER` 256 KiB segments into a store with `shards` shards.
/// Returns (elapsed seconds, aggregate puts/sec).
fn measure_parallel_puts(shards: usize) -> (f64, f64) {
    let store = Arc::new(
        SegmentStore::open_temp_with_shards(&format!("bench-scale-{shards}"), shards).unwrap(),
    );
    let value = Arc::new(vec![0x5Au8; VALUE_BYTES]);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for writer in 0..WRITERS {
            let store = Arc::clone(&store);
            let value = Arc::clone(&value);
            scope.spawn(move || {
                for i in 0..PUTS_PER_WRITER {
                    let key = SegmentKey::new(format!("writer-{writer}"), FormatId(1), i);
                    store.put(&key, &value).unwrap();
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let total_puts = (WRITERS * PUTS_PER_WRITER) as f64;
    assert_eq!(store.len() as u64, WRITERS * PUTS_PER_WRITER);
    std::fs::remove_dir_all(store.dir()).ok();
    (elapsed, total_puts / elapsed)
}

/// Sequential puts of `ops` 256 KiB segments followed by the same number of
/// gets, against one already-open store. Returns
/// `(put_seconds, put_mib_per_sec, get_seconds, get_mib_per_sec)` —
/// single-threaded so the numbers isolate backend overhead from lock
/// contention.
fn measure_backend_get_put(store: &SegmentStore, ops: u64) -> (f64, f64, f64, f64) {
    let value = vec![0xC3u8; VALUE_BYTES];
    let mib = |count: u64, seconds: f64| {
        (count as f64 * VALUE_BYTES as f64) / (1024.0 * 1024.0) / seconds
    };
    let start = Instant::now();
    for i in 0..ops {
        store
            .put(&SegmentKey::new("backend", FormatId(1), i), &value)
            .unwrap();
    }
    let put_seconds = start.elapsed().as_secs_f64();
    let start = Instant::now();
    for i in 0..ops {
        let got = store
            .get(&SegmentKey::new("backend", FormatId(1), i))
            .unwrap()
            .unwrap();
        assert_eq!(got.len(), VALUE_BYTES);
    }
    let get_seconds = start.elapsed().as_secs_f64();
    (
        put_seconds,
        mib(ops, put_seconds),
        get_seconds,
        mib(ops, get_seconds),
    )
}

fn bench_shard_scaling(_c: &mut Criterion) {
    // A bare (non-flag, non-flag-value) CLI argument is a bench name filter:
    // such a run wants one of the criterion benches above, not a full scaling
    // sweep (which also rewrites the BENCH_storage.json baseline).
    let args: Vec<String> = std::env::args().skip(1).collect();
    let filter_given = args
        .iter()
        .enumerate()
        .any(|(i, a)| !a.starts_with('-') && (i == 0 || !args[i - 1].starts_with("--")));
    if filter_given {
        println!("segment_store/scaling: skipped (bench filter given)");
        return;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut scaling_rows = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        // Warm-up pass, then the measured pass.
        measure_parallel_puts(shards);
        let (seconds, puts_per_sec) = measure_parallel_puts(shards);
        let mib_per_sec = puts_per_sec * VALUE_BYTES as f64 / (1024.0 * 1024.0);
        println!(
            "segment_store/scaling shards={shards} writers={WRITERS}: \
             {puts_per_sec:>8.0} puts/s ({mib_per_sec:>7.0} MiB/s, {seconds:.3}s)"
        );
        scaling_rows.push(format!(
            "    {{ \"shards\": {shards}, \"writers\": {WRITERS}, \"puts\": {}, \
             \"value_bytes\": {VALUE_BYTES}, \"seconds\": {seconds:.6}, \
             \"puts_per_sec\": {puts_per_sec:.1}, \"mib_per_sec\": {mib_per_sec:.1} }}",
            WRITERS * PUTS_PER_WRITER
        ));
    }

    // Backend comparison: the same single-threaded get/put workload on the
    // filesystem backend and the in-memory backend, so the overhead of the
    // StorageBackend seam (and the headroom above the disk) is tracked from
    // the PR that introduced it onward.
    const BACKEND_OPS: u64 = 256;
    let mut backend_rows = Vec::new();
    for (label, store) in [
        (
            "fs",
            SegmentStore::open_temp_with_shards("bench-backend-fs", 8).unwrap(),
        ),
        ("mem", SegmentStore::open_mem_with_shards(8).unwrap()),
    ] {
        let (put_seconds, put_mib, get_seconds, get_mib) =
            measure_backend_get_put(&store, BACKEND_OPS);
        println!(
            "segment_store/backend {label}: put {put_mib:>7.0} MiB/s ({put_seconds:.3}s), \
             get {get_mib:>7.0} MiB/s ({get_seconds:.3}s)"
        );
        backend_rows.push(format!(
            "    {{ \"backend\": \"{label}\", \"ops\": {BACKEND_OPS}, \
             \"value_bytes\": {VALUE_BYTES}, \"put_seconds\": {put_seconds:.6}, \
             \"put_mib_per_sec\": {put_mib:.1}, \"get_seconds\": {get_seconds:.6}, \
             \"get_mib_per_sec\": {get_mib:.1} }}"
        ));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    // Record the baseline next to the workspace root so runs are comparable
    // across PRs. Override the destination with VSTORE_BENCH_JSON.
    let path = std::env::var("VSTORE_BENCH_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_storage.json", env!("CARGO_MANIFEST_DIR")));
    let json = format!(
        "{{\n  \"bench\": \"segment_store\",\n  \"host_cores\": {cores},\n  \
         \"shard_scaling\": [\n{}\n  ],\n  \"backend_get_put\": [\n{}\n  ]\n}}\n",
        scaling_rows.join(",\n"),
        backend_rows.join(",\n")
    );
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("storage baseline written to {path}");
    }
}

criterion_group!(benches, bench_storage, bench_shard_scaling);
criterion_main!(benches);
