//! Criterion microbenchmarks of the segment store: put, get, range scan and
//! recovery scan.

use criterion::{criterion_group, criterion_main, Criterion};
use vstore_storage::{SegmentKey, SegmentStore};
use vstore_types::FormatId;

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("segment_store");
    group.sample_size(10);

    // A store pre-populated with one hour of 8-second segments in two
    // formats (450 segments each) of ~256 KiB.
    let store = SegmentStore::open_temp("bench-populated").unwrap();
    let value = vec![0xA5u8; 256 * 1024];
    for seg in 0..450u64 {
        store.put(&SegmentKey::new("jackson", FormatId(1), seg), &value).unwrap();
        store.put(&SegmentKey::new("jackson", FormatId(2), seg), &value).unwrap();
    }

    group.bench_function("put_256KiB", |b| {
        let mut seg = 10_000u64;
        b.iter(|| {
            seg += 1;
            store.put(&SegmentKey::new("bench", FormatId(3), seg), &value).unwrap();
        })
    });
    group.bench_function("get_256KiB", |b| {
        let mut seg = 0u64;
        b.iter(|| {
            seg = (seg + 1) % 450;
            store.get(&SegmentKey::new("jackson", FormatId(1), seg)).unwrap().unwrap()
        })
    });
    group.bench_function("scan_stream_format", |b| {
        b.iter(|| store.segments_of("jackson", FormatId(2)))
    });
    group.finish();

    std::fs::remove_dir_all(store.dir()).ok();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
