//! Criterion microbenchmarks of the configuration engine: consumption-format
//! boundary search, storage-format coalescing and erosion planning. These
//! are the kernels whose overhead §6.4 of the paper quantifies.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use vstore_core::{CfSearch, Coalescer, ConfigurationEngine, EngineOptions};
use vstore_ops::OperatorLibrary;
use vstore_profiler::{Profiler, ProfilerConfig};
use vstore_sim::CodingCostModel;
use vstore_types::{ByteSize, Consumer, FidelitySpace, OperatorKind};

fn fast_profiler() -> Profiler {
    let mut config = ProfilerConfig::fast_test();
    config.clip_frames = 60;
    Profiler::new(
        OperatorLibrary::paper_testbed(),
        CodingCostModel::paper_testbed(),
        config,
    )
}

fn bench_configuration(c: &mut Criterion) {
    let mut group = c.benchmark_group("configuration");
    group.sample_size(10);

    // Pre-warm one profiler so repeated derivations measure the search and
    // coalescing logic over memoised profiles (the steady-state cost), and a
    // cold path that includes profiling.
    let warm = Arc::new(fast_profiler());
    let consumers: Vec<Consumer> = [
        (OperatorKind::FullNN, 0.9),
        (OperatorKind::SpecializedNN, 0.9),
        (OperatorKind::Diff, 0.9),
        (OperatorKind::Motion, 0.9),
        (OperatorKind::License, 0.8),
        (OperatorKind::Ocr, 0.8),
    ]
    .into_iter()
    .map(|(op, acc)| Consumer::new(op, acc))
    .collect();
    let search = CfSearch::with_space(&warm, FidelitySpace::reduced());
    let cfs: Vec<_> = consumers
        .iter()
        .map(|&c| search.derive(c).unwrap())
        .collect();

    group.bench_function("cf_boundary_search_memoized", |b| {
        b.iter(|| {
            let search = CfSearch::with_space(&warm, FidelitySpace::reduced());
            consumers.iter().for_each(|&c| {
                search.derive(c).unwrap();
            })
        })
    });
    group.bench_function("sf_coalescing_heuristic", |b| {
        b.iter(|| Coalescer::new(&warm).derive(&cfs).unwrap())
    });
    group.bench_function("full_backward_derivation_memoized", |b| {
        let engine = ConfigurationEngine::new(
            Arc::clone(&warm),
            EngineOptions {
                fidelity_space: FidelitySpace::reduced(),
                storage_budget: Some(ByteSize::from_tib(2.0)),
                ..EngineOptions::default()
            },
        );
        b.iter(|| engine.derive(&consumers).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_configuration);
criterion_main!(benches);
