//! Criterion microbenchmarks of the coding substrate: fidelity degradation,
//! segment encode/decode, GOP-skipping decode and container serialisation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use vstore_codec::codec::{decode_segment, decode_segment_sampled, encode_segment};
use vstore_codec::frame::materialize_clip;
use vstore_codec::SegmentData;
use vstore_datasets::{Dataset, VideoSource};
use vstore_types::{
    CropFactor, Fidelity, FrameSampling, ImageQuality, KeyframeInterval, Resolution, SpeedStep,
};

fn storage_fidelity() -> Fidelity {
    Fidelity::new(
        ImageQuality::Good,
        CropFactor::C100,
        Resolution::R360,
        FrameSampling::Full,
    )
}

fn bench_codec(c: &mut Criterion) {
    let source = VideoSource::new(Dataset::Jackson);
    let scenes = source.clip(0, 120);
    let frames = materialize_clip(&scenes, storage_fidelity());
    let segment = encode_segment(&frames, KeyframeInterval::K50, SpeedStep::Medium).unwrap();
    let container = SegmentData::Encoded(segment.clone());
    let bytes = container.to_bytes();

    let mut group = c.benchmark_group("codec");
    group.sample_size(10);

    group.bench_function("materialize_120_frames_360p", |b| {
        b.iter(|| materialize_clip(&scenes, storage_fidelity()))
    });
    group.bench_function("encode_120_frames_gop50", |b| {
        b.iter(|| encode_segment(&frames, KeyframeInterval::K50, SpeedStep::Medium).unwrap())
    });
    group.bench_function("decode_full", |b| {
        b.iter(|| decode_segment(&segment).unwrap())
    });
    group.bench_function("decode_sampled_1_30", |b| {
        b.iter(|| decode_segment_sampled(&segment, FrameSampling::S1_30).unwrap())
    });
    group.bench_function("container_serialize", |b| b.iter(|| container.to_bytes()));
    group.bench_function("container_deserialize", |b| {
        b.iter_batched(
            || bytes.clone(),
            |bytes| SegmentData::from_bytes(&bytes).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
