//! Table 3 — the configuration of video formats automatically derived by
//! VStore for the 24-consumer evaluation set (6 operators × 4 accuracy
//! levels), searched over the full Table-1 knob space.

use vstore_bench::{
    accuracy_levels, fmt_speed, paper_engine, paper_profiler, print_table, query_operators,
};
use vstore_types::Consumer;

fn main() {
    let profiler = paper_profiler();
    let engine = paper_engine(profiler.clone());
    let consumers: Vec<Consumer> = query_operators()
        .iter()
        .flat_map(|&op| {
            accuracy_levels()
                .into_iter()
                .map(move |a| Consumer::new(op, a))
        })
        .collect();

    let started = std::time::Instant::now();
    let config = engine.derive(&consumers).expect("derivation succeeds");
    let elapsed = started.elapsed();

    // (a) Consumption formats.
    let mut rows = Vec::new();
    for &accuracy in &accuracy_levels() {
        let mut row = vec![format!("F1={accuracy:.2}")];
        for &op in &query_operators() {
            let consumer = Consumer::new(op, accuracy);
            match config.subscription(&consumer) {
                Some(sub) => row.push(format!(
                    "{} {} {}",
                    sub.consumption.fidelity.label(),
                    sub.storage,
                    fmt_speed(sub.consumption_speed.factor())
                )),
                None => row.push("-".into()),
            }
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("target".to_owned())
        .chain(query_operators().iter().map(|o| o.to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(
        "Table 3(a): consumption formats (fidelity, subscribed SF, consumption speed)",
        &header_refs,
        &rows,
    );

    // (b) Storage formats.
    let motion = profiler.coding_motion();
    let rows: Vec<Vec<String>> = config
        .storage_formats
        .iter()
        .map(|(id, sf)| {
            let size = profiler.coding_model().bytes_per_video_second(sf, motion);
            let retrieval = config
                .retrieval_speeds
                .get(id)
                .map(|s| fmt_speed(s.factor()))
                .unwrap_or_else(|| "?".into());
            vec![
                id.to_string(),
                sf.fidelity.label(),
                sf.coding.label(),
                format!("{:.0} KB", size.kib()),
                retrieval,
            ]
        })
        .collect();
    print_table(
        "Table 3(b): storage formats (fidelity, coding, size per video-second, sequential retrieval speed)",
        &["SF", "fidelity", "coding", "size/s", "retrieval spd"],
        &rows,
    );

    println!(
        "\nconfiguration summary: {} consumers, {} unique CFs, {} SFs, {} knobs; derived in {:.1} s wall-clock ({} operator profiling runs, {} storage profiling runs, modelled profiling delay {:.0} s)",
        config.subscriptions.len(),
        config.unique_consumption_formats(),
        config.storage_formats.len(),
        config.knob_count(),
        elapsed.as_secs_f64(),
        profiler.stats().operator_runs,
        profiler.stats().storage_runs,
        profiler.stats().modeled_seconds,
    );
}
