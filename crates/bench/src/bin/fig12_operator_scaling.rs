//! Figure 12 — transcoding (ingestion) cost does not scale up with the
//! number of operators: as operators are added in Table-2 order, new
//! consumers share existing storage formats and the cost plateaus.

use vstore_bench::{accuracy_levels, fast_profiler, print_table, reduced_engine};
use vstore_types::{Consumer, OperatorKind};

fn main() {
    let profiler = fast_profiler();
    let engine = reduced_engine(profiler.clone());
    let mut rows = Vec::new();
    let mut consumers: Vec<Consumer> = Vec::new();
    rows.push(vec!["0".into(), "-".into(), "0".into(), "0%".into()]);
    for (count, &op) in OperatorKind::ALL.iter().enumerate() {
        for accuracy in accuracy_levels() {
            consumers.push(Consumer::new(op, accuracy));
        }
        let cfs = engine
            .derive_consumption_formats(&consumers)
            .expect("cf derivation");
        let coalesced = engine.derive_storage_formats(&cfs).expect("sf derivation");
        rows.push(vec![
            (count + 1).to_string(),
            op.to_string(),
            coalesced.formats.len().to_string(),
            format!("{:.0}%", coalesced.total_ingest_cores * 100.0),
        ]);
    }
    print_table(
        "Figure 12: transcoding cost vs number of operators (each at 4 accuracy levels)",
        &[
            "operators",
            "last added",
            "storage formats",
            "ingest CPU (100% = 1 core)",
        ],
        &rows,
    );
}
