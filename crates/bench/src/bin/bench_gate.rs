//! The storage-bench regression gate: compares a fresh `storage_bench`
//! JSON output against the recorded `BENCH_storage.json` baseline with a
//! generous tolerance, so CI catches an order-of-magnitude regression
//! without flaking on shared-runner noise.
//!
//! Usage: `bench_gate <baseline.json> <candidate.json> [tolerance]`
//! (default tolerance 3.0 — a metric may be up to 3x worse than baseline).
//!
//! The parser is deliberately minimal: it scans for `"key": number` pairs
//! in file order (the bench emits flat rows), compares every occurrence of
//! each **gated** metric pairwise, and exits non-zero when any metric is
//! worse than `tolerance`× its baseline. Metrics are gated by name:
//! throughput metrics must not fall below `baseline / tolerance`, latency
//! metrics must not rise above `baseline × tolerance`. Anything else
//! (sizes, counts, seconds of a fixed workload) is informational only.

use std::process::ExitCode;

/// Metrics where higher is better (throughput-shaped).
const HIGHER_BETTER: &[&str] = &[
    "puts_per_sec",
    "mib_per_sec",
    "put_mib_per_sec",
    "get_mib_per_sec",
    "requests_per_sec",
    "net_requests_per_sec",
    "speedup",
    "decode_reduction",
    "steal_speedup",
    "sustained_segments_per_sec",
];

/// Metrics where lower is better (latency-shaped).
const LOWER_BETTER: &[&str] = &["cold_us_per_get", "hot_us_per_get", "us_per_get"];

/// Extract every `"key": number` pair, in file order.
fn numeric_pairs(json: &str) -> Vec<(String, f64)> {
    let mut pairs = Vec::new();
    let bytes = json.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let Some(end) = json[i + 1..].find('"') else {
            break;
        };
        let key = &json[i + 1..i + 1 + end];
        let mut j = i + 1 + end + 1;
        while j < bytes.len() && (bytes[j] as char).is_whitespace() {
            j += 1;
        }
        if j < bytes.len() && bytes[j] == b':' {
            j += 1;
            while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                j += 1;
            }
            let start = j;
            while j < bytes.len()
                && matches!(bytes[j], b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E')
            {
                j += 1;
            }
            if j > start {
                if let Ok(value) = json[start..j].parse::<f64>() {
                    pairs.push((key.to_owned(), value));
                }
            }
        }
        // Continue past this string's closing quote.
        i = i + end + 2;
    }
    pairs
}

/// The values of one metric, in file order.
fn metric_values(pairs: &[(String, f64)], key: &str) -> Vec<f64> {
    pairs
        .iter()
        .filter(|(k, _)| k == key)
        .map(|(_, v)| *v)
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: bench_gate <baseline.json> <candidate.json> [tolerance]");
        return ExitCode::from(2);
    }
    let tolerance = args
        .get(2)
        .and_then(|t| t.parse::<f64>().ok())
        .unwrap_or(3.0)
        .max(1.0);
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(contents) => Some(contents),
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(candidate)) = (read(&args[0]), read(&args[1])) else {
        return ExitCode::from(2);
    };
    let base_pairs = numeric_pairs(&baseline);
    let cand_pairs = numeric_pairs(&candidate);

    let mut checked = 0usize;
    let mut failures = 0usize;
    for (keys, higher_better) in [(HIGHER_BETTER, true), (LOWER_BETTER, false)] {
        for key in keys {
            let base = metric_values(&base_pairs, key);
            let cand = metric_values(&cand_pairs, key);
            if base.len() != cand.len() {
                // A new bench case has no baseline row yet (or one was
                // removed): compare the common prefix, never fail on shape.
                eprintln!(
                    "bench_gate: {key}: {} baseline rows vs {} candidate rows; \
                     comparing the first {}",
                    base.len(),
                    cand.len(),
                    base.len().min(cand.len())
                );
            }
            for (i, (b, c)) in base.iter().zip(cand.iter()).enumerate() {
                checked += 1;
                let (worse, bound) = if higher_better {
                    (*c < b / tolerance, b / tolerance)
                } else {
                    (*c > b * tolerance, b * tolerance)
                };
                if worse {
                    failures += 1;
                    eprintln!(
                        "bench_gate: REGRESSION {key}[{i}]: candidate {c:.2} vs \
                         baseline {b:.2} (allowed {} {bound:.2})",
                        if higher_better { ">=" } else { "<=" },
                    );
                } else {
                    println!("bench_gate: ok {key}[{i}]: {c:.2} vs baseline {b:.2}");
                }
            }
        }
    }
    if checked == 0 {
        eprintln!("bench_gate: no gated metrics found in either file");
        return ExitCode::from(2);
    }
    if failures > 0 {
        eprintln!(
            "bench_gate: {failures}/{checked} metrics regressed past {tolerance}x \
             the recorded baseline"
        );
        return ExitCode::FAILURE;
    }
    println!("bench_gate: all {checked} gated metrics within {tolerance}x of baseline");
    ExitCode::SUCCESS
}
