//! Figure 13 — age-based data erosion:
//!
//! (a) the overall relative operator speed decays with video age, more
//!     aggressively for tighter storage budgets (higher decay factor k);
//! (b) residual video size per storage format as the video ages under the
//!     tightest budget (the golden format is never eroded).

use std::sync::Arc;
use vstore_bench::{accuracy_levels, fast_profiler, print_table, query_operators};
use vstore_core::{ConfigurationEngine, EngineOptions};
use vstore_types::{ByteSize, Consumer, FidelitySpace};

fn main() {
    let profiler = fast_profiler();
    let lifespan_days = 10u32;
    let consumers: Vec<Consumer> = query_operators()
        .iter()
        .flat_map(|&op| {
            accuracy_levels()
                .into_iter()
                .map(move |a| Consumer::new(op, a))
        })
        .collect();

    // Determine the unconstrained 10-day footprint first.
    let base_engine = ConfigurationEngine::new(
        Arc::clone(&profiler),
        EngineOptions {
            fidelity_space: FidelitySpace::reduced(),
            lifespan_days,
            ..EngineOptions::default()
        },
    );
    let unconstrained = base_engine
        .derive(&consumers)
        .expect("unconstrained configuration");
    let per_second = base_engine.storage_bytes_per_second(&unconstrained).bytes() as f64;
    let full_footprint = per_second * 86_400.0 * f64::from(lifespan_days);
    println!(
        "unconstrained footprint over {lifespan_days} days: {:.2} TB ({} storage formats)",
        full_footprint / 1e12,
        unconstrained.storage_formats.len()
    );

    // (a) Sweep storage budgets expressed as fractions of the unconstrained
    //     footprint (the paper's 2 / 3.5 / 4 / 5 TB points).
    let budget_fractions = [1.05, 0.95, 0.9, 0.85];
    let mut rows = Vec::new();
    let mut tightest = None;
    for &fraction in &budget_fractions {
        let budget = ByteSize((full_footprint * fraction) as u64);
        let engine = ConfigurationEngine::new(
            Arc::clone(&profiler),
            EngineOptions {
                fidelity_space: FidelitySpace::reduced(),
                lifespan_days,
                storage_budget: Some(budget),
                ..EngineOptions::default()
            },
        );
        let config = engine.derive(&consumers).expect("budgeted configuration");
        let mut row = vec![
            format!(
                "{:.2} TB ({}%)",
                budget.bytes() as f64 / 1e12,
                (fraction * 100.0) as u32
            ),
            format!("k={:.2}", config.erosion.decay_factor),
        ];
        for age in 1..=lifespan_days {
            let speed = config
                .erosion
                .step(age)
                .map(|s| s.overall_relative_speed)
                .unwrap_or(1.0);
            row.push(format!("{speed:.2}"));
        }
        rows.push(row);
        tightest = Some(config);
    }
    let mut headers = vec!["storage budget".to_owned(), "decay".to_owned()];
    headers.extend((1..=lifespan_days).map(|d| format!("day {d}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(
        "Figure 13(a): overall relative speed vs video age",
        &header_refs,
        &rows,
    );

    // (b) Residual video size per format under the tightest budget.
    let config = tightest.expect("at least one budgeted configuration");
    let mut rows = Vec::new();
    for (id, sf) in &config.storage_formats {
        let per_day = profiler
            .coding_model()
            .gb_per_day(sf, profiler.coding_motion());
        let mut row = vec![id.to_string(), sf.fidelity.label()];
        for age in 1..=lifespan_days {
            let deleted = config
                .erosion
                .step(age)
                .map(|s| s.deleted_fraction(*id).value())
                .unwrap_or(0.0);
            row.push(format!("{:.0}", per_day * (1.0 - deleted)));
        }
        rows.push(row);
    }
    let mut headers = vec!["SF".to_owned(), "fidelity".to_owned()];
    headers.extend((1..=lifespan_days).map(|d| format!("day {d} (GB)")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(
        "Figure 13(b): residual per-day video size per storage format (tightest budget)",
        &header_refs,
        &rows,
    );
}
