//! Table 4 — in response to a shrinking ingestion budget (cores available to
//! transcode one stream), VStore tunes coding speed steps and stays under
//! the budget at a modest storage cost increase.

use vstore_bench::{accuracy_levels, paper_profiler, print_table, query_operators, reduced_engine};
use vstore_core::adapt_to_ingest_budget;
use vstore_types::Consumer;

fn main() {
    let profiler = paper_profiler();
    let engine = reduced_engine(profiler.clone());
    let consumers: Vec<Consumer> = query_operators()
        .iter()
        .flat_map(|&op| {
            accuracy_levels()
                .into_iter()
                .map(move |a| Consumer::new(op, a))
        })
        .collect();
    let cfs = engine
        .derive_consumption_formats(&consumers)
        .expect("cf derivation");
    let coalesced = engine.derive_storage_formats(&cfs).expect("sf derivation");
    let unconstrained_cores = coalesced.total_ingest_cores;

    let budgets: Vec<(String, f64)> = vec![
        (
            format!(">= {:.0}", unconstrained_cores.ceil()),
            unconstrained_cores.ceil(),
        ),
        ("6".into(), 6.0),
        ("3".into(), 3.0),
        ("2".into(), 2.0),
        ("1".into(), 1.0),
    ];

    let mut rows = Vec::new();
    for (label, budget) in budgets {
        let adapted =
            adapt_to_ingest_budget(&profiler, &coalesced.formats, budget).expect("adaptation");
        let mb_per_s = adapted.total_bytes_per_video_second as f64 / 1e6;
        let gb_per_day = mb_per_s * 86_400.0 / 1e3;
        let mut row = vec![
            label,
            format!("{:.3}", mb_per_s),
            format!("{:.1}", gb_per_day),
            format!("{:.2}", adapted.total_ingest_cores),
            if adapted.within_budget {
                "yes".into()
            } else {
                "NO".into()
            },
        ];
        for sf in &adapted.formats {
            row.push(format!(
                "{}={}",
                if sf.is_golden { "SFg" } else { "SF" },
                sf.format.coding.label()
            ));
        }
        rows.push(row);
    }
    let mut headers: Vec<String> = vec![
        "cores for ingest".into(),
        "storage MB/s".into(),
        "storage GB/day".into(),
        "used cores".into(),
        "within budget".into(),
    ];
    for (i, sf) in coalesced.formats.iter().enumerate() {
        headers.push(if sf.is_golden {
            "SFg coding".into()
        } else {
            format!("SF{i} coding")
        });
    }
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(
        "Table 4: adapting coding knobs to the ingestion budget",
        &header_refs,
        &rows,
    );
}
