//! Figure 6 — video retrieval can bottleneck consumption.
//!
//! (a) Operator: License. Consumption can outpace decoding when the on-disk
//!     video is stored at the richest (ingestion) fidelity, but not when the
//!     stored fidelity matches the consumed one.
//! (b) Operator: Motion. Consumption outpaces decoding even when the stored
//!     fidelity matches — these consumers need the RAW bypass.

use vstore_bench::{fmt_speed, paper_profiler, print_table};
use vstore_types::{
    CodingOption, CropFactor, Fidelity, FrameSampling, ImageQuality, OperatorKind, Resolution,
    StorageFormat,
};

fn rows_for(
    profiler: &vstore_profiler::Profiler,
    op: OperatorKind,
    fidelities: &[Fidelity],
) -> Vec<Vec<String>> {
    fidelities
        .iter()
        .map(|&fidelity| {
            let consumer = profiler.profile_consumer(op, fidelity);
            // Decode speed when the stored video is the golden/ingestion
            // format (what a conventional store would hold) …
            let golden = StorageFormat::new(Fidelity::INGESTION, CodingOption::SMALLEST);
            let golden_decode = profiler.retrieval_speed(&golden, fidelity.sampling);
            // … and when the stored video has the same fidelity as consumed,
            // with the cheapest-to-decode coding.
            let matched = StorageFormat::new(fidelity, CodingOption::CHEAPEST_DECODE);
            let matched_decode = profiler.retrieval_speed(&matched, fidelity.sampling);
            let raw = StorageFormat::new(fidelity, CodingOption::Raw);
            let raw_retrieval = profiler.retrieval_speed(&raw, fidelity.sampling);
            vec![
                fidelity.label(),
                format!("{:.2}", consumer.accuracy),
                fmt_speed(consumer.consumption_speed.factor()),
                fmt_speed(golden_decode.factor()),
                fmt_speed(matched_decode.factor()),
                fmt_speed(raw_retrieval.factor()),
            ]
        })
        .collect()
}

fn main() {
    let profiler = paper_profiler();
    let headers = [
        "consumed fidelity",
        "accuracy",
        "consumption spd",
        "decode spd (golden SF)",
        "decode spd (same-fidelity SF)",
        "RAW retrieval spd",
    ];

    let license = [
        Fidelity::new(
            ImageQuality::Good,
            CropFactor::C75,
            Resolution::R540,
            FrameSampling::S1_6,
        ),
        Fidelity::new(
            ImageQuality::Bad,
            CropFactor::C100,
            Resolution::R540,
            FrameSampling::S1_6,
        ),
        Fidelity::new(
            ImageQuality::Good,
            CropFactor::C100,
            Resolution::R540,
            FrameSampling::S1_6,
        ),
    ];
    print_table(
        "Figure 6(a): License — decoding the golden format can bottleneck consumption",
        &headers,
        &rows_for(&profiler, OperatorKind::License, &license),
    );

    let motion = [
        Fidelity::new(
            ImageQuality::Best,
            CropFactor::C100,
            Resolution::R180,
            FrameSampling::Full,
        ),
        Fidelity::new(
            ImageQuality::Bad,
            CropFactor::C50,
            Resolution::R180,
            FrameSampling::S1_6,
        ),
    ];
    print_table(
        "Figure 6(b): Motion — even same-fidelity decoding is too slow; RAW is needed",
        &headers,
        &rows_for(&profiler, OperatorKind::Motion, &motion),
    );
}
