//! Figure 11 — end-to-end comparison of VStore against the 1→1, 1→N and
//! N→N configurations on the six datasets:
//!
//! (a) query speed (×realtime) as a function of target accuracy;
//! (b) storage cost (GB/day per stream);
//! (c) ingestion cost (CPU utilisation per stream, 100 % = one core).
//!
//! Query A (Diff+S-NN+NN) runs on jackson/miami/tucson, query B
//! (Motion+License+OCR) on dashcam/park/airport, exactly as §6.1. Query
//! speeds are measured by actually ingesting and querying a slice of each
//! stream; storage/ingestion costs come from the calibrated cost model over
//! the derived formats.

use std::sync::Arc;
use vstore::{BackendOptions, IngestRequest, QueryRequest, VStore, VStoreOptions};
use vstore_bench::{fast_profiler, fmt_speed, print_table, reduced_engine};
use vstore_core::Alternative;
use vstore_datasets::{Dataset, VideoSource};
use vstore_query::QuerySpec;
use vstore_types::Consumer;

const SEGMENTS: u64 = 2; // 16 s of video per stream keeps the sweep tractable

fn main() {
    let profiler = fast_profiler();
    let engine = reduced_engine(Arc::clone(&profiler));
    let accuracies = [1.0, 0.95, 0.9, 0.8];

    let mut speed_rows = Vec::new();
    let mut storage_rows = Vec::new();
    let mut ingest_rows = Vec::new();

    for dataset in Dataset::ALL {
        let query_spec = |acc: f64| {
            if Dataset::QUERY_A.contains(&dataset) {
                QuerySpec::query_a(acc)
            } else {
                QuerySpec::query_b(acc)
            }
        };
        // Consumers: the query's three operators at all requested accuracies.
        let consumers: Vec<Consumer> = accuracies
            .iter()
            .flat_map(|&a| query_spec(a).consumers())
            .collect();
        let vstore_cfg = engine.derive(&consumers).expect("vstore configuration");
        let one_to_one = engine
            .derive_alternative(&consumers, Alternative::OneToOne)
            .expect("1->1");
        let one_to_n = engine
            .derive_alternative(&consumers, Alternative::OneToN)
            .expect("1->N");
        let n_to_n = engine
            .derive_alternative(&consumers, Alternative::NToN)
            .expect("N->N");

        // Storage and ingestion costs per configuration (model-based, like
        // the paper's GB/day and CPU%).
        let gb_day = |cfg: &vstore_types::Configuration| {
            let motion = dataset.profile().motion_intensity;
            cfg.storage_formats
                .values()
                .map(|sf| profiler.coding_model().gb_per_day(sf, motion))
                .sum::<f64>()
        };
        let cores = |cfg: &vstore_types::Configuration| {
            let motion = dataset.profile().motion_intensity;
            cfg.storage_formats
                .values()
                .map(|sf| {
                    profiler
                        .coding_model()
                        .encode_cores_for_realtime(sf, motion)
                })
                .sum::<f64>()
                * 100.0
        };
        storage_rows.push(vec![
            dataset.to_string(),
            format!("{:.0}", gb_day(&one_to_one)),
            format!("{:.0}", gb_day(&vstore_cfg)),
            format!("{:.0}", gb_day(&n_to_n)),
        ]);
        ingest_rows.push(vec![
            dataset.to_string(),
            format!("{:.0}%", cores(&one_to_one)),
            format!("{:.0}%", cores(&vstore_cfg)),
            format!("{:.0}%", cores(&n_to_n)),
        ]);

        // Query-speed sweep through the service facade: ingest once into
        // the union of VStore + golden formats, then run each accuracy under
        // each configuration by installing it as the active epoch. The
        // in-memory backend keeps the sweep off the disk entirely.
        let store = VStore::open_temp(
            "fig11",
            VStoreOptions::fast().with_backend(BackendOptions::Mem),
        )
        .unwrap();
        let source = VideoSource::new(dataset);
        store.install_configuration(vstore_cfg.clone());
        store
            .ingest(IngestRequest::new(&source).segments(SEGMENTS))
            .unwrap();
        store.install_configuration(one_to_n.clone());
        store
            .ingest(IngestRequest::new(&source).segments(SEGMENTS))
            .unwrap();
        for &acc in &accuracies {
            let spec = query_spec(acc);
            let run = |cfg: &vstore_types::Configuration| {
                store.install_configuration(cfg.clone());
                store
                    .query(QueryRequest::new(source.name(), &spec).segments(SEGMENTS))
                    .map(|r| fmt_speed(r.speed.factor()))
                    .unwrap_or_else(|_| "-".into())
            };
            speed_rows.push(vec![
                dataset.to_string(),
                format!("{acc:.2}"),
                run(&one_to_one),
                run(&one_to_n),
                run(&vstore_cfg),
            ]);
        }
    }

    print_table(
        "Figure 11(a): query speed (x realtime) vs target accuracy",
        &["dataset", "accuracy", "1->1", "1->N", "VStore"],
        &speed_rows,
    );
    print_table(
        "Figure 11(b): storage cost per stream (GB/day)",
        &["dataset", "1->1 & 1->N", "VStore", "N->N"],
        &storage_rows,
    );
    print_table(
        "Figure 11(c): ingestion cost per stream (CPU utilisation, 100% = 1 core)",
        &["dataset", "1->1 & 1->N", "VStore", "N->N"],
        &ingest_rows,
    );
}
