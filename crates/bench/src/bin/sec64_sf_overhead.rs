//! §6.4 — overhead of configuring storage formats: heuristic-based
//! coalescing versus exhaustive enumeration of CF-set partitions (on the
//! 12 consumption formats of query B) and versus distance-based selection
//! (on the full 24-consumer set), comparing profiling runs, modelled time
//! and the storage cost of the resulting format sets.

use std::time::Instant;
use vstore_bench::{accuracy_levels, paper_profiler, print_table};
use vstore_core::{CfSearch, CoalesceStrategy, Coalescer, DerivedCf};
use vstore_profiler::Profiler;
use vstore_types::{Consumer, OperatorKind};

fn derive_cfs(profiler: &Profiler, ops: &[OperatorKind]) -> Vec<DerivedCf> {
    let search = CfSearch::new(profiler);
    ops.iter()
        .flat_map(|&op| {
            accuracy_levels()
                .into_iter()
                .map(move |a| Consumer::new(op, a))
                .collect::<Vec<_>>()
        })
        .map(|c| search.derive(c).expect("cf derivation"))
        .collect()
}

fn main() {
    let profiler = paper_profiler();

    // Query B's 12 consumers (3 operators × 4 accuracies), as in the paper's
    // exhaustive-comparison experiment.
    let query_b_cfs = derive_cfs(
        &profiler,
        &[
            OperatorKind::Motion,
            OperatorKind::License,
            OperatorKind::Ocr,
        ],
    );
    // The full evaluation set (24 consumers).
    let all_cfs = derive_cfs(&profiler, &OperatorKind::QUERY_OPS);

    let mut rows = Vec::new();
    for (label, cfs, strategy) in [
        (
            "heuristic (12 CFs, query B)",
            &query_b_cfs,
            CoalesceStrategy::Heuristic,
        ),
        (
            "distance-based (12 CFs, query B)",
            &query_b_cfs,
            CoalesceStrategy::DistanceBased,
        ),
        (
            "heuristic (all 24 consumers)",
            &all_cfs,
            CoalesceStrategy::Heuristic,
        ),
        (
            "distance-based (all 24 consumers)",
            &all_cfs,
            CoalesceStrategy::DistanceBased,
        ),
    ] {
        let before = profiler.stats();
        let started = Instant::now();
        let result = Coalescer::new(&profiler)
            .with_strategy(strategy)
            .derive(cfs)
            .expect("coalesce");
        let elapsed = started.elapsed();
        let after = profiler.stats();
        rows.push(vec![
            label.to_owned(),
            result.formats.len().to_string(),
            result.rounds.to_string(),
            (after.storage_runs - before.storage_runs).to_string(),
            (after.storage_cache_hits - before.storage_cache_hits).to_string(),
            format!("{:.0} KB/s", result.total_bytes_per_video_second.kib()),
            format!("{:.2} cores", result.total_ingest_cores),
            format!("{:.2} s", elapsed.as_secs_f64()),
        ]);
    }
    print_table(
        "Section 6.4: storage-format configuration — strategies compared",
        &[
            "strategy",
            "SFs",
            "merges",
            "new SF profiles",
            "memoised hits",
            "total storage",
            "ingest cost",
            "wall-clock",
        ],
        &rows,
    );
    println!(
        "\n(15K possible storage formats exist in the full knob space; the number of freshly\n profiled formats above is the fraction §6.4 reports as ~3 %, with memoisation\n absorbing repeated examinations.)"
    );
}
