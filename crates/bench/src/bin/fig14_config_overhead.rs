//! Figure 14 — overhead of deriving consumption formats: profiling runs and
//! modelled profiling time for VStore's boundary search versus exhaustive
//! profiling of the whole fidelity space, per operator.

use vstore_bench::{accuracy_levels, print_table, query_operators};
use vstore_core::CfSearch;
use vstore_ops::OperatorLibrary;
use vstore_profiler::{Profiler, ProfilerConfig};
use vstore_sim::CodingCostModel;
use vstore_types::Consumer;

fn fresh_profiler() -> Profiler {
    Profiler::new(
        OperatorLibrary::paper_testbed(),
        CodingCostModel::paper_testbed(),
        ProfilerConfig::paper_evaluation(),
    )
}

fn main() {
    let mut rows = Vec::new();
    let mut total_guided_runs = 0usize;
    let mut total_guided_seconds = 0.0;
    let mut total_exhaustive_runs = 0usize;
    let mut total_exhaustive_seconds = 0.0;

    for &op in &query_operators() {
        // Guided search: all four accuracy levels of this operator, sharing
        // one memoising profiler (as VStore does).
        let guided = fresh_profiler();
        {
            let search = CfSearch::new(&guided);
            for accuracy in accuracy_levels() {
                search
                    .derive(Consumer::new(op, accuracy))
                    .expect("guided derivation");
            }
        }
        let guided_stats = guided.stats();

        // Exhaustive baseline: profile every fidelity option once (results
        // are shared across accuracy levels, so one pass suffices).
        let exhaustive = fresh_profiler();
        {
            let search = CfSearch::new(&exhaustive);
            search
                .derive_exhaustive(Consumer::new(op, accuracy_levels()[0]))
                .expect("exhaustive derivation");
        }
        let exhaustive_stats = exhaustive.stats();

        total_guided_runs += guided_stats.operator_runs;
        total_guided_seconds += guided_stats.modeled_seconds;
        total_exhaustive_runs += exhaustive_stats.operator_runs;
        total_exhaustive_seconds += exhaustive_stats.modeled_seconds;
        rows.push(vec![
            op.to_string(),
            exhaustive_stats.operator_runs.to_string(),
            format!("{:.0}", exhaustive_stats.modeled_seconds),
            guided_stats.operator_runs.to_string(),
            format!("{:.0}", guided_stats.modeled_seconds),
            format!(
                "{:.1}x / {:.1}x",
                exhaustive_stats.operator_runs as f64 / guided_stats.operator_runs.max(1) as f64,
                exhaustive_stats.modeled_seconds / guided_stats.modeled_seconds.max(1e-9)
            ),
        ]);
    }
    rows.push(vec![
        "TOTAL".into(),
        total_exhaustive_runs.to_string(),
        format!("{total_exhaustive_seconds:.0}"),
        total_guided_runs.to_string(),
        format!("{total_guided_seconds:.0}"),
        format!(
            "{:.1}x / {:.1}x",
            total_exhaustive_runs as f64 / total_guided_runs.max(1) as f64,
            total_exhaustive_seconds / total_guided_seconds.max(1e-9)
        ),
    ]);
    print_table(
        "Figure 14: consumption-format derivation overhead (all 4 accuracy levels per operator)",
        &[
            "operator",
            "exhaustive runs",
            "exhaustive time (s, modelled)",
            "VStore runs",
            "VStore time (s, modelled)",
            "reduction (runs / time)",
        ],
        &rows,
    );
}
