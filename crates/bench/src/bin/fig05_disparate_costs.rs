//! Figure 5 — fidelity options with near-identical operator accuracy can
//! have very different resource costs. Operator: License, target ≈ 0.8,
//! fixed coding 250-med.

use vstore_bench::{paper_profiler, print_table};
use vstore_types::{
    CodingOption, CropFactor, Fidelity, FrameSampling, ImageQuality, KeyframeInterval,
    OperatorKind, Resolution, SpeedStep, StorageFormat,
};

fn main() {
    let profiler = paper_profiler();
    let coding = CodingOption::Encoded {
        keyframe_interval: KeyframeInterval::K250,
        speed: SpeedStep::Medium,
    };
    // Three fidelity options chosen, as in the paper, to land near the same
    // License accuracy while stressing different resources. (The paper's
    // exact options are 100p-class; our detection substrate reaches ≈0.8 for
    // License at somewhat richer fidelities, so the sweep uses the closest
    // equivalents — the point is the disparity of costs at equal accuracy.)
    let options = [
        (
            "A (bad quality, every frame)",
            Fidelity::new(
                ImageQuality::Bad,
                CropFactor::C100,
                Resolution::R540,
                FrameSampling::S2_3,
            ),
        ),
        (
            "B (best quality, sparse sampling)",
            Fidelity::new(
                ImageQuality::Best,
                CropFactor::C100,
                Resolution::R400,
                FrameSampling::S1_30,
            ),
        ),
        (
            "C (good quality, half sampling)",
            Fidelity::new(
                ImageQuality::Good,
                CropFactor::C75,
                Resolution::R540,
                FrameSampling::S1_2,
            ),
        ),
    ];
    let rows: Vec<Vec<String>> = options
        .iter()
        .map(|(label, fidelity)| {
            let consumer = profiler.profile_consumer(OperatorKind::License, *fidelity);
            let storage = profiler.profile_storage(StorageFormat::new(*fidelity, coding));
            vec![
                (*label).to_owned(),
                fidelity.label(),
                format!("{:.3}", consumer.accuracy),
                format!("{:.2}", storage.encode_cores),
                format!("{:.0}", storage.bytes_per_video_second.kib()),
                format!("{:.4}", 1.0 / storage.sequential_retrieval_speed.factor()),
                format!("{:.5}", 1.0 / consumer.consumption_speed.factor()),
            ]
        })
        .collect();
    print_table(
        "Figure 5: disparate costs of fidelity options with similar License accuracy (coding 250-med)",
        &["option", "fidelity", "accuracy", "ingest (cores)", "storage (KB/s)", "retrieval (s/s)", "consumption (s/s)"],
        &rows,
    );
}
