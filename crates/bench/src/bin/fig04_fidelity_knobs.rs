//! Figure 4 — fidelity knobs have high, complex impacts on the costs of all
//! four data-path stages and on operator accuracy.
//!
//! Each sub-plot varies one knob with the others fixed:
//!   (a) crop factor    / Motion      (c) frame sampling / S-NN
//!   (b) image quality  / License     (d) frame sampling / NN
//!
//! For every knob value we report ingestion cost (transcode cores), storage
//! cost (KB per video-second), retrieval cost (1/decode speed), consumption
//! cost (1/consumption speed) and the measured accuracy (F1 against the
//! ingestion-fidelity run).

use vstore_bench::{paper_profiler, print_table};
use vstore_types::{
    CodingOption, CropFactor, Fidelity, FrameSampling, ImageQuality, OperatorKind, Resolution,
    StorageFormat,
};

fn report_row(
    profiler: &vstore_profiler::Profiler,
    op: OperatorKind,
    fidelity: Fidelity,
    label: String,
) -> Vec<String> {
    let consumer = profiler.profile_consumer(op, fidelity);
    let storage = profiler.profile_storage(StorageFormat::new(fidelity, CodingOption::SMALLEST));
    vec![
        label,
        format!("{:.3}", consumer.accuracy),
        format!("{:.2}", storage.encode_cores),
        format!("{:.0}", storage.bytes_per_video_second.kib()),
        format!("{:.4}", 1.0 / storage.sequential_retrieval_speed.factor()),
        format!("{:.6}", 1.0 / consumer.consumption_speed.factor()),
    ]
}

fn main() {
    let profiler = paper_profiler();
    let headers = [
        "knob value",
        "accuracy (F1)",
        "ingest (cores)",
        "storage (KB/s)",
        "retrieval (s/s)",
        "consumption (s/s)",
    ];

    // (a) Crop factor, operator: Motion.
    let rows: Vec<Vec<String>> = CropFactor::ALL
        .iter()
        .map(|&crop| {
            let f = Fidelity::new(
                ImageQuality::Best,
                crop,
                Resolution::R540,
                FrameSampling::Full,
            );
            report_row(&profiler, OperatorKind::Motion, f, crop.label().to_owned())
        })
        .collect();
    print_table("Figure 4(a): crop factor (op: Motion)", &headers, &rows);

    // (b) Image quality, operator: License.
    let rows: Vec<Vec<String>> = ImageQuality::ALL
        .iter()
        .map(|&quality| {
            let f = Fidelity::new(
                quality,
                CropFactor::C100,
                Resolution::R540,
                FrameSampling::Full,
            );
            report_row(
                &profiler,
                OperatorKind::License,
                f,
                quality.label().to_owned(),
            )
        })
        .collect();
    print_table("Figure 4(b): image quality (op: License)", &headers, &rows);

    // (c) Frame sampling, operator: S-NN.
    let rows: Vec<Vec<String>> = FrameSampling::ALL
        .iter()
        .map(|&sampling| {
            let f = Fidelity::new(
                ImageQuality::Best,
                CropFactor::C100,
                Resolution::R200,
                sampling,
            );
            report_row(
                &profiler,
                OperatorKind::SpecializedNN,
                f,
                sampling.label().to_owned(),
            )
        })
        .collect();
    print_table(
        "Figure 4(c): frame sampling (op: specialized NN)",
        &headers,
        &rows,
    );

    // (d) Frame sampling, operator: NN.
    let rows: Vec<Vec<String>> = FrameSampling::ALL
        .iter()
        .map(|&sampling| {
            let f = Fidelity::new(
                ImageQuality::Good,
                CropFactor::C100,
                Resolution::R600,
                sampling,
            );
            report_row(
                &profiler,
                OperatorKind::FullNN,
                f,
                sampling.label().to_owned(),
            )
        })
        .collect();
    print_table("Figure 4(d): frame sampling (op: NN)", &headers, &rows);
}
