//! Figure 3 — impacts of the coding knobs, measured on 100 seconds of
//! `tucson`.
//!
//! (a) The speed step trades encoding speed against encoded size (decode
//!     speed barely moves).
//! (b) The keyframe interval trades video size against decode speed for a
//!     sparsely-sampling consumer (GOP skipping); sequential decode is
//!     mostly unaffected.

use vstore_bench::{fmt_speed, print_table};
use vstore_datasets::{Dataset, VideoSource};
use vstore_sim::CodingCostModel;
use vstore_types::{
    CodingOption, Fidelity, FrameSampling, KeyframeInterval, SpeedStep, StorageFormat,
};

fn main() {
    let model = CodingCostModel::paper_testbed();
    let source = VideoSource::new(Dataset::Tucson);
    let motion = source.motion_intensity();
    let clip_seconds = 100.0;

    // (a) Speed step sweep at the default keyframe interval (250).
    let rows: Vec<Vec<String>> = SpeedStep::ALL
        .iter()
        .map(|&speed| {
            let format = StorageFormat::new(
                Fidelity::INGESTION,
                CodingOption::Encoded {
                    keyframe_interval: KeyframeInterval::K250,
                    speed,
                },
            );
            let encode = model.encode_speed(&format, motion);
            let decode = model.sequential_decode_speed(&format, motion);
            let size_mb =
                model.bytes_per_video_second(&format, motion).bytes() as f64 * clip_seconds / 1e6;
            vec![
                speed.label().to_owned(),
                fmt_speed(encode.factor()),
                fmt_speed(decode.factor()),
                format!("{size_mb:.1}"),
            ]
        })
        .collect();
    print_table(
        "Figure 3(a): speed step vs encode speed / decode speed / size (100 s of tucson)",
        &[
            "speed step",
            "encode speed",
            "decode speed",
            "video size (MB)",
        ],
        &rows,
    );

    // (b) Keyframe interval sweep at the medium speed step, decoding for a
    //     consumer sampling 1 frame in 250 (as in the paper) and for a
    //     consumer touching every frame.
    let sparse = FrameSampling::S1_30; // sparsest sampling rate in Table 1
    let rows: Vec<Vec<String>> = KeyframeInterval::ALL
        .iter()
        .rev()
        .map(|&keyframe_interval| {
            let format = StorageFormat::new(
                Fidelity::INGESTION,
                CodingOption::Encoded {
                    keyframe_interval,
                    speed: SpeedStep::Medium,
                },
            );
            let sparse_decode = model.decode_speed(&format, motion, Some(sparse));
            let full_decode = model.sequential_decode_speed(&format, motion);
            let size_mb =
                model.bytes_per_video_second(&format, motion).bytes() as f64 * clip_seconds / 1e6;
            vec![
                keyframe_interval.label().to_owned(),
                fmt_speed(sparse_decode.factor()),
                fmt_speed(full_decode.factor()),
                format!("{size_mb:.1}"),
            ]
        })
        .collect();
    print_table(
        "Figure 3(b): keyframe interval vs decode speed (sparse / full sampling) and size",
        &[
            "keyframe interval",
            "decode spd (op sampling 1/30)",
            "decode spd (sampling 1)",
            "video size (MB)",
        ],
        &rows,
    );
}
