//! # vstore-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (see the index in `DESIGN.md` and the results in
//! `EXPERIMENTS.md`), plus Criterion microbenchmarks of the hot kernels in
//! `benches/`.
//!
//! This library holds the helpers the experiment binaries share: standard
//! profiler/engine construction, the paper's consumer set, and plain-text
//! table formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;
use vstore_core::{ConfigurationEngine, EngineOptions};
use vstore_ops::OperatorLibrary;
use vstore_profiler::{Profiler, ProfilerConfig};
use vstore_sim::CodingCostModel;
use vstore_types::{Consumer, FidelitySpace, OperatorKind, DEFAULT_ACCURACY_LEVELS};

/// The profiler configured as in §6.1: query-A operators profiled on
/// `jackson`, query-B operators on `dashcam`, 10-second clips.
pub fn paper_profiler() -> Arc<Profiler> {
    Arc::new(Profiler::new(
        OperatorLibrary::paper_testbed(),
        CodingCostModel::paper_testbed(),
        ProfilerConfig::paper_evaluation(),
    ))
}

/// A faster profiler (3-second clips) for the heavier end-to-end sweeps.
pub fn fast_profiler() -> Arc<Profiler> {
    Arc::new(Profiler::new(
        OperatorLibrary::paper_testbed(),
        CodingCostModel::paper_testbed(),
        ProfilerConfig::fast_test(),
    ))
}

/// The paper's 24-consumer evaluation set: the six query operators, each at
/// accuracy levels {0.95, 0.9, 0.8, 0.7}.
pub fn evaluation_consumers() -> Vec<Consumer> {
    Consumer::evaluation_set()
}

/// The six query operators in table order.
pub fn query_operators() -> [OperatorKind; 6] {
    OperatorKind::QUERY_OPS
}

/// The paper's accuracy levels.
pub fn accuracy_levels() -> Vec<f64> {
    DEFAULT_ACCURACY_LEVELS.iter().map(|a| a.value()).collect()
}

/// A configuration engine over the full Table-1 knob spaces.
pub fn paper_engine(profiler: Arc<Profiler>) -> ConfigurationEngine {
    ConfigurationEngine::new(profiler, EngineOptions::default())
}

/// A configuration engine over the reduced fidelity space (for the heavier
/// end-to-end sweeps where the full space would only add wall-clock time).
pub fn reduced_engine(profiler: Arc<Profiler>) -> ConfigurationEngine {
    ConfigurationEngine::new(
        profiler,
        EngineOptions {
            fidelity_space: FidelitySpace::reduced(),
            ..EngineOptions::default()
        },
    )
}

/// Print a plain-text table with aligned columns.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:<width$}", width = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, cell)| {
                format!(
                    "{cell:<width$}",
                    width = widths.get(i).copied().unwrap_or(0)
                )
            })
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Format a speed factor the way the paper does (e.g. `362x`, `3.5x`).
pub fn fmt_speed(factor: f64) -> String {
    if factor >= 100.0 {
        format!("{:.0}x", factor)
    } else if factor >= 10.0 {
        format!("{:.1}x", factor)
    } else {
        format!("{:.2}x", factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consumer_set_and_levels_match_paper() {
        assert_eq!(evaluation_consumers().len(), 24);
        assert_eq!(accuracy_levels(), vec![0.95, 0.9, 0.8, 0.7]);
        assert_eq!(query_operators().len(), 6);
    }

    #[test]
    fn speed_formatting() {
        assert_eq!(fmt_speed(362.4), "362x");
        assert_eq!(fmt_speed(23.4), "23.4x");
        assert_eq!(fmt_speed(4.04), "4.04x");
    }
}
