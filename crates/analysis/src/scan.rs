//! Lexical scanning for the analysis pass.
//!
//! [`SourceFile::parse`] turns one Rust source file into per-line records
//! that the rules consume: the line's code with comments and literal
//! contents blanked out (so `".unwrap()"` inside a string never trips a
//! rule), whether the line sits in test code (`#[cfg(test)]` items or a
//! `mod tests`), the innermost `fn`/`impl`/`struct`/`enum` context, brace
//! depth, and any `// vstore-lint: allow(rule)` suppressions attached to
//! the line.
//!
//! This is deliberately a line/token scanner, not a parser: it tracks just
//! enough structure (string/comment state, brace depth, item headers) to
//! scope the project-invariant rules correctly, and nothing more.

/// The innermost scope kind at the start of a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContextKind {
    /// Top level of the file.
    TopLevel,
    /// Inside a `fn` body.
    Fn,
    /// Inside an `impl` block (but not one of its `fn` bodies).
    Impl,
    /// Inside a `struct` body.
    Struct,
    /// Inside an `enum` body.
    Enum,
    /// Inside a `mod` block.
    Mod,
    /// Any other brace scope (blocks, match bodies, literals, ...).
    Other,
}

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line's code with comments and string/char literal contents
    /// blanked to spaces (delimiters kept).
    pub code: String,
    /// Whether the line is inside test code: a `#[cfg(test)]` item or a
    /// `mod tests` block (either at line start or line end, so closing
    /// braces of test modules still count as test code).
    pub in_test: bool,
    /// Brace depth at the start of the line.
    pub depth_start: usize,
    /// Brace depth at the end of the line.
    pub depth_end: usize,
    /// The innermost scope kind at the start of the line.
    pub start_kind: ContextKind,
    /// Innermost enclosing `struct` name at the start of the line.
    pub struct_ctx: Option<String>,
    /// Innermost enclosing `enum` name at the start of the line.
    pub enum_ctx: Option<String>,
    /// Innermost enclosing `fn` name at the end of the line.
    pub fn_ctx: Option<String>,
    /// Innermost enclosing `impl` type name at the end of the line.
    pub impl_ctx: Option<String>,
    /// Rules suppressed on this line via `// vstore-lint: allow(rule, ...)`
    /// on the line itself or the line directly above it.
    pub allowed: Vec<String>,
}

/// One parsed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// The scanned lines, in file order.
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// `true` when `rule` is suppressed at `line_idx` (0-based).
    pub fn is_allowed(&self, line_idx: usize, rule: &str) -> bool {
        self.lines
            .get(line_idx)
            .is_some_and(|l| l.allowed.iter().any(|r| r == rule))
    }

    /// Parse `text` (the contents of `rel_path`) into per-line records.
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let (code_lines, comment_lines) = strip(text);
        let allows: Vec<Vec<String>> = comment_lines.iter().map(|c| parse_allows(c)).collect();

        let mut scopes: Vec<Scope> = Vec::new();
        let mut header = String::new();
        let mut lines = Vec::with_capacity(code_lines.len());

        for (idx, code) in code_lines.iter().enumerate() {
            let depth_start = scopes.len();
            let start_kind = innermost_kind(&scopes);
            let struct_ctx = innermost_name(&scopes, |k| matches!(k, ScopeKind::Struct(_)));
            let enum_ctx = innermost_name(&scopes, |k| matches!(k, ScopeKind::Enum(_)));
            let test_start = scopes.iter().any(|s| s.test);

            for ch in code.chars() {
                match ch {
                    '{' => {
                        let scope = classify(&header);
                        scopes.push(scope);
                        header.clear();
                    }
                    '}' => {
                        scopes.pop();
                        header.clear();
                    }
                    ';' => header.clear(),
                    _ => header.push(ch),
                }
            }

            let test_end = scopes.iter().any(|s| s.test);
            let mut allowed = allows[idx].clone();
            // A standalone comment line's allow applies to the line below
            // it; an end-of-line comment applies only to its own line.
            if idx > 0 && code_lines[idx - 1].trim().is_empty() {
                for rule in &allows[idx - 1] {
                    if !allowed.contains(rule) {
                        allowed.push(rule.clone());
                    }
                }
            }
            lines.push(Line {
                code: code.clone(),
                in_test: test_start || test_end,
                depth_start,
                depth_end: scopes.len(),
                start_kind,
                struct_ctx,
                enum_ctx,
                fn_ctx: innermost_name(&scopes, |k| matches!(k, ScopeKind::Fn(_))),
                impl_ctx: innermost_name(&scopes, |k| matches!(k, ScopeKind::Impl(_))),
                allowed,
            });
        }

        SourceFile {
            rel_path: rel_path.to_owned(),
            lines,
        }
    }
}

#[derive(Debug)]
enum ScopeKind {
    Fn(String),
    Impl(String),
    Struct(String),
    Enum(String),
    Mod(String),
    Other,
}

#[derive(Debug)]
struct Scope {
    kind: ScopeKind,
    test: bool,
}

fn innermost_kind(scopes: &[Scope]) -> ContextKind {
    match scopes.last().map(|s| &s.kind) {
        None => ContextKind::TopLevel,
        Some(ScopeKind::Fn(_)) => ContextKind::Fn,
        Some(ScopeKind::Impl(_)) => ContextKind::Impl,
        Some(ScopeKind::Struct(_)) => ContextKind::Struct,
        Some(ScopeKind::Enum(_)) => ContextKind::Enum,
        Some(ScopeKind::Mod(_)) => ContextKind::Mod,
        Some(ScopeKind::Other) => ContextKind::Other,
    }
}

fn innermost_name(scopes: &[Scope], pred: impl Fn(&ScopeKind) -> bool) -> Option<String> {
    scopes
        .iter()
        .rev()
        .find(|s| pred(&s.kind))
        .map(|s| match &s.kind {
            ScopeKind::Fn(n)
            | ScopeKind::Impl(n)
            | ScopeKind::Struct(n)
            | ScopeKind::Enum(n)
            | ScopeKind::Mod(n) => n.clone(),
            ScopeKind::Other => String::new(),
        })
}

/// Classify the item-header text accumulated since the last `;`/`{`/`}`
/// into the scope the next `{` opens.
fn classify(header: &str) -> Scope {
    let test = header.contains("#[cfg(test)]");
    if let Some(name) = ident_after_keyword(header, "fn") {
        return Scope {
            kind: ScopeKind::Fn(name),
            test,
        };
    }
    if contains_word(header, "impl") {
        return Scope {
            kind: ScopeKind::Impl(impl_type_name(header)),
            test,
        };
    }
    if let Some(name) = ident_after_keyword(header, "struct") {
        return Scope {
            kind: ScopeKind::Struct(name),
            test,
        };
    }
    if let Some(name) = ident_after_keyword(header, "enum") {
        return Scope {
            kind: ScopeKind::Enum(name),
            test,
        };
    }
    if let Some(name) = ident_after_keyword(header, "mod") {
        let test = test || name == "tests";
        return Scope {
            kind: ScopeKind::Mod(name),
            test,
        };
    }
    Scope {
        kind: ScopeKind::Other,
        test,
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Find a word-boundary occurrence of `kw` in `text` and return the
/// identifier that follows it, if any.
fn ident_after_keyword(text: &str, kw: &str) -> Option<String> {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(kw) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1] as char);
        let after = at + kw.len();
        let after_ok = after >= text.len() || !is_ident_char(bytes[after] as char);
        if before_ok && after_ok {
            let rest = text[after..].trim_start();
            let end = rest
                .char_indices()
                .find(|&(_, c)| !is_ident_char(c))
                .map_or(rest.len(), |(i, _)| i);
            if end > 0 {
                return Some(rest[..end].to_owned());
            }
            return None;
        }
        from = at + kw.len();
    }
    None
}

fn contains_word(text: &str, word: &str) -> bool {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1] as char);
        let after = at + word.len();
        let after_ok = after >= text.len() || !is_ident_char(bytes[after] as char);
        if before_ok && after_ok {
            return true;
        }
        from = at + word.len();
    }
    false
}

/// Extract the self-type name from an `impl` header: the last path segment
/// of the type after `for` (trait impls) or directly after the generics
/// (inherent impls). `impl<T> fmt::Debug for Mutex<T>` -> `Mutex`.
fn impl_type_name(header: &str) -> String {
    let after_impl = match header.find("impl") {
        Some(pos) => &header[pos + 4..],
        None => header,
    };
    // Skip a balanced generics list directly after `impl`.
    let mut rest = after_impl.trim_start();
    if rest.starts_with('<') {
        let mut depth = 0usize;
        let mut cut = rest.len();
        for (i, c) in rest.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = rest[cut..].trim_start();
    }
    // Trait impl: the self type is after the last ` for `.
    let ty = match rest.rfind(" for ") {
        Some(pos) => &rest[pos + 5..],
        None => rest,
    };
    let ty = ty.trim_start_matches(['&', ' ']).trim_start_matches("mut ");
    // Leading path up to generics/where/brace, last `::` segment.
    let end = ty
        .char_indices()
        .find(|&(_, c)| !(is_ident_char(c) || c == ':'))
        .map_or(ty.len(), |(i, _)| i);
    let path = &ty[..end];
    path.rsplit("::").next().unwrap_or(path).to_owned()
}

/// Parse `vstore-lint: allow(a, b)` out of one line's comment text.
fn parse_allows(comment: &str) -> Vec<String> {
    let Some(pos) = comment.find("vstore-lint:") else {
        return Vec::new();
    };
    let rest = &comment[pos + "vstore-lint:".len()..];
    let Some(open) = rest.find("allow(") else {
        return Vec::new();
    };
    let inner = &rest[open + "allow(".len()..];
    let Some(close) = inner.find(')') else {
        return Vec::new();
    };
    inner[..close]
        .split(',')
        .map(|r| r.trim().to_owned())
        .filter(|r| !r.is_empty())
        .collect()
}

/// Blank comments and literal contents out of `text`, preserving the line
/// structure. Returns per-line (code, comment-text) pairs: the code view
/// keeps string/char delimiters but replaces their contents with spaces;
/// the comment view holds only comment text (code blanked), so suppression
/// comments can be parsed per line.
fn strip(text: &str) -> (Vec<String>, Vec<String>) {
    #[derive(PartialEq)]
    enum State {
        Normal,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }

    let chars: Vec<char> = text.chars().collect();
    let mut code = String::with_capacity(text.len());
    let mut comment = String::with_capacity(64);
    let mut state = State::Normal;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Normal;
            }
            code.push('\n');
            comment.push('\n');
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    code.push_str("  ");
                    comment.push_str("//");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    code.push_str("  ");
                    comment.push_str("/*");
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    code.push('"');
                    comment.push(' ');
                    i += 1;
                } else if (c == 'r' || c == 'b') && raw_string_hashes(&chars, i).is_some() {
                    let (skip, hashes) = raw_string_hashes(&chars, i).unwrap_or((1, 0));
                    state = State::RawStr(hashes);
                    for _ in 0..skip {
                        code.push(' ');
                        comment.push(' ');
                    }
                    code.push('"');
                    i += skip + 1;
                } else if c == '\'' && is_char_literal(&chars, i) {
                    state = State::Char;
                    code.push('\'');
                    comment.push(' ');
                    i += 1;
                } else {
                    code.push(c);
                    comment.push(' ');
                    i += 1;
                }
            }
            State::LineComment => {
                code.push(' ');
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth > 1 {
                        State::BlockComment(depth - 1)
                    } else {
                        State::Normal
                    };
                    code.push_str("  ");
                    comment.push_str("*/");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    code.push_str("  ");
                    comment.push_str("/*");
                    i += 2;
                } else {
                    code.push(' ');
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code.push_str("  ");
                    comment.push_str("  ");
                    // Keep a line break inside an escaped literal visible.
                    if chars.get(i + 1) == Some(&'\n') {
                        code.pop();
                        comment.pop();
                    } else {
                        i += 1;
                    }
                    i += 1;
                } else if c == '"' {
                    state = State::Normal;
                    code.push('"');
                    comment.push(' ');
                    i += 1;
                } else {
                    code.push(' ');
                    comment.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&chars, i, hashes) {
                    state = State::Normal;
                    code.push('"');
                    comment.push(' ');
                    for _ in 0..hashes {
                        code.push(' ');
                        comment.push(' ');
                    }
                    i += 1 + hashes;
                } else {
                    code.push(' ');
                    comment.push(' ');
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    code.push_str("  ");
                    comment.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    state = State::Normal;
                    code.push('\'');
                    comment.push(' ');
                    i += 1;
                } else {
                    code.push(' ');
                    comment.push(' ');
                    i += 1;
                }
            }
        }
    }

    let code_lines = code.lines().map(str::to_owned).collect();
    let comment_lines = comment.lines().map(str::to_owned).collect();
    (code_lines, comment_lines)
}

/// If position `i` starts a raw (byte) string prefix (`r"`, `r#"`, `br#"`,
/// ...), return `(prefix_len, hash_count)` where `prefix_len` counts the
/// chars before the opening quote.
fn raw_string_hashes(chars: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((j - i, hashes))
    } else {
        None
    }
}

fn closes_raw_string(chars: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguish a char literal from a lifetime: `'a'` and `'\n'` are
/// literals, `'a` in `Foo<'a>` is not.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let f = SourceFile::parse(
            "x.rs",
            "let s = \"a.unwrap()\"; // .unwrap()\nlet c = 'x'; /* as u32 */\n",
        );
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("let s"));
        assert!(!f.lines[1].code.contains("as u32"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = SourceFile::parse("x.rs", "let s = r#\"std::fs\"#;\nlet t = 1;\n");
        assert!(!f.lines[0].code.contains("std::fs"));
        assert!(f.lines[1].code.contains("let t"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let f = SourceFile::parse("x.rs", "fn f<'a>(x: &'a str) -> &'a str {\n    x\n}\n");
        assert!(f.lines[1].code.contains('x'));
        assert_eq!(f.lines[1].fn_ctx.as_deref(), Some("f"));
    }

    #[test]
    fn cfg_test_items_and_mod_tests_are_test_code() {
        let src = "fn lib() {\n    work();\n}\n#[cfg(test)]\nmod tests {\n    fn helper() {\n        x.unwrap();\n    }\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.lines[1].in_test, "library body");
        assert!(f.lines[6].in_test, "test helper body");
        let src2 = "mod tests {\n    fn t() {}\n}\n";
        let f2 = SourceFile::parse("x.rs", src2);
        assert!(f2.lines[1].in_test);
    }

    #[test]
    fn impl_and_fn_contexts_are_tracked() {
        let src =
            "impl<T> fmt::Debug for Wrapper<T> {\n    fn fmt(&self) {\n        body();\n    }\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.lines[2].impl_ctx.as_deref(), Some("Wrapper"));
        assert_eq!(f.lines[2].fn_ctx.as_deref(), Some("fmt"));
    }

    #[test]
    fn struct_fields_and_enum_variants_have_context() {
        let src = "pub struct S {\n    state: Mutex<u32>,\n}\npub enum E {\n    A,\n    B { x: u32 },\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.lines[1].struct_ctx.as_deref(), Some("S"));
        assert_eq!(f.lines[1].start_kind, ContextKind::Struct);
        assert_eq!(f.lines[4].enum_ctx.as_deref(), Some("E"));
        assert_eq!(f.lines[4].start_kind, ContextKind::Enum);
    }

    #[test]
    fn allow_comments_attach_to_their_line_and_the_next() {
        let src = "// vstore-lint: allow(no-unwrap) — invariant\nx.unwrap();\ny.unwrap(); // vstore-lint: allow(no-unwrap, checked-cast)\nz.unwrap();\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.is_allowed(1, "no-unwrap"));
        assert!(f.is_allowed(2, "no-unwrap"));
        assert!(f.is_allowed(2, "checked-cast"));
        assert!(!f.is_allowed(3, "no-unwrap"));
    }
}
