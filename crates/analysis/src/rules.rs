//! The project-invariant rules.
//!
//! Each rule is a pure function from scanned sources to findings; scoping
//! (which crates/paths a rule covers) lives here so the fixture tests can
//! exercise a rule by giving a fixture a matching virtual path. All rules
//! skip test code (`#[cfg(test)]` items, `mod tests`) and honor per-site
//! `// vstore-lint: allow(rule)` suppressions.

use crate::lockgraph::{EdgeSite, LockGraph};
use crate::report::Finding;
use crate::scan::{ContextKind, SourceFile};

/// Rule name: lock-acquisition ordering cycles (potential deadlocks).
pub const LOCK_ORDER: &str = "lock-order";
/// Rule name: raw `std::fs` outside the storage-backend seam.
pub const BACKEND_SEAM: &str = "backend-seam";
/// Rule name: narrowing `as` casts on storage/codec/serve paths.
pub const CHECKED_CAST: &str = "checked-cast";
/// Rule name: `unwrap`/`expect`/`panic!` in core library code.
pub const NO_UNWRAP: &str = "no-unwrap";
/// Rule name: hand-rolled `Mutex<VecDeque<_>>` queues outside `vstore_sim`.
pub const BOUNDED_QUEUE: &str = "bounded-queue";
/// Rule name: wire codec enum/arm/version-range consistency.
pub const WIRE_COMPAT: &str = "wire-compat";
/// Rule name: trace span guards bound to `_` (dropped immediately).
pub const SPAN_GUARD: &str = "span-guard";

/// All rule names, for CLI help and docs.
pub const ALL_RULES: &[&str] = &[
    LOCK_ORDER,
    BACKEND_SEAM,
    CHECKED_CAST,
    NO_UNWRAP,
    BOUNDED_QUEUE,
    WIRE_COMPAT,
    SPAN_GUARD,
];

/// The core library crates whose non-test code must not panic.
const NO_UNWRAP_SCOPE: &[&str] = &[
    "src/",
    "crates/storage/src/",
    "crates/codec/src/",
    "crates/core/src/",
    "crates/ingest/src/",
    "crates/obs/src/",
    "crates/query/src/",
    "crates/serve/src/",
    "crates/sim/src/",
    "crates/types/src/",
];

/// The hot paths where every narrowing cast must go through
/// `vstore_types::cast`.
const CHECKED_CAST_SCOPE: &[&str] = &[
    "src/",
    "crates/storage/src/",
    "crates/codec/src/",
    "crates/serve/src/",
];

/// Where the backend-seam rule applies (library code of the store crates).
const BACKEND_SEAM_SCOPE: &[&str] = &[
    "src/",
    "crates/storage/src/",
    "crates/codec/src/",
    "crates/core/src/",
    "crates/ingest/src/",
    "crates/obs/src/",
    "crates/query/src/",
    "crates/serve/src/",
    "crates/sim/src/",
    "crates/types/src/",
    "crates/ops/src/",
];

/// The only places allowed to touch `std::fs`: the backend seam itself and
/// the tiered cold store behind it.
const BACKEND_SEAM_EXEMPT: &[&str] = &["crates/storage/src/backend.rs", "crates/storage/src/tier/"];

fn in_scope(path: &str, scope: &[&str]) -> bool {
    scope.iter().any(|p| path.starts_with(p))
}

/// Run every rule.
pub fn run_all(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(lock_order(files));
    findings.extend(backend_seam(files));
    findings.extend(checked_cast(files));
    findings.extend(no_unwrap(files));
    findings.extend(bounded_queue(files));
    findings.extend(wire_compat(files));
    findings.extend(span_guard(files));
    findings
}

// ---------------------------------------------------------------------
// backend-seam
// ---------------------------------------------------------------------

/// All disk I/O flows through the `StorageBackend` trait: `std::fs` in
/// non-test library code is only legal inside the backend seam itself.
pub fn backend_seam(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if !in_scope(&file.rel_path, BACKEND_SEAM_SCOPE)
            || BACKEND_SEAM_EXEMPT
                .iter()
                .any(|e| file.rel_path.starts_with(e))
        {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test || !token_present(&line.code, "std::fs") {
                continue;
            }
            if file.is_allowed(idx, BACKEND_SEAM) {
                continue;
            }
            findings.push(Finding::new(
                BACKEND_SEAM,
                &file.rel_path,
                idx + 1,
                line.fn_ctx.as_deref().unwrap_or(""),
                "raw std::fs outside the StorageBackend seam; route disk I/O through the \
                 backend trait"
                    .to_owned(),
                line.code.trim(),
            ));
        }
    }
    findings
}

// ---------------------------------------------------------------------
// checked-cast
// ---------------------------------------------------------------------

const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// Narrowing `as` casts on the storage/codec/serve paths silently truncate;
/// they must go through `vstore_types::cast` (or be explicitly allowed).
pub fn checked_cast(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if !in_scope(&file.rel_path, CHECKED_CAST_SCOPE) {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for target in narrowing_casts(&line.code) {
                if file.is_allowed(idx, CHECKED_CAST) {
                    continue;
                }
                findings.push(Finding::new(
                    CHECKED_CAST,
                    &file.rel_path,
                    idx + 1,
                    line.fn_ctx.as_deref().unwrap_or(""),
                    format!(
                        "narrowing `as {target}` cast on a checked path; use a \
                         vstore_types::cast helper (or allow with a justification)"
                    ),
                    line.code.trim(),
                ));
            }
        }
    }
    findings
}

/// The narrow targets of every `as <narrow-int>` cast on the line.
fn narrowing_casts(code: &str) -> Vec<&'static str> {
    let mut found = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find("as") {
        let at = from + pos;
        from = at + 2;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1] as char);
        let after = at + 2;
        let after_ok = after < code.len() && (bytes[after] as char).is_whitespace();
        if !before_ok || !after_ok {
            continue;
        }
        let rest = code[after..].trim_start();
        for target in NARROW_TARGETS {
            if rest.starts_with(target)
                && !rest[target.len()..]
                    .chars()
                    .next()
                    .is_some_and(is_ident_char)
            {
                found.push(*target);
                break;
            }
        }
    }
    found
}

// ---------------------------------------------------------------------
// no-unwrap
// ---------------------------------------------------------------------

const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Core library code returns typed errors; it does not panic. Intentional
/// invariant panics carry an allow comment with a one-line justification.
pub fn no_unwrap(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if !in_scope(&file.rel_path, NO_UNWRAP_SCOPE) {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for token in PANIC_TOKENS {
                if !panic_token_present(&line.code, token) {
                    continue;
                }
                if file.is_allowed(idx, NO_UNWRAP) {
                    continue;
                }
                findings.push(Finding::new(
                    NO_UNWRAP,
                    &file.rel_path,
                    idx + 1,
                    line.fn_ctx.as_deref().unwrap_or(""),
                    format!(
                        "`{}` in core library code; return a typed VStoreError (or allow \
                         with a justification)",
                        token.trim_start_matches('.').trim_end_matches('(')
                    ),
                    line.code.trim(),
                ));
            }
        }
    }
    findings
}

fn panic_token_present(code: &str, token: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let at = from + pos;
        from = at + token.len();
        // Word boundary on the left (so `catch_panic!(` or a longer method
        // name never matches). Tokens starting with `.` are self-bounding.
        let before_ok =
            token.starts_with('.') || at == 0 || !is_ident_char(code.as_bytes()[at - 1] as char);
        if before_ok {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------
// bounded-queue
// ---------------------------------------------------------------------

/// Every queue in the system is a `vstore_sim::BoundedQueue` (bounded,
/// back-pressured, close/drain semantics); raw `Mutex<VecDeque<_>>`
/// queueing outside `vstore_sim` reintroduces unbounded growth.
pub fn bounded_queue(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if file.rel_path.starts_with("crates/sim/src/")
            || file.rel_path.starts_with("crates/analysis/src/")
        {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let packed: String = line.code.chars().filter(|c| !c.is_whitespace()).collect();
            if !(packed.contains("Mutex<VecDeque") || packed.contains("RwLock<VecDeque")) {
                continue;
            }
            if file.is_allowed(idx, BOUNDED_QUEUE) {
                continue;
            }
            findings.push(Finding::new(
                BOUNDED_QUEUE,
                &file.rel_path,
                idx + 1,
                line.fn_ctx.as_deref().unwrap_or(""),
                "raw Mutex<VecDeque<_>> queue; use vstore_sim::BoundedQueue (bounded, \
                 back-pressured, close/drain semantics)"
                    .to_owned(),
                line.code.trim(),
            ));
        }
    }
    findings
}

// ---------------------------------------------------------------------
// wire-compat
// ---------------------------------------------------------------------

/// Every `ServeRequest`/`ServeResponse` variant must have an encode arm in
/// `write_wire` and a decode arm in `from_wire`, and the decoder must
/// accept the whole `MIN_WIRE_VERSION..=WIRE_VERSION` range.
pub fn wire_compat(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if !file.rel_path.ends_with("serve/src/wire.rs") {
            continue;
        }
        let mut saw_enum = false;
        for enum_name in ["ServeRequest", "ServeResponse"] {
            let variants = enum_variants(file, enum_name);
            if variants.is_empty() {
                continue;
            }
            saw_enum = true;
            for fn_name in ["write_wire", "from_wire"] {
                let body = fn_body(file, enum_name, fn_name);
                if body.is_empty() {
                    findings.push(Finding::new(
                        WIRE_COMPAT,
                        &file.rel_path,
                        0,
                        enum_name,
                        format!("no `fn {fn_name}` found in `impl {enum_name}`"),
                        &format!("{enum_name}::{fn_name} missing"),
                    ));
                    continue;
                }
                for (variant, decl_line) in &variants {
                    let qualified = format!("{enum_name}::{variant}");
                    let selfed = format!("Self::{variant}");
                    if !(body.contains(&qualified) || body.contains(&selfed)) {
                        findings.push(Finding::new(
                            WIRE_COMPAT,
                            &file.rel_path,
                            *decl_line,
                            enum_name,
                            format!(
                                "variant `{qualified}` has no arm in `{fn_name}`; encode \
                                 and decode must stay in lockstep"
                            ),
                            &format!("{qualified} missing from {fn_name}"),
                        ));
                    }
                }
            }
        }
        if saw_enum {
            let range_checked = file.lines.iter().any(|l| {
                let packed: String = l.code.chars().filter(|c| !c.is_whitespace()).collect();
                packed.contains("MIN_WIRE_VERSION..=WIRE_VERSION")
            });
            if !range_checked {
                findings.push(Finding::new(
                    WIRE_COMPAT,
                    &file.rel_path,
                    0,
                    "",
                    "no `MIN_WIRE_VERSION..=WIRE_VERSION` range check found; the decoder \
                     must accept every supported wire version"
                        .to_owned(),
                    "version range check missing",
                ));
            }
        }
    }
    findings
}

/// The variants of `enum_name` with their 1-based declaration lines.
fn enum_variants(file: &SourceFile, enum_name: &str) -> Vec<(String, usize)> {
    let mut variants = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.enum_ctx.as_deref() != Some(enum_name) || line.start_kind != ContextKind::Enum {
            continue;
        }
        let trimmed = line.code.trim();
        let ident: String = trimmed.chars().take_while(|&c| is_ident_char(c)).collect();
        if ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            variants.push((ident, idx + 1));
        }
    }
    variants
}

/// Concatenated body text of `fn fn_name` inside `impl impl_name`.
fn fn_body(file: &SourceFile, impl_name: &str, fn_name: &str) -> String {
    let mut body = String::new();
    for line in &file.lines {
        if line.impl_ctx.as_deref() == Some(impl_name) && line.fn_ctx.as_deref() == Some(fn_name) {
            body.push_str(&line.code);
            body.push('\n');
        }
    }
    body
}

// ---------------------------------------------------------------------
// span-guard
// ---------------------------------------------------------------------

/// A trace span guard bound to `_` is dropped on the same statement: the
/// span records a zero-length interval and the region it was meant to time
/// is not measured at all. Bind it to a named guard (`let _span = …`) so
/// the RAII drop happens at the end of the region.
pub fn span_guard(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if file.rel_path.starts_with("crates/analysis/src/") {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let packed: String = line.code.chars().filter(|c| !c.is_whitespace()).collect();
            if !packed.contains("let_=")
                || !(packed.contains(".span(") || packed.contains(".span_with("))
            {
                continue;
            }
            if file.is_allowed(idx, SPAN_GUARD) {
                continue;
            }
            findings.push(Finding::new(
                SPAN_GUARD,
                &file.rel_path,
                idx + 1,
                line.fn_ctx.as_deref().unwrap_or(""),
                "span guard bound to `_` drops immediately and times nothing; bind it \
                 to a named guard (`let _span = …`) for the region it should cover"
                    .to_owned(),
                line.code.trim(),
            ));
        }
    }
    findings
}

// ---------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockKind {
    Mutex,
    RwLock,
}

#[derive(Debug)]
struct LockDecl {
    file: String,
    strukt: String,
    field: String,
    kind: LockKind,
}

impl LockDecl {
    fn id(&self) -> String {
        format!("{}::{}.{}", self.file, self.strukt, self.field)
    }
}

/// Collect every named `Mutex`/`RwLock` struct field in the workspace.
fn collect_lock_decls(files: &[SourceFile]) -> Vec<LockDecl> {
    let mut decls = Vec::new();
    for file in files {
        for line in &file.lines {
            if line.in_test || line.start_kind != ContextKind::Struct {
                continue;
            }
            let Some(strukt) = line.struct_ctx.clone() else {
                continue;
            };
            let Some((field, ty)) = field_decl(&line.code) else {
                continue;
            };
            let Some(kind) = lock_kind(ty) else {
                continue;
            };
            decls.push(LockDecl {
                file: file.rel_path.clone(),
                strukt,
                field,
                kind,
            });
        }
    }
    decls
}

/// Parse `pub field: Type,` into `(field, type-text)`.
fn field_decl(code: &str) -> Option<(String, &str)> {
    let mut rest = code.trim();
    if let Some(after) = rest.strip_prefix("pub") {
        let after = after.trim_start();
        rest = if let Some(close) = after.strip_prefix('(') {
            close.split_once(')')?.1.trim_start()
        } else {
            after
        };
    }
    let end = rest
        .char_indices()
        .find(|&(_, c)| !is_ident_char(c))
        .map(|(i, _)| i)?;
    if end == 0 {
        return None;
    }
    let (name, after) = rest.split_at(end);
    let ty = after.trim_start().strip_prefix(':')?;
    Some((name.to_owned(), ty))
}

/// The first lock type mentioned in a field's type text, word-bounded.
fn lock_kind(ty: &str) -> Option<LockKind> {
    let mutex = word_position(ty, "Mutex<");
    let rwlock = word_position(ty, "RwLock<");
    match (mutex, rwlock) {
        (Some(m), Some(r)) if m < r => Some(LockKind::Mutex),
        (Some(_), Some(_)) => Some(LockKind::RwLock),
        (Some(_), None) => Some(LockKind::Mutex),
        (None, Some(_)) => Some(LockKind::RwLock),
        (None, None) => None,
    }
}

fn word_position(text: &str, word: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = text[from..].find(word) {
        let at = from + pos;
        if at == 0 || !is_ident_char(text.as_bytes()[at - 1] as char) {
            return Some(at);
        }
        from = at + word.len();
    }
    None
}

/// A guard heuristically held at some point in a function walk.
#[derive(Debug)]
struct Guard {
    lock_id: String,
    name: Option<String>,
    depth: usize,
}

/// Build the global lock-order graph: walk every non-test function, extract
/// the sequence of lock acquisitions over named `Mutex`/`RwLock` fields,
/// track which `let`-bound guards are still alive (scope- and
/// `drop()`-aware), and record a `held -> acquired` edge for every nested
/// acquisition. Suppressed sites (`allow(lock-order)`) contribute no edges.
pub fn build_lock_graph(files: &[SourceFile]) -> LockGraph {
    let decls = collect_lock_decls(files);
    let mut graph = LockGraph::new();
    for file in files {
        walk_file(file, &decls, &mut graph);
    }
    graph
}

/// Lock-order rule: report every cycle in the global lock graph.
pub fn lock_order(files: &[SourceFile]) -> Vec<Finding> {
    let graph = build_lock_graph(files);
    let mut findings = Vec::new();
    for cycle in graph.cycles() {
        let ring = cycle.locks.join(" -> ");
        let mut witnesses = String::new();
        for (outer, inner, sites) in &cycle.edges {
            for site in sites {
                if !witnesses.is_empty() {
                    witnesses.push_str("; ");
                }
                witnesses.push_str(&format!(
                    "{} taken holding {} at {}:{} ({})",
                    inner, outer, site.file, site.line, site.function
                ));
            }
        }
        findings.push(Finding::new(
            LOCK_ORDER,
            "(workspace)",
            0,
            "lock graph",
            format!("potential deadlock: lock-order cycle [{ring}]: {witnesses}"),
            &format!("cycle {ring}"),
        ));
    }
    findings
}

fn walk_file(file: &SourceFile, decls: &[LockDecl], graph: &mut LockGraph) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut stmt = String::new();
    let mut stmt_depth = 0usize;
    let mut last_fn: Option<String> = None;

    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || line.fn_ctx.is_none() {
            guards.clear();
            stmt.clear();
            last_fn = None;
            continue;
        }
        if line.fn_ctx != last_fn {
            guards.clear();
            stmt.clear();
            last_fn = line.fn_ctx.clone();
        }
        // Guards bound deeper than the current depth went out of scope.
        guards.retain(|g| g.depth <= line.depth_start);

        let suppressed = file.is_allowed(idx, LOCK_ORDER);
        let mut depth = line.depth_start;
        let code = &line.code;
        let chars: Vec<char> = code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            match c {
                '{' => {
                    depth += 1;
                    stmt.clear();
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|g| g.depth <= depth);
                    stmt.clear();
                }
                ';' => stmt.clear(),
                _ => {
                    if stmt.is_empty() {
                        stmt_depth = depth;
                    }
                    stmt.push(c);
                }
            }
            // A completed `drop(name)` releases that guard early.
            if c == ')' {
                if let Some(name) = dropped_name(&stmt) {
                    guards.retain(|g| g.name.as_deref() != Some(name));
                }
            }
            // A completed acquisition token ends exactly here.
            if c == ')' {
                if let Some(kind) = acquisition_at(&stmt) {
                    if let Some(decl) = resolve(&stmt, kind, file, line.impl_ctx.as_deref(), decls)
                    {
                        let id = decl.id();
                        if !suppressed {
                            for g in &guards {
                                graph.add_edge(
                                    &g.lock_id,
                                    &id,
                                    EdgeSite {
                                        file: file.rel_path.clone(),
                                        line: idx + 1,
                                        function: line.fn_ctx.clone().unwrap_or_default(),
                                    },
                                );
                            }
                        }
                        let trimmed = stmt.trim_start();
                        if trimmed.starts_with("let ") {
                            let name = let_binding_name(trimmed);
                            if let Some(n) = &name {
                                // Shadowing re-binds: the old guard dies.
                                guards.retain(|g| g.name.as_deref() != Some(n.as_str()));
                            }
                            guards.push(Guard {
                                lock_id: id,
                                name,
                                depth: stmt_depth,
                            });
                        }
                    }
                }
            }
            i += 1;
        }
    }
}

/// If `stmt` ends with an acquisition call (`.lock()`, `.read()`,
/// `.write()`), the lock kind it requires.
fn acquisition_at(stmt: &str) -> Option<LockKind> {
    if stmt.ends_with(".lock()") {
        Some(LockKind::Mutex)
    } else if stmt.ends_with(".read()") || stmt.ends_with(".write()") {
        Some(LockKind::RwLock)
    } else {
        None
    }
}

/// If `stmt` ends with `drop(name)`, the dropped identifier.
fn dropped_name(stmt: &str) -> Option<&str> {
    let open = stmt.rfind("drop(")?;
    let before_ok = {
        let prefix = &stmt[..open];
        match prefix.chars().last() {
            None => true,
            Some(c) => !is_ident_char(c) || prefix.ends_with("::"),
        }
    };
    if !before_ok {
        return None;
    }
    let inner = &stmt[open + "drop(".len()..stmt.len().checked_sub(1)?];
    if !stmt.ends_with(')') {
        return None;
    }
    let name = inner.trim();
    if !name.is_empty() && name.chars().all(is_ident_char) {
        Some(name)
    } else {
        None
    }
}

/// The bound name of a `let` statement (`let mut g = ...` -> `g`); `None`
/// for destructuring patterns.
fn let_binding_name(stmt: &str) -> Option<String> {
    let rest = stmt.trim_start().strip_prefix("let ")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let end = rest
        .char_indices()
        .find(|&(_, c)| !is_ident_char(c))
        .map_or(rest.len(), |(i, _)| i);
    if end == 0 {
        return None;
    }
    Some(rest[..end].to_owned())
}

/// Resolve the receiver chain before the acquisition at the end of `stmt`
/// to a declared lock field. The chain must be built from identifiers,
/// field accesses, and index expressions (a method call in the chain makes
/// the receiver opaque and the site is skipped). Resolution prefers the
/// `impl` type's own field for `self` receivers, then a unique same-file
/// field, then a unique workspace-wide field.
fn resolve<'d>(
    stmt: &str,
    kind: LockKind,
    file: &SourceFile,
    impl_ctx: Option<&str>,
    decls: &'d [LockDecl],
) -> Option<&'d LockDecl> {
    let call_start = stmt.rfind('.')?;
    let chain = receiver_chain(&stmt[..call_start])?;
    let field = chain
        .iter()
        .rev()
        .find(|seg| !seg.chars().all(|c| c.is_ascii_digit()))?;
    let candidates: Vec<&LockDecl> = decls
        .iter()
        .filter(|d| &d.field == field && d.kind == kind)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    if chain.first().map(String::as_str) == Some("self") {
        if let Some(impl_name) = impl_ctx {
            if let Some(decl) = candidates.iter().find(|d| d.strukt == impl_name) {
                return Some(decl);
            }
        }
    }
    let same_file: Vec<&LockDecl> = candidates
        .iter()
        .filter(|d| d.file == file.rel_path)
        .copied()
        .collect();
    if same_file.len() == 1 {
        return Some(same_file[0]);
    }
    if candidates.len() == 1 {
        return Some(candidates[0]);
    }
    None
}

/// Walk back over `text` collecting a `a.b[expr].c`-shaped receiver chain;
/// returns the segments in source order, or `None` when the receiver is
/// not a plain field chain.
fn receiver_chain(text: &str) -> Option<Vec<String>> {
    let chars: Vec<char> = text.chars().collect();
    let mut i = chars.len();
    let mut segments: Vec<String> = Vec::new();
    let mut current = String::new();
    while i > 0 {
        let c = chars[i - 1];
        if is_ident_char(c) {
            current.push(c);
            i -= 1;
        } else if c == ']' {
            // Skip a balanced index expression; it contributes nothing.
            let mut depth = 0usize;
            while i > 0 {
                let b = chars[i - 1];
                i -= 1;
                if b == ']' {
                    depth += 1;
                } else if b == '[' {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            if depth != 0 {
                return None;
            }
        } else if c == '.' {
            if current.is_empty() {
                return None;
            }
            segments.push(current.chars().rev().collect());
            current = String::new();
            i -= 1;
        } else {
            break;
        }
    }
    if !current.is_empty() {
        segments.push(current.chars().rev().collect());
    }
    if segments.is_empty() {
        return None;
    }
    segments.reverse();
    Some(segments)
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn token_present(code: &str, token: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let at = from + pos;
        from = at + token.len();
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1] as char);
        let after = at + token.len();
        let after_ok = after >= code.len() || !is_ident_char(bytes[after] as char);
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrowing_casts_are_found_with_boundaries() {
        assert_eq!(narrowing_casts("x as u32"), vec!["u32"]);
        assert_eq!(narrowing_casts("x as u64"), Vec::<&str>::new());
        assert_eq!(narrowing_casts("measures as u32x"), Vec::<&str>::new());
        assert_eq!(narrowing_casts("alias as_u32(x)"), Vec::<&str>::new());
        assert_eq!(narrowing_casts("a as u8; b as i16"), vec!["u8", "i16"]);
    }

    #[test]
    fn receiver_chains_parse() {
        assert_eq!(
            receiver_chain("let g = self.shards[idx % n]").as_deref(),
            Some(&["self".to_owned(), "shards".to_owned()][..])
        );
        assert_eq!(
            receiver_chain("x = shared.state").as_deref(),
            Some(&["shared".to_owned(), "state".to_owned()][..])
        );
        assert_eq!(
            receiver_chain("self.gate.0").as_deref(),
            Some(&["self".to_owned(), "gate".to_owned(), "0".to_owned()][..])
        );
        // A method call in the chain is opaque.
        assert_eq!(receiver_chain("self.store()").as_deref(), None);
    }

    #[test]
    fn field_decls_parse() {
        assert_eq!(
            field_decl("pub(crate) state: Mutex<Inner>,"),
            Some(("state".to_owned(), " Mutex<Inner>,"))
        );
        assert_eq!(lock_kind(" Mutex<Inner>,"), Some(LockKind::Mutex));
        assert_eq!(lock_kind(" RwLock<Weak<T>>,"), Some(LockKind::RwLock));
        assert_eq!(
            lock_kind(" Arc<(Mutex<bool>, Condvar)>,"),
            Some(LockKind::Mutex)
        );
        assert_eq!(lock_kind(" FakeMutex<Inner>,"), None);
    }

    #[test]
    fn dropped_names_parse() {
        assert_eq!(dropped_name("drop(guard)"), Some("guard"));
        assert_eq!(dropped_name("std::mem::drop(g)"), Some("g"));
        assert_eq!(dropped_name("airdrop(g)"), None);
        assert_eq!(dropped_name("drop(a.b)"), None);
    }
}
