//! The static-analysis CI gate, in the mold of `bench_gate`: run the
//! project-invariant rules over the workspace, compare against the
//! checked-in baseline, and fail on any non-baselined finding.
//!
//! Usage:
//!   analysis_gate [--root DIR] [--format text|json] [--out FILE]
//!                 [--baseline FILE] [--update-baseline]
//!
//! - `--root DIR` workspace root (default: current directory)
//! - `--format json` emit the machine-readable report (default: text)
//! - `--out FILE` write the report to FILE as well as the stdout policy:
//!   text still goes to stderr so CI logs stay readable
//! - `--baseline FILE` baseline path (default: `<root>/analysis_baseline.json`)
//! - `--update-baseline` rewrite the baseline from the current findings and
//!   exit 0 — intentional new suppressions become an explicit reviewed diff
//! - `--locks` dump the global lock graph (every observed acquired-before
//!   edge with its witness sites) and exit — the raw material for
//!   lock-order audits
//!
//! Exit codes: 0 clean (or fully baselined), 1 new findings, 2 usage or
//! I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use vstore_analysis::report::{Baseline, Report};

struct Options {
    root: PathBuf,
    format_json: bool,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    update_baseline: bool,
    dump_locks: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        root: PathBuf::from("."),
        format_json: false,
        out: None,
        baseline: None,
        update_baseline: false,
        dump_locks: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                options.root = PathBuf::from(args.next().ok_or("--root needs a value")?);
            }
            "--format" => {
                let value = args.next().ok_or("--format needs text|json")?;
                options.format_json = match value.as_str() {
                    "json" => true,
                    "text" => false,
                    other => return Err(format!("unknown format {other:?}")),
                };
            }
            "--out" => {
                options.out = Some(PathBuf::from(args.next().ok_or("--out needs a value")?));
            }
            "--baseline" => {
                options.baseline = Some(PathBuf::from(
                    args.next().ok_or("--baseline needs a value")?,
                ));
            }
            "--update-baseline" => options.update_baseline = true,
            "--locks" => options.dump_locks = true,
            "--help" | "-h" => {
                return Err(format!(
                    "usage: analysis_gate [--root DIR] [--format text|json] [--out FILE] \
                     [--baseline FILE] [--update-baseline] [--locks]\nrules: {}",
                    vstore_analysis::rules::ALL_RULES.join(", ")
                ));
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("analysis_gate: {message}");
            return ExitCode::from(2);
        }
    };
    let baseline_path = options
        .baseline
        .clone()
        .unwrap_or_else(|| options.root.join(vstore_analysis::BASELINE_FILE));

    if options.dump_locks {
        let sources = match vstore_analysis::collect_workspace_sources(&options.root) {
            Ok(sources) => sources,
            Err(message) => {
                eprintln!("analysis_gate: {message}");
                return ExitCode::from(2);
            }
        };
        let files: Vec<_> = sources
            .iter()
            .map(|(path, text)| vstore_analysis::scan::SourceFile::parse(path, text))
            .collect();
        let graph = vstore_analysis::rules::build_lock_graph(&files);
        let mut edge_count = 0usize;
        for (outer, inner, sites) in graph.edges() {
            edge_count += 1;
            println!("{outer} -> {inner}");
            for site in sites {
                println!("    {}:{} in {}", site.file, site.line, site.function);
            }
        }
        let cycles = graph.cycles();
        println!("{edge_count} edge(s), {} cycle(s)", cycles.len());
        return ExitCode::SUCCESS;
    }

    let findings = match vstore_analysis::analyze_workspace(&options.root) {
        Ok(findings) => findings,
        Err(message) => {
            eprintln!("analysis_gate: {message}");
            return ExitCode::from(2);
        }
    };

    if options.update_baseline {
        let rendered = Baseline::render(&findings);
        if let Err(e) = std::fs::write(&baseline_path, rendered) {
            eprintln!(
                "analysis_gate: cannot write baseline {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        println!(
            "analysis_gate: baselined {} finding(s) into {}",
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match Baseline::load(&baseline_path) {
        Ok(baseline) => baseline,
        Err(message) => {
            eprintln!("analysis_gate: {message}");
            return ExitCode::from(2);
        }
    };
    let report = Report::against(findings, &baseline);

    let rendered = if options.format_json {
        report.to_json()
    } else {
        report.to_text()
    };
    if let Some(out) = &options.out {
        if let Err(e) = std::fs::write(out, &rendered) {
            eprintln!("analysis_gate: cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }
    if options.format_json {
        // JSON to stdout (or --out); keep the human summary on stderr so CI
        // logs stay readable either way.
        if options.out.is_none() {
            println!("{rendered}");
        }
        eprint!("{}", report.to_text());
    } else {
        print!("{rendered}");
    }

    if report.new_count() > 0 {
        eprintln!(
            "analysis_gate: {} new finding(s); fix them, add a justified \
             `// vstore-lint: allow(rule)`, or run --update-baseline and review the diff",
            report.new_count()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
