//! Findings, the baseline, and the text/JSON report formats.
//!
//! A finding's identity (its **key**) is deliberately line-number-free:
//! `rule|file|context|normalized snippet`. Line numbers drift on every
//! edit; the key only changes when the offending code itself moves files,
//! changes function, or changes text — so a checked-in baseline stays
//! stable across unrelated edits. The baseline maps keys to occurrence
//! counts: the gate fails only when a key's current count exceeds its
//! baselined count (new violations of an old shape still fail).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired (kebab-case, e.g. `lock-order`).
    pub rule: &'static str,
    /// Workspace-relative file, `/`-separated. `(workspace)` for findings
    /// that span files (lock cycles).
    pub file: String,
    /// 1-based line, 0 when the finding has no single line.
    pub line: usize,
    /// The enclosing function or item, when known.
    pub context: String,
    /// Human-readable description.
    pub message: String,
    /// Stable identity for baselining; see the module docs.
    pub key: String,
}

impl Finding {
    /// Build a finding with the standard key shape.
    pub fn new(
        rule: &'static str,
        file: &str,
        line: usize,
        context: &str,
        message: String,
        snippet: &str,
    ) -> Finding {
        let key = format!("{rule}|{file}|{context}|{}", normalize(snippet));
        Finding {
            rule,
            file: file.to_owned(),
            line,
            context: context.to_owned(),
            message,
            key,
        }
    }
}

/// Collapse whitespace so a reformat does not change a finding's key.
fn normalize(snippet: &str) -> String {
    let mut out = String::with_capacity(snippet.len());
    let mut last_space = true;
    for c in snippet.trim().chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
            }
            last_space = true;
        } else {
            out.push(c);
            last_space = false;
        }
    }
    out
}

/// The baseline: known findings the gate tolerates, keyed by identity with
/// an occurrence count.
#[derive(Debug, Default)]
pub struct Baseline {
    counts: BTreeMap<String, usize>,
}

impl Baseline {
    /// Load a baseline file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Baseline::default());
            }
            Err(e) => return Err(format!("cannot read baseline {}: {e}", path.display())),
        };
        let mut counts = BTreeMap::new();
        // One `"key": count` pair per baselined finding, inside "findings".
        for raw_line in text.lines() {
            let line = raw_line.trim();
            let Some(rest) = line.strip_prefix('"') else {
                continue;
            };
            let Some(end) = find_string_end(rest) else {
                continue;
            };
            let key = unescape(&rest[..end]);
            let after = rest[end + 1..].trim_start();
            let Some(after) = after.strip_prefix(':') else {
                continue;
            };
            let digits: String = after
                .trim_start()
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            if let Ok(count) = digits.parse::<usize>() {
                if key.contains('|') {
                    counts.insert(key, count);
                }
            }
        }
        Ok(Baseline { counts })
    }

    /// Serialize the given findings as a baseline file.
    pub fn render(findings: &[Finding]) -> String {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for f in findings {
            *counts.entry(&f.key).or_insert(0) += 1;
        }
        let mut out = String::new();
        out.push_str("{\n  \"comment\": \"analysis_gate baseline: tolerated findings by stable key; regenerate with --update-baseline\",\n  \"findings\": {\n");
        let total = counts.len();
        for (i, (key, count)) in counts.iter().enumerate() {
            let comma = if i + 1 < total { "," } else { "" };
            let _ = writeln!(out, "    {}: {count}{comma}", json_string(key));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// The baselined count for `key`.
    pub fn allowance(&self, key: &str) -> usize {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Number of distinct baselined keys.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` when nothing is baselined.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

fn find_string_end(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// The outcome of one analysis run, split against the baseline.
#[derive(Debug)]
pub struct Report {
    /// Every finding, in deterministic order.
    pub findings: Vec<Finding>,
    /// Per-finding flag: `true` when absorbed by the baseline.
    pub baselined: Vec<bool>,
}

impl Report {
    /// Split `findings` against `baseline`: each key's first `allowance`
    /// occurrences are baselined, the rest are new.
    pub fn against(mut findings: Vec<Finding>, baseline: &Baseline) -> Report {
        findings.sort_by(|a, b| {
            (&a.file, a.line, a.rule, &a.key).cmp(&(&b.file, b.line, b.rule, &b.key))
        });
        let mut used: BTreeMap<&str, usize> = BTreeMap::new();
        let mut baselined = Vec::with_capacity(findings.len());
        for f in &findings {
            let seen = used.entry(&f.key).or_insert(0);
            *seen += 1;
            baselined.push(*seen <= baseline.allowance(&f.key));
        }
        Report {
            findings,
            baselined,
        }
    }

    /// Findings not absorbed by the baseline.
    pub fn new_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .zip(&self.baselined)
            .filter(|&(_, b)| !b)
            .map(|(f, _)| f)
    }

    /// Count of findings not absorbed by the baseline.
    pub fn new_count(&self) -> usize {
        self.baselined.iter().filter(|b| !**b).count()
    }

    /// Human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let mut by_rule: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
        for (f, &baselined) in self.findings.iter().zip(&self.baselined) {
            let entry = by_rule.entry(f.rule).or_insert((0, 0));
            entry.0 += 1;
            if baselined {
                entry.1 += 1;
            }
        }
        for (f, &baselined) in self.findings.iter().zip(&self.baselined) {
            let status = if baselined { " [baselined]" } else { "" };
            let _ = writeln!(
                out,
                "{}:{}: [{}]{status} {}",
                f.file, f.line, f.rule, f.message
            );
        }
        if !self.findings.is_empty() {
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "analysis_gate: {} finding(s), {} baselined, {} new",
            self.findings.len(),
            self.findings.len() - self.new_count(),
            self.new_count()
        );
        for (rule, (total, baselined)) in &by_rule {
            let _ = writeln!(out, "  {rule}: {total} ({baselined} baselined)");
        }
        out
    }

    /// Machine-readable report.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"tool\": \"analysis_gate\",\n  \"version\": 1,\n");
        let _ = writeln!(
            out,
            "  \"total\": {}, \"baselined\": {}, \"new\": {},",
            self.findings.len(),
            self.findings.len() - self.new_count(),
            self.new_count()
        );
        out.push_str("  \"findings\": [\n");
        let total = self.findings.len();
        for (i, (f, &baselined)) in self.findings.iter().zip(&self.baselined).enumerate() {
            let comma = if i + 1 < total { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"context\": {}, \
                 \"baselined\": {}, \"message\": {}, \"key\": {}}}{comma}",
                json_string(f.rule),
                json_string(&f.file),
                f.line,
                json_string(&f.context),
                baselined,
                json_string(&f.message),
                json_string(&f.key),
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Escape a string for JSON output.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, snippet: &str) -> Finding {
        Finding::new(rule, "a.rs", 3, "f", format!("msg {snippet}"), snippet)
    }

    #[test]
    fn keys_ignore_whitespace_and_line_numbers() {
        let a = Finding::new("r", "a.rs", 3, "f", "m".into(), "x  as   u32");
        let b = Finding::new("r", "a.rs", 99, "f", "m".into(), "x as u32");
        assert_eq!(a.key, b.key);
    }

    #[test]
    fn baseline_round_trips() {
        let findings = vec![
            finding("r", "one"),
            finding("r", "one"),
            finding("r", "two"),
        ];
        let rendered = Baseline::render(&findings);
        let dir = std::env::temp_dir().join("vstore-analysis-baseline-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("baseline.json");
        std::fs::write(&path, &rendered).expect("write baseline");
        let loaded = Baseline::load(&path).expect("load baseline");
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.allowance(&findings[0].key), 2);
        assert_eq!(loaded.allowance(&findings[2].key), 1);
        let report = Report::against(findings, &loaded);
        assert_eq!(report.new_count(), 0);
    }

    #[test]
    fn missing_baseline_is_empty() {
        let loaded = Baseline::load(Path::new("/nonexistent/baseline.json")).expect("empty");
        assert!(loaded.is_empty());
    }

    #[test]
    fn counts_above_allowance_are_new() {
        let findings = vec![finding("r", "one"), finding("r", "one")];
        let rendered = Baseline::render(&findings[..1]);
        let dir = std::env::temp_dir().join("vstore-analysis-baseline-test2");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("baseline.json");
        std::fs::write(&path, &rendered).expect("write baseline");
        let loaded = Baseline::load(&path).expect("load baseline");
        let report = Report::against(findings, &loaded);
        assert_eq!(report.new_count(), 1);
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
