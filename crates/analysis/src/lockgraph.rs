//! The global lock-order graph.
//!
//! Nodes are named locks (`file.rs::Struct.field`); a directed edge `a -> b`
//! records that some function acquired `b` while (heuristically) still
//! holding `a`. A consistent global lock order makes this graph acyclic;
//! any strongly connected component — a 2-cycle `a -> b -> a`, a longer
//! ring, or a self-loop (re-acquiring a lock while it is held) — is a
//! potential deadlock and is reported with every witness site inside the
//! component.

use std::collections::{BTreeMap, BTreeSet};

/// Where an edge was observed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct EdgeSite {
    /// Workspace-relative file of the inner acquisition.
    pub file: String,
    /// 1-based line of the inner acquisition.
    pub line: usize,
    /// The enclosing function, if known.
    pub function: String,
}

/// A directed graph of lock-acquisition ordering, keyed by lock name.
#[derive(Debug, Default)]
pub struct LockGraph {
    edges: BTreeMap<(String, String), Vec<EdgeSite>>,
}

/// One potential deadlock: the locks of a strongly connected component and
/// the witness edges that close it.
#[derive(Debug)]
pub struct Cycle {
    /// The locks in the component, sorted by name.
    pub locks: Vec<String>,
    /// Every `held -> acquired` edge between component members, with its
    /// witness sites.
    pub edges: Vec<(String, String, Vec<EdgeSite>)>,
}

impl LockGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `inner` was acquired at `site` while `outer` was held.
    pub fn add_edge(&mut self, outer: &str, inner: &str, site: EdgeSite) {
        self.edges
            .entry((outer.to_owned(), inner.to_owned()))
            .or_default()
            .push(site);
    }

    /// Number of distinct ordered pairs recorded.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All distinct edges, sorted, with their witness sites.
    pub fn edges(&self) -> impl Iterator<Item = (&str, &str, &[EdgeSite])> {
        self.edges
            .iter()
            .map(|((a, b), sites)| (a.as_str(), b.as_str(), sites.as_slice()))
    }

    /// Find every potential deadlock: strongly connected components with
    /// more than one lock, plus self-loops. Deterministic order.
    pub fn cycles(&self) -> Vec<Cycle> {
        let mut nodes: BTreeSet<&str> = BTreeSet::new();
        for (a, b) in self.edges.keys() {
            nodes.insert(a);
            nodes.insert(b);
        }
        let index_of: BTreeMap<&str, usize> =
            nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let names: Vec<&str> = nodes.into_iter().collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
        for (a, b) in self.edges.keys() {
            if let (Some(&ia), Some(&ib)) = (index_of.get(a.as_str()), index_of.get(b.as_str())) {
                adj[ia].push(ib);
            }
        }

        let mut cycles = Vec::new();
        for component in tarjan_sccs(&adj) {
            let in_component: BTreeSet<usize> = component.iter().copied().collect();
            let is_cycle =
                component.len() > 1 || component.first().is_some_and(|&n| adj[n].contains(&n));
            if !is_cycle {
                continue;
            }
            let locks: Vec<String> = component.iter().map(|&n| names[n].to_owned()).collect();
            let mut edges = Vec::new();
            for ((a, b), sites) in &self.edges {
                let (Some(&ia), Some(&ib)) = (index_of.get(a.as_str()), index_of.get(b.as_str()))
                else {
                    continue;
                };
                if in_component.contains(&ia) && in_component.contains(&ib) {
                    let mut sites = sites.clone();
                    sites.sort();
                    sites.dedup();
                    edges.push((a.clone(), b.clone(), sites));
                }
            }
            cycles.push(Cycle { locks, edges });
        }
        cycles.sort_by(|a, b| a.locks.cmp(&b.locks));
        cycles
    }
}

/// Iterative Tarjan strongly-connected components. Returns each component
/// as a sorted list of node indices, components sorted by smallest member.
fn tarjan_sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone)]
    struct NodeState {
        index: Option<usize>,
        lowlink: usize,
        on_stack: bool,
    }
    let n = adj.len();
    let mut state = vec![
        NodeState {
            index: None,
            lowlink: 0,
            on_stack: false,
        };
        n
    ];
    let mut next_index = 0usize;
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    for start in 0..n {
        if state[start].index.is_some() {
            continue;
        }
        // Explicit DFS frames: (node, next child position).
        let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
        state[start].index = Some(next_index);
        state[start].lowlink = next_index;
        state[start].on_stack = true;
        stack.push(start);
        next_index += 1;

        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if state[w].index.is_none() {
                    state[w].index = Some(next_index);
                    state[w].lowlink = next_index;
                    state[w].on_stack = true;
                    stack.push(w);
                    next_index += 1;
                    frames.push((w, 0));
                } else if state[w].on_stack {
                    state[v].lowlink = state[v].lowlink.min(state[w].index.unwrap_or(0));
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    state[parent].lowlink = state[parent].lowlink.min(state[v].lowlink);
                }
                if state[v].index == Some(state[v].lowlink) {
                    let mut component = Vec::new();
                    while let Some(w) = stack.pop() {
                        state[w].on_stack = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    sccs.push(component);
                }
            }
        }
    }
    sccs.sort_by_key(|c| c.first().copied());
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(line: usize) -> EdgeSite {
        EdgeSite {
            file: "x.rs".into(),
            line,
            function: "f".into(),
        }
    }

    #[test]
    fn two_cycle_is_reported() {
        let mut g = LockGraph::new();
        g.add_edge("a", "b", site(1));
        g.add_edge("b", "a", site(2));
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].locks, vec!["a".to_owned(), "b".to_owned()]);
        assert_eq!(cycles[0].edges.len(), 2);
    }

    #[test]
    fn three_cycle_is_reported() {
        let mut g = LockGraph::new();
        g.add_edge("a", "b", site(1));
        g.add_edge("b", "c", site(2));
        g.add_edge("c", "a", site(3));
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(
            cycles[0].locks,
            vec!["a".to_owned(), "b".to_owned(), "c".to_owned()]
        );
    }

    #[test]
    fn diamond_with_consistent_order_is_not_reported() {
        // a -> b -> d and a -> c -> d: two paths, one consistent order, no
        // cycle — the detector must stay silent.
        let mut g = LockGraph::new();
        g.add_edge("a", "b", site(1));
        g.add_edge("a", "c", site(2));
        g.add_edge("b", "d", site(3));
        g.add_edge("c", "d", site(4));
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn self_loop_is_reported() {
        let mut g = LockGraph::new();
        g.add_edge("a", "a", site(1));
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].locks, vec!["a".to_owned()]);
    }

    #[test]
    fn disjoint_chains_are_not_reported() {
        let mut g = LockGraph::new();
        g.add_edge("a", "b", site(1));
        g.add_edge("c", "d", site(2));
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn cycle_plus_tail_reports_only_the_cycle() {
        let mut g = LockGraph::new();
        g.add_edge("a", "b", site(1));
        g.add_edge("b", "a", site(2));
        g.add_edge("b", "c", site(3));
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].locks, vec!["a".to_owned(), "b".to_owned()]);
    }
}
