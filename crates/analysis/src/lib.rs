//! `vstore-analysis` — project-invariant static analysis for the VStore
//! workspace, exposed in CI as the `analysis_gate` binary.
//!
//! PRs 1–8 grew VStore into a sharded, cached, tiered, network-served
//! store whose correctness rests on a handful of cross-cutting invariants:
//!
//! - all disk I/O flows through the `StorageBackend` seam
//!   ([`rules::BACKEND_SEAM`]),
//! - integer narrowing on storage/codec/serve paths goes through
//!   `vstore_types::cast` ([`rules::CHECKED_CAST`]),
//! - core library code returns typed errors instead of panicking
//!   ([`rules::NO_UNWRAP`]),
//! - every queue is a `vstore_sim::BoundedQueue` ([`rules::BOUNDED_QUEUE`]),
//! - the serve wire codec's encode/decode arms and version range stay in
//!   lockstep ([`rules::WIRE_COMPAT`]),
//! - and locks across the shard/cache/tier/net layers are acquired in a
//!   consistent global order ([`rules::LOCK_ORDER`] — the headline
//!   analysis: per-function lock-acquisition sequences feed a global lock
//!   graph whose cycles are potential deadlocks).
//!
//! The pass is a small line/token scanner ([`scan`]) — module-structure
//! and `#[cfg(test)]`/`mod tests` aware, so test code is scoped correctly
//! — feeding the rules ([`rules`]). Findings ([`report`]) are suppressible
//! per site with `// vstore-lint: allow(rule)` comments and per repo via a
//! checked-in baseline (`analysis_baseline.json`), so the gate lands
//! strict without blocking on a full cleanup. Like `bench_gate`, the crate
//! is std-only and dependency-free: it must build before — and regardless
//! of — everything it checks.

pub mod lockgraph;
pub mod report;
pub mod rules;
pub mod scan;

use report::Finding;
use scan::SourceFile;
use std::path::{Path, PathBuf};

/// The default baseline file name, resolved against the workspace root.
pub const BASELINE_FILE: &str = "analysis_baseline.json";

/// Collect the workspace's library sources: `src/` of the facade and
/// `crates/*/src/` of every member crate, sorted for determinism.
/// `third_party/` stubs, `target/`, tests, benches, and fixtures are out
/// of scope by construction (they are not under a scanned root).
pub fn collect_workspace_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::new();
    let facade = root.join("src");
    if facade.is_dir() {
        collect_rs(&facade, root, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)
            .map_err(|e| format!("cannot list {}: {e}", crates.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                collect_rs(&src, root, &mut files)?;
            }
        }
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(files)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot list {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            out.push((rel, text));
        }
    }
    Ok(())
}

/// Parse the given `(path, contents)` pairs and run every rule.
pub fn analyze_sources(sources: &[(String, String)]) -> Vec<Finding> {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(path, text)| SourceFile::parse(path, text))
        .collect();
    rules::run_all(&files)
}

/// Analyze the workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let sources = collect_workspace_sources(root)?;
    Ok(analyze_sources(&sources))
}
