// True positive: binding the span guard to `_` drops it on the same
// statement, so the span records a zero-length interval instead of the
// region it was meant to time.
pub fn traced_fetch(trace: &TraceContext) {
    let _ = trace.span("read.disk");
    fetch();
}

pub fn traced_stage(trace: &TraceContext) {
    let _ = trace.span_with("query.stage", || "diff".to_owned());
    run_stage();
}
