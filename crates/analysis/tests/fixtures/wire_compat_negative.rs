// True negative: every variant has an encode and a decode arm, and the
// decoder accepts the whole supported version range.
pub const WIRE_VERSION: u8 = 2;
pub const MIN_WIRE_VERSION: u8 = 1;

pub enum ServeRequest {
    Ping,
    Status,
}

impl ServeRequest {
    pub fn write_wire(&self, out: &mut Vec<u8>) {
        match self {
            ServeRequest::Ping => out.push(0),
            ServeRequest::Status => out.push(1),
        }
    }

    pub fn from_wire(version: u8, bytes: &[u8]) -> Option<ServeRequest> {
        if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
            return None;
        }
        match bytes.first()? {
            0 => Some(ServeRequest::Ping),
            1 => Some(ServeRequest::Status),
            _ => None,
        }
    }
}
