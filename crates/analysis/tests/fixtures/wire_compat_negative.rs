// True negative: every variant has an encode and a decode arm, and the
// decoder accepts the whole supported version range. Mirrors the real
// wire's v5 shape: older tag-only variants plus newer payload-carrying
// observability variants, all in lockstep.
pub const WIRE_VERSION: u8 = 5;
pub const MIN_WIRE_VERSION: u8 = 3;

pub enum ServeRequest {
    Ping,
    Status,
    MetricsSnapshot,
    TraceDump { max_traces: u64 },
}

impl ServeRequest {
    pub fn write_wire(&self, out: &mut Vec<u8>) {
        match self {
            ServeRequest::Ping => out.push(0),
            ServeRequest::Status => out.push(1),
            ServeRequest::MetricsSnapshot => out.push(2),
            ServeRequest::TraceDump { max_traces } => {
                out.push(3);
                out.extend_from_slice(&max_traces.to_le_bytes());
            }
        }
    }

    pub fn from_wire(version: u8, bytes: &[u8]) -> Option<ServeRequest> {
        if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
            return None;
        }
        match bytes.first()? {
            0 => Some(ServeRequest::Ping),
            1 => Some(ServeRequest::Status),
            2 => Some(ServeRequest::MetricsSnapshot),
            3 => Some(ServeRequest::TraceDump {
                max_traces: u64::from_le_bytes(bytes.get(1..9)?.try_into().ok()?),
            }),
            _ => None,
        }
    }
}
