// True negative: a Mutex around a Vec (a pool, not a queue) does not
// trip the rule; neither does naming the bounded queue type.
use std::sync::Mutex;

pub struct BufferPool {
    bufs: Mutex<Vec<Vec<u8>>>,
}

impl BufferPool {
    pub fn give(&self, buf: Vec<u8>) {
        self.bufs.lock().unwrap_or_else(|e| e.into_inner()).push(buf);
    }
}
