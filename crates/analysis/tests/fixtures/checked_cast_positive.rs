// True positive: a narrowing `as` cast on a codec path.
pub fn truncate_length(len: u64) -> u32 {
    len as u32
}
