// True negative: std::fs confined to a test module, where scratch
// directories are fair game.
pub fn checksum(bytes: &[u8]) -> u64 {
    bytes.iter().map(|&b| u64::from(b)).sum()
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_files_are_fine_in_tests() {
        let dir = std::env::temp_dir();
        let _ = std::fs::read_dir(dir);
    }
}
