// True positive: `Status` has an encode arm but no decode arm, and the
// decoder never checks the supported version range.
pub enum ServeRequest {
    Ping,
    Status,
}

impl ServeRequest {
    pub fn write_wire(&self, out: &mut Vec<u8>) {
        match self {
            ServeRequest::Ping => out.push(0),
            ServeRequest::Status => out.push(1),
        }
    }

    pub fn from_wire(bytes: &[u8]) -> Option<ServeRequest> {
        match bytes.first()? {
            0 => Some(ServeRequest::Ping),
            _ => None,
        }
    }
}
