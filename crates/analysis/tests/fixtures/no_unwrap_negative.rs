// True negative: typed errors in library code, an allowed invariant
// expect, and unwraps confined to tests.
pub fn first_byte(bytes: &[u8]) -> Option<u8> {
    bytes.first().copied()
}

pub fn always_first(bytes: &[u8]) -> u8 {
    *bytes.first().expect("caller checked non-empty") // vstore-lint: allow(no-unwrap)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::first_byte(&[7]).unwrap(), 7);
    }
}
