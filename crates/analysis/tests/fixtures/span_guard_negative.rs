// True negative: named guards live to the end of their scope; `_`
// bindings of non-span values are fine, as are allowed sites and tests.
pub fn traced_fetch(trace: &TraceContext) {
    let _span = trace.span("read.disk");
    fetch();
}

pub fn traced_stage(trace: &TraceContext) {
    let _stage = trace.span_with("query.stage", || "diff".to_owned());
    run_stage();
}

pub fn not_a_span(trace: &TraceContext) {
    let _ = trace.trace_id();
}

pub fn deliberately_instant(trace: &TraceContext) {
    let _ = trace.span("probe.marker"); // vstore-lint: allow(span-guard) — instant marker span
}

#[cfg(test)]
mod tests {
    #[test]
    fn unnamed_guards_in_tests_are_fine() {
        let trace = super::test_trace();
        let _ = trace.span("anything");
    }
}
