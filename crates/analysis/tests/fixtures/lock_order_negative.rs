// True negative: both paths acquire alpha before beta — a consistent
// global order, so the graph has edges but no cycle. `disjoint` drops its
// first guard before taking the second, contributing no edge at all.
use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    pub fn sum(&self) -> u32 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *a + *b
    }

    pub fn difference(&self) -> u32 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *a - *b
    }

    pub fn disjoint(&self) -> u32 {
        let first = {
            let b = self.beta.lock();
            *b
        };
        let a = self.alpha.lock();
        *a + first
    }
}
