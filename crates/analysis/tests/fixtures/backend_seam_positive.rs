// True positive: raw std::fs in non-test storage code outside backend.rs.
pub fn side_channel_read(path: &std::path::Path) -> std::io::Result<Vec<u8>> {
    std::fs::read(path)
}
