// True positive: `forward` acquires alpha then beta, `backward` acquires
// beta then alpha — a 2-cycle in the lock graph.
use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *a + *b
    }

    pub fn backward(&self) -> u32 {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        *a - *b
    }
}
