// True positive: unwrap in non-test library code of a core crate.
pub fn first_byte(bytes: &[u8]) -> u8 {
    *bytes.first().unwrap()
}
