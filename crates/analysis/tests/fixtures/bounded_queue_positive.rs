// True positive: a hand-rolled unbounded queue behind a Mutex.
use std::collections::VecDeque;
use std::sync::Mutex;

pub struct Backlog {
    items: Mutex<VecDeque<u64>>,
}

impl Backlog {
    pub fn push(&self, item: u64) {
        self.items.lock().unwrap_or_else(|e| e.into_inner()).push_back(item);
    }
}
