// True negative: widening casts, an allowed site, and a narrowing cast in
// test code are all fine.
pub fn widen(len: u32) -> u64 {
    len as u64
}

pub fn masked_tag(v: u64) -> u8 {
    (v & 0x7F) as u8 // vstore-lint: allow(checked-cast) — masked to 7 bits
}

#[cfg(test)]
mod tests {
    #[test]
    fn narrowing_in_tests_is_fine() {
        let big: u64 = 300;
        assert_eq!(big as u8, 44);
    }
}
