//! Fixture-driven rule tests: every rule must fire on its true-positive
//! fixture and stay silent on its true-negative one, plus a live check
//! that the real workspace is clean (zero unbaselined findings, zero
//! lock-order cycles).

use vstore_analysis::scan::SourceFile;
use vstore_analysis::{analyze_sources, rules};

/// Analyze one fixture under a virtual workspace path.
fn findings_for(virtual_path: &str, fixture: &str) -> Vec<vstore_analysis::report::Finding> {
    analyze_sources(&[(virtual_path.to_owned(), fixture.to_owned())])
}

fn rules_fired(findings: &[vstore_analysis::report::Finding]) -> Vec<&str> {
    let mut names: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    names.sort_unstable();
    names.dedup();
    names
}

#[test]
fn lock_order_fires_on_inverted_acquisitions() {
    let findings = findings_for(
        "crates/storage/src/fixture.rs",
        include_str!("fixtures/lock_order_positive.rs"),
    );
    assert_eq!(rules_fired(&findings), [rules::LOCK_ORDER]);
    assert!(
        findings[0].message.contains("cycle"),
        "{}",
        findings[0].message
    );
}

#[test]
fn lock_order_accepts_a_consistent_global_order() {
    let sources = [(
        "crates/storage/src/fixture.rs".to_owned(),
        include_str!("fixtures/lock_order_negative.rs").to_owned(),
    )];
    assert!(analyze_sources(&sources).is_empty());
    // The consistent order still shows up as edges — the graph sees the
    // nesting, it just has no cycle.
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(p, t)| SourceFile::parse(p, t))
        .collect();
    let graph = rules::build_lock_graph(&files);
    assert!(graph.edges().count() > 0);
    assert!(graph.cycles().is_empty());
}

#[test]
fn backend_seam_fires_outside_the_backend() {
    let findings = findings_for(
        "crates/storage/src/fixture.rs",
        include_str!("fixtures/backend_seam_positive.rs"),
    );
    assert_eq!(rules_fired(&findings), [rules::BACKEND_SEAM]);
}

#[test]
fn backend_seam_is_silent_inside_the_seam_and_tests() {
    let fixture = include_str!("fixtures/backend_seam_negative.rs");
    assert!(findings_for("crates/storage/src/fixture.rs", fixture).is_empty());
    // The same raw std::fs is fine inside the exempted backend file.
    let positive = include_str!("fixtures/backend_seam_positive.rs");
    assert!(findings_for("crates/storage/src/backend.rs", positive).is_empty());
    assert!(findings_for("crates/storage/src/tier/cold.rs", positive).is_empty());
}

#[test]
fn checked_cast_fires_on_narrowing_casts() {
    let findings = findings_for(
        "crates/codec/src/fixture.rs",
        include_str!("fixtures/checked_cast_positive.rs"),
    );
    assert_eq!(rules_fired(&findings), [rules::CHECKED_CAST]);
}

#[test]
fn checked_cast_is_silent_on_widening_allowed_and_test_casts() {
    let fixture = include_str!("fixtures/checked_cast_negative.rs");
    assert!(findings_for("crates/codec/src/fixture.rs", fixture).is_empty());
    // Out of scope: the same narrowing cast in a crate the rule
    // does not cover.
    let positive = include_str!("fixtures/checked_cast_positive.rs");
    assert!(findings_for("crates/profiler/src/fixture.rs", positive).is_empty());
}

#[test]
fn no_unwrap_fires_on_library_unwrap() {
    let findings = findings_for(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/no_unwrap_positive.rs"),
    );
    assert_eq!(rules_fired(&findings), [rules::NO_UNWRAP]);
}

#[test]
fn no_unwrap_is_silent_on_typed_errors_allows_and_tests() {
    let fixture = include_str!("fixtures/no_unwrap_negative.rs");
    assert!(findings_for("crates/core/src/fixture.rs", fixture).is_empty());
}

#[test]
fn bounded_queue_fires_on_raw_mutexed_vecdeque() {
    let findings = findings_for(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/bounded_queue_positive.rs"),
    );
    assert_eq!(rules_fired(&findings), [rules::BOUNDED_QUEUE]);
}

#[test]
fn bounded_queue_is_silent_on_pools_and_the_sim_home() {
    let fixture = include_str!("fixtures/bounded_queue_negative.rs");
    assert!(findings_for("crates/serve/src/fixture.rs", fixture).is_empty());
    // The one sanctioned home for the pattern is vstore_sim itself.
    let positive = include_str!("fixtures/bounded_queue_positive.rs");
    assert!(findings_for("crates/sim/src/fixture.rs", positive).is_empty());
}

#[test]
fn wire_compat_fires_on_missing_arm_and_missing_range_check() {
    let findings = findings_for(
        "crates/serve/src/wire.rs",
        include_str!("fixtures/wire_compat_positive.rs"),
    );
    assert_eq!(rules_fired(&findings), [rules::WIRE_COMPAT]);
    assert!(
        findings.iter().any(|f| f.message.contains("from_wire")),
        "missing decode arm not reported: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("MIN_WIRE_VERSION")),
        "missing range check not reported: {findings:?}"
    );
}

#[test]
fn wire_compat_is_silent_on_lockstep_arms() {
    let fixture = include_str!("fixtures/wire_compat_negative.rs");
    assert!(findings_for("crates/serve/src/wire.rs", fixture).is_empty());
    // The same incomplete codec outside the serve wire module is not this
    // rule's business.
    let positive = include_str!("fixtures/wire_compat_positive.rs");
    assert!(findings_for("crates/ops/src/wire.rs", positive).is_empty());
}

#[test]
fn span_guard_fires_on_immediately_dropped_guards() {
    let findings = findings_for(
        "crates/query/src/fixture.rs",
        include_str!("fixtures/span_guard_positive.rs"),
    );
    assert_eq!(rules_fired(&findings), [rules::SPAN_GUARD]);
    // Both the `.span(` and `.span_with(` forms are caught.
    assert_eq!(findings.len(), 2, "{findings:?}");
}

#[test]
fn span_guard_is_silent_on_named_guards_allows_and_tests() {
    let fixture = include_str!("fixtures/span_guard_negative.rs");
    assert!(findings_for("crates/query/src/fixture.rs", fixture).is_empty());
}

#[test]
fn the_workspace_itself_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let sources = vstore_analysis::collect_workspace_sources(&root).unwrap();
    assert!(!sources.is_empty(), "workspace sources not found");
    let findings = analyze_sources(&sources);
    let baseline =
        vstore_analysis::report::Baseline::load(&root.join(vstore_analysis::BASELINE_FILE))
            .unwrap();
    let report = vstore_analysis::report::Report::against(findings, &baseline);
    assert_eq!(
        report.new_count(),
        0,
        "unbaselined findings:\n{}",
        report.to_text()
    );
}

#[test]
fn the_workspace_lock_graph_is_acyclic() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let sources = vstore_analysis::collect_workspace_sources(&root).unwrap();
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(p, t)| SourceFile::parse(p, t))
        .collect();
    let graph = rules::build_lock_graph(&files);
    assert!(
        graph.cycles().is_empty(),
        "lock-order cycles: {:?}",
        graph.cycles()
    );
}
