//! The block plane: a coarse luma raster, one sample per 8×8-pixel block.
//!
//! A 720p frame maps to a 160×90 grid (14 400 samples). The plane is the
//! "pixel data" of the synthetic substrate: the codec compresses it, fidelity
//! degradation (resize/crop) transforms it, and pixel-level operators
//! (Diff, Motion, Contour, Opflow) compute over it.

use serde::{Deserialize, Serialize};
use vstore_types::{CropFactor, Resolution};

/// Pixels per block along each axis.
pub const BLOCK_PIXELS: u32 = 8;

/// A coarse luma raster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockPlane {
    width: u32,
    height: u32,
    samples: Vec<u8>,
}

impl BlockPlane {
    /// Create a plane filled with a constant value.
    pub fn filled(width: u32, height: u32, value: u8) -> Self {
        BlockPlane {
            width,
            height,
            samples: vec![value; (width * height) as usize],
        }
    }

    /// Create a plane from raw samples (row-major). Returns `None` when the
    /// sample count does not match the dimensions.
    pub fn from_samples(width: u32, height: u32, samples: Vec<u8>) -> Option<Self> {
        if samples.len() == (width as usize) * (height as usize) {
            Some(BlockPlane {
                width,
                height,
                samples,
            })
        } else {
            None
        }
    }

    /// The plane dimensions for a full (uncropped) frame at a resolution.
    pub fn dimensions_for(resolution: Resolution) -> (u32, u32) {
        let w = resolution.width().div_ceil(BLOCK_PIXELS);
        let h = resolution.height().div_ceil(BLOCK_PIXELS);
        (w.max(1), h.max(1))
    }

    /// Width in blocks.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in blocks.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the plane holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Raw samples, row-major.
    pub fn samples(&self) -> &[u8] {
        &self.samples
    }

    /// Mutable raw samples, row-major.
    pub fn samples_mut(&mut self) -> &mut [u8] {
        &mut self.samples
    }

    /// Sample at `(x, y)`, clamped to the plane bounds.
    pub fn get(&self, x: u32, y: u32) -> u8 {
        let x = x.min(self.width.saturating_sub(1));
        let y = y.min(self.height.saturating_sub(1));
        self.samples[(y * self.width + x) as usize]
    }

    /// Set the sample at `(x, y)`; out-of-bounds writes are ignored.
    pub fn set(&mut self, x: u32, y: u32, value: u8) {
        if x < self.width && y < self.height {
            self.samples[(y * self.width + x) as usize] = value;
        }
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&s| f64::from(s)).sum::<f64>() / self.samples.len() as f64
    }

    /// Mean absolute difference against another plane of the same
    /// dimensions; planes of different dimensions compare as fully different
    /// (255).
    pub fn mean_abs_diff(&self, other: &BlockPlane) -> f64 {
        if self.width != other.width || self.height != other.height || self.samples.is_empty() {
            return 255.0;
        }
        let total: u64 = self
            .samples
            .iter()
            .zip(other.samples.iter())
            .map(|(&a, &b)| u64::from(a.abs_diff(b)))
            .sum();
        total as f64 / self.samples.len() as f64
    }

    /// Mean absolute horizontal gradient — a cheap texture/edge-energy
    /// statistic used by the Contour operator and by content generation
    /// tests.
    pub fn gradient_energy(&self) -> f64 {
        if self.width < 2 || self.height == 0 {
            return 0.0;
        }
        let mut total = 0u64;
        let mut count = 0u64;
        for y in 0..self.height {
            for x in 1..self.width {
                total += u64::from(self.get(x, y).abs_diff(self.get(x - 1, y)));
                count += 1;
            }
        }
        total as f64 / count.max(1) as f64
    }

    /// Resample to new dimensions with box averaging (down) or nearest
    /// neighbour (up). Used to degrade resolution.
    pub fn resize(&self, new_width: u32, new_height: u32) -> BlockPlane {
        let new_width = new_width.max(1);
        let new_height = new_height.max(1);
        if new_width == self.width && new_height == self.height {
            return self.clone();
        }
        let mut out = Vec::with_capacity((new_width * new_height) as usize);
        for ny in 0..new_height {
            for nx in 0..new_width {
                // Source rectangle covered by this destination sample.
                let x0 = (nx as u64 * self.width as u64) / new_width as u64;
                let x1 = (((nx + 1) as u64 * self.width as u64) / new_width as u64).max(x0 + 1);
                let y0 = (ny as u64 * self.height as u64) / new_height as u64;
                let y1 = (((ny + 1) as u64 * self.height as u64) / new_height as u64).max(y0 + 1);
                let mut sum = 0u64;
                let mut n = 0u64;
                for y in y0..y1.min(self.height as u64) {
                    for x in x0..x1.min(self.width as u64) {
                        sum += u64::from(self.samples[(y * self.width as u64 + x) as usize]);
                        n += 1;
                    }
                }
                out.push(sum.checked_div(n).unwrap_or(0) as u8);
            }
        }
        BlockPlane {
            width: new_width,
            height: new_height,
            samples: out,
        }
    }

    /// Resize to the block dimensions of a target resolution.
    pub fn resize_to_resolution(&self, resolution: Resolution) -> BlockPlane {
        let (w, h) = BlockPlane::dimensions_for(resolution);
        self.resize(w, h)
    }

    /// Keep only the centred fraction of the frame area given by the crop
    /// factor.
    pub fn crop_center(&self, crop: CropFactor) -> BlockPlane {
        if crop == CropFactor::C100 {
            return self.clone();
        }
        let keep = crop.linear_fraction();
        let new_w = ((f64::from(self.width) * keep).round() as u32).clamp(1, self.width);
        let new_h = ((f64::from(self.height) * keep).round() as u32).clamp(1, self.height);
        let x0 = (self.width - new_w) / 2;
        let y0 = (self.height - new_h) / 2;
        let mut out = Vec::with_capacity((new_w * new_h) as usize);
        for y in y0..y0 + new_h {
            for x in x0..x0 + new_w {
                out.push(self.get(x, y));
            }
        }
        BlockPlane {
            width: new_w,
            height: new_h,
            samples: out,
        }
    }

    /// Apply quantisation noise equivalent to the given signal retention
    /// factor in `(0, 1]`: samples are quantised more coarsely as retention
    /// drops. Models the quality knob's effect on pixel data.
    pub fn quantize(&self, signal_retention: f64) -> BlockPlane {
        let retention = signal_retention.clamp(0.05, 1.0);
        if retention >= 0.999 {
            return self.clone();
        }
        // Step size grows as retention shrinks: retention 1.0 → step 1 (no
        // loss), retention 0.35 → step ≈ 42.
        let step = ((1.0 - retention) * 64.0).max(1.0);
        let samples = self
            .samples
            .iter()
            .map(|&s| {
                let q = (f64::from(s) / step).round() * step;
                q.clamp(0.0, 255.0) as u8
            })
            .collect();
        BlockPlane {
            width: self.width,
            height: self.height,
            samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstore_types::ImageQuality;

    fn gradient_plane(w: u32, h: u32) -> BlockPlane {
        let mut p = BlockPlane::filled(w, h, 0);
        for y in 0..h {
            for x in 0..w {
                p.set(x, y, ((x * 255) / w.max(1)) as u8);
            }
        }
        p
    }

    #[test]
    fn dimensions_for_720p_is_160x90() {
        assert_eq!(BlockPlane::dimensions_for(Resolution::R720), (160, 90));
        assert_eq!(BlockPlane::dimensions_for(Resolution::R60), (8, 8));
    }

    #[test]
    fn from_samples_validates_length() {
        assert!(BlockPlane::from_samples(4, 4, vec![0; 16]).is_some());
        assert!(BlockPlane::from_samples(4, 4, vec![0; 15]).is_none());
    }

    #[test]
    fn get_set_round_trip_and_clamping() {
        let mut p = BlockPlane::filled(10, 5, 7);
        p.set(3, 2, 200);
        assert_eq!(p.get(3, 2), 200);
        // Out-of-bounds reads clamp, writes are ignored.
        assert_eq!(p.get(100, 100), p.get(9, 4));
        p.set(100, 100, 1);
        assert_eq!(p.len(), 50);
    }

    #[test]
    fn resize_preserves_mean_roughly() {
        let p = gradient_plane(160, 90);
        let small = p.resize(40, 22);
        assert_eq!(small.width(), 40);
        assert_eq!(small.height(), 22);
        assert!((small.mean() - p.mean()).abs() < 8.0);
        // Upscale back: still similar mean.
        let back = small.resize(160, 90);
        assert!((back.mean() - p.mean()).abs() < 8.0);
    }

    #[test]
    fn crop_center_reduces_area_by_crop_fraction() {
        let p = gradient_plane(160, 90);
        let cropped = p.crop_center(CropFactor::C50);
        let area_ratio = (cropped.len() as f64) / (p.len() as f64);
        assert!((area_ratio - 0.5).abs() < 0.05, "area ratio {area_ratio}");
        assert_eq!(p.crop_center(CropFactor::C100), p);
    }

    #[test]
    fn quantize_coarsens_with_lower_quality() {
        let p = gradient_plane(160, 90);
        let best = p.quantize(ImageQuality::Best.signal_retention());
        let worst = p.quantize(ImageQuality::Worst.signal_retention());
        assert_eq!(best, p);
        assert!(worst.mean_abs_diff(&p) > best.mean_abs_diff(&p));
        // Quantisation keeps samples roughly in place.
        assert!(worst.mean_abs_diff(&p) < 32.0);
    }

    #[test]
    fn mean_abs_diff_of_mismatched_planes_is_max() {
        let a = BlockPlane::filled(4, 4, 0);
        let b = BlockPlane::filled(5, 4, 0);
        assert_eq!(a.mean_abs_diff(&b), 255.0);
        assert_eq!(a.mean_abs_diff(&a), 0.0);
    }

    #[test]
    fn gradient_energy_detects_texture() {
        let flat = BlockPlane::filled(32, 32, 128);
        let textured = gradient_plane(32, 32);
        assert!(textured.gradient_energy() > flat.gradient_energy());
        assert_eq!(flat.gradient_energy(), 0.0);
    }
}
