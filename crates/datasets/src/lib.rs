//! # vstore-datasets
//!
//! Synthetic video sources that stand in for the six benchmark videos of the
//! paper (`jackson`, `miami`, `tucson`, `dashcam`, `park`, `airport`).
//!
//! Real camera footage is unavailable in this environment, so each dataset is
//! replaced by a deterministic scene generator that reproduces the *content
//! characteristics* the paper's trade-offs depend on:
//!
//! * **motion intensity** — dash-cam video has global motion that makes
//!   coding less effective (§6.2 notes dashcam storage is ~2.6 TB/day under
//!   N→N), surveillance video is mostly static;
//! * **object density and size** — how many vehicles/pedestrians appear and
//!   how large they are, which drives operator accuracy as fidelity drops;
//! * **plate/colour attributes** — needed by the License, OCR and Color
//!   operators;
//! * **texture** — background complexity, which drives encoded size.
//!
//! Frames carry a coarse *block plane* (one sample per 8×8-pixel block at
//! 720p, i.e. a 160×90 grid) plus exact object ground truth. The block plane
//! is what the `vstore-codec` crate actually compresses and what pixel-level
//! operators (Diff, Motion, Contour, Opflow) actually process; object-level
//! operators use the ground-truth boxes through a fidelity-dependent
//! detection model. See `DESIGN.md` for the substitution rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod live;
pub mod plane;
pub mod profile;
pub mod scene;
pub mod source;

pub use live::{LiveSource, LoadProfile};
pub use plane::BlockPlane;
pub use profile::{Dataset, DatasetProfile};
pub use scene::{BoundingBox, ObjectClass, ObjectColor, PlateText, SceneFrame, SceneObject};
pub use source::{FrameCursor, VideoSource, FRAME_RATE, SEGMENT_FRAMES, SEGMENT_SECONDS};
