//! Content profiles of the six benchmark datasets (§6.1 of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The six videos used in the paper's evaluation plus a synthetic custom
/// profile for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dataset {
    /// Surveillance camera at Jackson Town Square (moderate traffic).
    Jackson,
    /// Surveillance camera at a Miami Beach crosswalk (busy, pedestrians).
    Miami,
    /// Surveillance camera at Tucson 4th Avenue (light traffic).
    Tucson,
    /// Dash camera driving through a parking lot (high global motion).
    Dashcam,
    /// Stationary surveillance camera in a parking lot (near-static).
    Park,
    /// Surveillance camera at an airport parking lot (light activity).
    Airport,
}

impl Dataset {
    /// All six datasets in the order the paper lists them.
    pub const ALL: [Dataset; 6] = [
        Dataset::Jackson,
        Dataset::Miami,
        Dataset::Tucson,
        Dataset::Dashcam,
        Dataset::Park,
        Dataset::Airport,
    ];

    /// Datasets evaluated with query A (Diff + S-NN + NN) in §6.1.
    pub const QUERY_A: [Dataset; 3] = [Dataset::Jackson, Dataset::Miami, Dataset::Tucson];

    /// Datasets evaluated with query B (Motion + License + OCR) in §6.1.
    pub const QUERY_B: [Dataset; 3] = [Dataset::Dashcam, Dataset::Park, Dataset::Airport];

    /// Dataset name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Jackson => "jackson",
            Dataset::Miami => "miami",
            Dataset::Tucson => "tucson",
            Dataset::Dashcam => "dashcam",
            Dataset::Park => "park",
            Dataset::Airport => "airport",
        }
    }

    /// The content profile of this dataset.
    pub fn profile(&self) -> DatasetProfile {
        match self {
            Dataset::Jackson => DatasetProfile {
                seed: 0xA11CE | 1,
                motion_intensity: 0.30,
                object_arrivals_per_minute: 22.0,
                mean_object_height: 0.16,
                object_height_spread: 0.08,
                vehicle_fraction: 0.75,
                plate_visible_fraction: 0.55,
                background_texture: 0.35,
                mean_dwell_seconds: 6.0,
            },
            Dataset::Miami => DatasetProfile {
                seed: 0xB0B_CAFE,
                motion_intensity: 0.45,
                object_arrivals_per_minute: 40.0,
                mean_object_height: 0.13,
                object_height_spread: 0.07,
                vehicle_fraction: 0.45,
                plate_visible_fraction: 0.40,
                background_texture: 0.45,
                mean_dwell_seconds: 8.0,
            },
            Dataset::Tucson => DatasetProfile {
                seed: 0x7C_50AA,
                motion_intensity: 0.35,
                object_arrivals_per_minute: 14.0,
                mean_object_height: 0.18,
                object_height_spread: 0.09,
                vehicle_fraction: 0.80,
                plate_visible_fraction: 0.60,
                background_texture: 0.30,
                mean_dwell_seconds: 5.0,
            },
            Dataset::Dashcam => DatasetProfile {
                seed: 0xDA5CA4,
                motion_intensity: 0.85,
                object_arrivals_per_minute: 26.0,
                mean_object_height: 0.22,
                object_height_spread: 0.12,
                vehicle_fraction: 0.85,
                plate_visible_fraction: 0.70,
                background_texture: 0.60,
                mean_dwell_seconds: 4.0,
            },
            Dataset::Park => DatasetProfile {
                seed: 0x9A4F,
                motion_intensity: 0.12,
                object_arrivals_per_minute: 6.0,
                mean_object_height: 0.20,
                object_height_spread: 0.10,
                vehicle_fraction: 0.70,
                plate_visible_fraction: 0.65,
                background_texture: 0.25,
                mean_dwell_seconds: 12.0,
            },
            Dataset::Airport => DatasetProfile {
                seed: 0xA1490,
                motion_intensity: 0.18,
                object_arrivals_per_minute: 10.0,
                mean_object_height: 0.15,
                object_height_spread: 0.07,
                vehicle_fraction: 0.65,
                plate_visible_fraction: 0.50,
                background_texture: 0.28,
                mean_dwell_seconds: 9.0,
            },
        }
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Content parameters of one synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Seed for the deterministic generator.
    pub seed: u64,
    /// Camera / scene motion intensity in `[0, 1]` (dash-cam ≈ 0.85, static
    /// parking lot ≈ 0.1). Drives coding efficiency.
    pub motion_intensity: f64,
    /// Mean number of new objects entering the scene per minute.
    pub object_arrivals_per_minute: f64,
    /// Mean object height as a fraction of the frame height.
    pub mean_object_height: f64,
    /// Spread (uniform half-width) of object heights.
    pub object_height_spread: f64,
    /// Fraction of objects that are vehicles (vs. pedestrians/cyclists).
    pub vehicle_fraction: f64,
    /// Fraction of vehicles whose plate faces the camera.
    pub plate_visible_fraction: f64,
    /// Background texture energy in `[0, 1]`.
    pub background_texture: f64,
    /// Mean time an object stays in the scene, in seconds.
    pub mean_dwell_seconds: f64,
}

impl DatasetProfile {
    /// A small synthetic profile for unit tests: busy enough that short
    /// clips contain objects, static enough that coding behaves like
    /// surveillance video.
    pub fn test_profile(seed: u64) -> Self {
        DatasetProfile {
            seed,
            motion_intensity: 0.3,
            object_arrivals_per_minute: 60.0,
            mean_object_height: 0.2,
            object_height_spread: 0.08,
            vehicle_fraction: 0.8,
            plate_visible_fraction: 0.7,
            background_texture: 0.35,
            mean_dwell_seconds: 5.0,
        }
    }

    /// Number of concurrent object "slots" the generator simulates, derived
    /// from arrival rate and dwell time (Little's law, rounded up, at least
    /// one).
    pub fn object_slots(&self) -> u32 {
        let mean_present = self.object_arrivals_per_minute / 60.0 * self.mean_dwell_seconds;
        (mean_present.ceil() as u32).max(1) + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_have_distinct_profiles() {
        let mut seeds: Vec<u64> = Dataset::ALL.iter().map(|d| d.profile().seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), Dataset::ALL.len());
    }

    #[test]
    fn dashcam_has_highest_motion() {
        let dash = Dataset::Dashcam.profile().motion_intensity;
        for d in Dataset::ALL {
            assert!(d.profile().motion_intensity <= dash);
        }
        assert!(Dataset::Park.profile().motion_intensity < 0.2);
    }

    #[test]
    fn query_split_matches_paper() {
        assert_eq!(Dataset::QUERY_A.len(), 3);
        assert_eq!(Dataset::QUERY_B.len(), 3);
        assert!(Dataset::QUERY_A.contains(&Dataset::Jackson));
        assert!(Dataset::QUERY_B.contains(&Dataset::Dashcam));
    }

    #[test]
    fn object_slots_scale_with_density() {
        let busy = Dataset::Miami.profile().object_slots();
        let quiet = Dataset::Park.profile().object_slots();
        assert!(busy > quiet);
        assert!(quiet >= 1);
    }

    #[test]
    fn names_are_lowercase_identifiers() {
        for d in Dataset::ALL {
            assert!(d.name().chars().all(|c| c.is_ascii_lowercase()));
            assert_eq!(d.to_string(), d.name());
        }
    }
}
