//! The deterministic video source: generates [`SceneFrame`]s for a dataset.
//!
//! Generation is a pure function of `(profile.seed, frame index)`, so any
//! component can re-derive any frame at any time without coordination — the
//! property the profiler and the tests rely on.

use crate::plane::BlockPlane;
use crate::profile::{Dataset, DatasetProfile};
use crate::scene::{BoundingBox, ObjectClass, ObjectColor, PlateText, SceneFrame, SceneObject};
use serde::{Deserialize, Serialize};
use vstore_sim::DeterministicHasher;
use vstore_types::Resolution;

/// Ingestion frame rate (frames per second).
pub const FRAME_RATE: u32 = 30;

/// Segment length in seconds (§4.1: 8-second segments).
pub const SEGMENT_SECONDS: u32 = 8;

/// Frames per segment.
pub const SEGMENT_FRAMES: u32 = FRAME_RATE * SEGMENT_SECONDS;

/// A deterministic synthetic video stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoSource {
    name: String,
    profile: DatasetProfile,
}

impl VideoSource {
    /// The source for one of the paper's six datasets.
    pub fn new(dataset: Dataset) -> Self {
        VideoSource {
            name: dataset.name().to_owned(),
            profile: dataset.profile(),
        }
    }

    /// A source with a custom profile (used by tests and examples).
    pub fn from_profile(name: impl Into<String>, profile: DatasetProfile) -> Self {
        VideoSource {
            name: name.into(),
            profile,
        }
    }

    /// The stream name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The content profile.
    pub fn profile(&self) -> &DatasetProfile {
        &self.profile
    }

    /// Motion intensity of the content, used by the coding cost model.
    pub fn motion_intensity(&self) -> f64 {
        self.profile.motion_intensity
    }

    // ------------------------------------------------------------------
    // Object generation
    // ------------------------------------------------------------------

    fn cycle_len_frames(&self) -> u64 {
        let slots = f64::from(self.profile.object_slots());
        let arrivals_per_frame = self.profile.object_arrivals_per_minute / 60.0 / 30.0;
        // Each slot produces one arrival per cycle.
        ((slots / arrivals_per_frame.max(1e-6)).round() as u64).max(60)
    }

    fn object_for_slot(&self, slot: u32, frame_index: u64) -> Option<SceneObject> {
        let cycle_len = self.cycle_len_frames();
        let cycle = frame_index / cycle_len;
        let offset = frame_index % cycle_len;

        let h = DeterministicHasher::new(self.profile.seed)
            .mix(0x00B9_EC75)
            .mix(u64::from(slot))
            .mix(cycle);

        // Dwell time of this particular object, jittered ±40 %.
        let dwell_frames =
            (self.profile.mean_dwell_seconds * 30.0 * h.mix(1).uniform(0.6, 1.4)).max(15.0);
        // Phase within the cycle at which the object enters.
        let entry = h.mix(2).unit() * (cycle_len as f64 - dwell_frames).max(1.0);
        let local = offset as f64 - entry;
        if local < 0.0 || local >= dwell_frames {
            return None;
        }
        let progress = (local / dwell_frames) as f32;

        let id = h.mix(3).value();
        let is_vehicle = h.mix(4).bernoulli(self.profile.vehicle_fraction);
        let class = if is_vehicle {
            ObjectClass::Vehicle {
                plate_visible: h.mix(5).bernoulli(self.profile.plate_visible_fraction),
            }
        } else if h.mix(6).bernoulli(0.7) {
            ObjectClass::Pedestrian
        } else {
            ObjectClass::Cyclist
        };
        let height = (self.profile.mean_object_height
            + h.mix(7).uniform(-1.0, 1.0) * self.profile.object_height_spread)
            .clamp(0.03, 0.6) as f32;
        let width = height * if is_vehicle { 1.8 } else { 0.5 };
        let color = ObjectColor::ALL[h.mix(8).below(ObjectColor::ALL.len() as u64) as usize];
        let plate = if is_vehicle {
            Some(PlateText::from_hash(h.mix(9).value()))
        } else {
            None
        };
        let salience = h.mix(10).uniform(0.45, 1.0) as f32;
        // Object crosses the frame horizontally over its dwell time; lane
        // position (y) is stable per object.
        let direction = if h.mix(11).bernoulli(0.5) { 1.0 } else { -1.0 };
        let x_start = if direction > 0.0 { -width } else { 1.0 };
        let travel = 1.0 + 2.0 * width;
        let x = x_start + direction * travel * progress;
        let y = h.mix(12).uniform(0.35, 0.75) as f32;
        let speed = (travel / (dwell_frames as f32 / 30.0)) * direction.abs();

        Some(SceneObject {
            id,
            class,
            bbox: BoundingBox::new(x, y, width, height),
            color,
            plate,
            salience,
            speed,
        })
    }

    // ------------------------------------------------------------------
    // Plane generation
    // ------------------------------------------------------------------

    fn background_value(&self, x: u32, y: u32, frame_index: u64) -> u8 {
        // Camera motion shifts the sampling grid; static cameras keep it
        // fixed so consecutive frames are nearly identical.
        let shift = (frame_index as f64 * self.profile.motion_intensity * 1.8).round() as i64;
        let sx = i64::from(x) + shift;
        let sy = i64::from(y) + (shift / 3);
        // Smooth vertical gradient (sky → road) plus hashed texture.
        let base = 70.0 + 110.0 * (f64::from(y) / 90.0);
        let texture_amp = 55.0 * self.profile.background_texture;
        let noise = DeterministicHasher::new(self.profile.seed)
            .mix(0xBAC4_6000)
            .mix(sx as u64)
            .mix(sy as u64)
            .unit();
        (base + texture_amp * (noise - 0.5) * 2.0).clamp(0.0, 255.0) as u8
    }

    /// Render the frame's plane into `plane`, reusing its sample buffer —
    /// the allocation-free path behind [`render_plane`](Self::frame). A
    /// wrongly-sized plane is replaced (one allocation, then reused
    /// forever).
    fn render_plane_into(&self, frame_index: u64, objects: &[SceneObject], plane: &mut BlockPlane) {
        let (w, h) = BlockPlane::dimensions_for(Resolution::R720);
        if plane.width() != w || plane.height() != h {
            *plane = BlockPlane::filled(w, h, 0);
        }
        let samples = plane.samples_mut();
        let mut i = 0usize;
        for y in 0..h {
            for x in 0..w {
                samples[i] = self.background_value(x, y, frame_index);
                i += 1;
            }
        }
        // Rasterise objects over the background.
        for obj in objects {
            let luma = obj.color.luma();
            let x0 = (obj.bbox.x * w as f32) as i64;
            let y0 = (obj.bbox.y * h as f32) as i64;
            let bw = ((obj.bbox.w * w as f32).ceil() as i64).max(1);
            let bh = ((obj.bbox.h * h as f32).ceil() as i64).max(1);
            for yy in y0..(y0 + bh) {
                for xx in x0..(x0 + bw) {
                    if xx >= 0 && yy >= 0 && (xx as u32) < w && (yy as u32) < h {
                        // Blend by salience so faint objects leave a fainter
                        // footprint.
                        let bg = plane.get(xx as u32, yy as u32);
                        let blended =
                            f32::from(bg) * (1.0 - obj.salience) + f32::from(luma) * obj.salience;
                        plane.set(xx as u32, yy as u32, blended as u8);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Public frame access
    // ------------------------------------------------------------------

    /// An empty frame shell for [`frame_into`](Self::frame_into) to fill.
    fn blank_frame() -> SceneFrame {
        let (w, h) = BlockPlane::dimensions_for(Resolution::R720);
        SceneFrame {
            index: 0,
            plane: BlockPlane::filled(w, h, 0),
            objects: Vec::new(),
            global_motion: 0.0,
        }
    }

    /// Generate the frame at the given index (30 fps) into `out`, reusing
    /// its object list and plane buffer. Value-identical to
    /// [`frame`](Self::frame) — this is the allocation-free path unbounded
    /// live streams run on.
    pub fn frame_into(&self, index: u64, out: &mut SceneFrame) {
        out.index = index;
        out.objects.clear();
        for slot in 0..self.profile.object_slots() {
            if let Some(obj) = self.object_for_slot(slot, index) {
                out.objects.push(obj);
            }
        }
        self.render_plane_into(index, &out.objects, &mut out.plane);
        let jitter = DeterministicHasher::new(self.profile.seed)
            .mix(0x90710)
            .mix(index)
            .uniform(-0.05, 0.05);
        out.global_motion = (self.profile.motion_intensity + jitter).clamp(0.0, 1.0) as f32;
    }

    /// Generate the frame at the given index (30 fps).
    pub fn frame(&self, index: u64) -> SceneFrame {
        let mut out = Self::blank_frame();
        self.frame_into(index, &mut out);
        out
    }

    /// Generate a contiguous clip of frames into `out`, reusing its frames'
    /// buffers — value-identical to [`clip`](Self::clip) without the
    /// per-call allocations once `out` has warmed up.
    pub fn clip_into(&self, start_frame: u64, num_frames: u32, out: &mut Vec<SceneFrame>) {
        let num_frames = num_frames as usize;
        out.truncate(num_frames);
        while out.len() < num_frames {
            out.push(Self::blank_frame());
        }
        for (offset, frame) in out.iter_mut().enumerate() {
            self.frame_into(start_frame + offset as u64, frame);
        }
    }

    /// Generate a contiguous clip of frames.
    pub fn clip(&self, start_frame: u64, num_frames: u32) -> Vec<SceneFrame> {
        let mut out = Vec::new();
        self.clip_into(start_frame, num_frames, &mut out);
        out
    }

    /// Generate all frames of the `segment_index`-th 8-second segment into
    /// `out`, reusing its buffers (see [`clip_into`](Self::clip_into)).
    pub fn segment_into(&self, segment_index: u64, out: &mut Vec<SceneFrame>) {
        self.clip_into(
            segment_index * u64::from(SEGMENT_FRAMES),
            SEGMENT_FRAMES,
            out,
        );
    }

    /// Generate all frames of the `segment_index`-th 8-second segment.
    pub fn segment(&self, segment_index: u64) -> Vec<SceneFrame> {
        self.clip(segment_index * u64::from(SEGMENT_FRAMES), SEGMENT_FRAMES)
    }

    /// An iterator over frames starting at `start_frame`.
    pub fn frames_from(&self, start_frame: u64) -> impl Iterator<Item = SceneFrame> + '_ {
        let mut cursor = self.frame_cursor(start_frame);
        std::iter::from_fn(move || Some(cursor.next_frame().clone()))
    }

    /// A streaming cursor over the frames from `start_frame` on: each
    /// [`next_frame`](FrameCursor::next_frame) renders into one internal
    /// frame buffer, so an unbounded stream touches the heap only while the
    /// buffer warms up. The allocating [`frames_from`](Self::frames_from)
    /// clones out of the same cursor.
    pub fn frame_cursor(&self, start_frame: u64) -> FrameCursor<'_> {
        FrameCursor {
            source: self,
            next_index: start_frame,
            frame: Self::blank_frame(),
        }
    }
}

/// A streaming frame generator that reuses one frame buffer; see
/// [`VideoSource::frame_cursor`].
#[derive(Debug, Clone)]
pub struct FrameCursor<'a> {
    source: &'a VideoSource,
    next_index: u64,
    frame: SceneFrame,
}

impl FrameCursor<'_> {
    /// The index the next [`next_frame`](Self::next_frame) call will render.
    #[must_use]
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// Render the next frame into the internal buffer and return it.
    pub fn next_frame(&mut self) -> &SceneFrame {
        self.source.frame_into(self.next_index, &mut self.frame);
        self.next_index += 1;
        &self.frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_deterministic() {
        let src = VideoSource::new(Dataset::Jackson);
        let a = src.frame(123);
        let b = src.frame(123);
        assert_eq!(a, b);
        let c = src.frame(124);
        assert_ne!(a.plane, c.plane);
    }

    #[test]
    fn plane_has_720p_block_dimensions() {
        let src = VideoSource::new(Dataset::Park);
        let f = src.frame(0);
        assert_eq!(f.plane.width(), 160);
        assert_eq!(f.plane.height(), 90);
    }

    #[test]
    fn object_density_tracks_profile() {
        // Count mean objects per frame over a minute of video and compare
        // datasets: miami (busy) should exceed park (quiet).
        fn mean_objects(dataset: Dataset) -> f64 {
            let src = VideoSource::new(dataset);
            let frames = 600; // 20 s, sampled every other frame for speed
            let total: usize = (0..frames)
                .step_by(2)
                .map(|i| src.frame(i).objects.len())
                .sum();
            total as f64 / (frames / 2) as f64
        }
        let miami = mean_objects(Dataset::Miami);
        let park = mean_objects(Dataset::Park);
        assert!(miami > park, "miami {miami} <= park {park}");
        assert!(miami > 0.5, "miami too sparse: {miami}");
    }

    #[test]
    fn static_scene_has_smaller_frame_deltas_than_dashcam() {
        let park = VideoSource::new(Dataset::Park);
        let dash = VideoSource::new(Dataset::Dashcam);
        let park_delta = park.frame(10).plane.mean_abs_diff(&park.frame(11).plane);
        let dash_delta = dash.frame(10).plane.mean_abs_diff(&dash.frame(11).plane);
        assert!(
            dash_delta > park_delta * 2.0,
            "dashcam delta {dash_delta} vs park delta {park_delta}"
        );
    }

    #[test]
    fn objects_persist_across_adjacent_frames() {
        let src = VideoSource::new(Dataset::Jackson);
        // Find a frame with at least one object, then check the same id is
        // present in the next frame (objects dwell for seconds).
        let mut checked = false;
        for i in 0..900 {
            let f = src.frame(i);
            if let Some(obj) = f.objects.first() {
                let next = src.frame(i + 1);
                assert!(
                    next.objects.iter().any(|o| o.id == obj.id),
                    "object {} vanished after one frame",
                    obj.id
                );
                checked = true;
                break;
            }
        }
        assert!(checked, "no object found in 30 s of jackson");
    }

    #[test]
    fn vehicles_carry_plates_with_profile_probability() {
        let src = VideoSource::new(Dataset::Dashcam);
        let mut vehicles = 0usize;
        let mut with_plate = 0usize;
        for i in (0..3000).step_by(10) {
            for obj in src.frame(i).objects {
                if obj.class.is_vehicle() {
                    vehicles += 1;
                    if obj.has_visible_plate() {
                        with_plate += 1;
                    }
                }
            }
        }
        assert!(vehicles > 20, "too few vehicles: {vehicles}");
        let frac = with_plate as f64 / vehicles as f64;
        assert!((frac - 0.70).abs() < 0.25, "plate fraction {frac}");
    }

    #[test]
    fn segment_has_240_frames() {
        let src = VideoSource::new(Dataset::Airport);
        let seg = src.segment(2);
        assert_eq!(seg.len(), SEGMENT_FRAMES as usize);
        assert_eq!(seg[0].index, 2 * u64::from(SEGMENT_FRAMES));
        assert_eq!(SEGMENT_FRAMES, 240);
    }

    #[test]
    fn frames_from_iterator_matches_frame() {
        let src = VideoSource::new(Dataset::Tucson);
        let mut it = src.frames_from(5);
        assert_eq!(it.next().unwrap(), src.frame(5));
        assert_eq!(it.next().unwrap(), src.frame(6));
    }

    /// The allocation-free paths are value-identical to the allocating
    /// ones, including when a buffer is reused across distant indices.
    #[test]
    fn into_variants_match_allocating_variants() {
        let src = VideoSource::new(Dataset::Jackson);
        let mut frame = VideoSource::blank_frame();
        for index in [0u64, 123, 9999] {
            src.frame_into(index, &mut frame);
            assert_eq!(frame, src.frame(index), "frame {index} diverged");
        }
        let mut clip = Vec::new();
        src.clip_into(40, 12, &mut clip);
        assert_eq!(clip, src.clip(40, 12));
        // Reuse the same (now longer-lived) buffer for a different segment.
        src.segment_into(3, &mut clip);
        assert_eq!(clip, src.segment(3));
    }

    #[test]
    fn cursor_streams_the_same_frames_without_fresh_buffers() {
        let src = VideoSource::new(Dataset::Airport);
        let mut cursor = src.frame_cursor(7);
        assert_eq!(cursor.next_index(), 7);
        assert_eq!(*cursor.next_frame(), src.frame(7));
        assert_eq!(*cursor.next_frame(), src.frame(8));
        assert_eq!(cursor.next_index(), 9);
    }
}
