//! Scene model: the objects present in a frame and their ground-truth
//! attributes, plus the frame type bundling objects with the block plane.

use crate::plane::BlockPlane;
use serde::{Deserialize, Serialize};
use std::fmt;
use vstore_types::{CropFactor, Resolution};

/// A normalised bounding box: coordinates and extents in `[0, 1]` relative to
/// the full (uncropped) frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Left edge.
    pub x: f32,
    /// Top edge.
    pub y: f32,
    /// Width.
    pub w: f32,
    /// Height.
    pub h: f32,
}

impl BoundingBox {
    /// Construct a box, clamping all fields into `[0, 1]`.
    pub fn new(x: f32, y: f32, w: f32, h: f32) -> Self {
        BoundingBox {
            x: x.clamp(0.0, 1.0),
            y: y.clamp(0.0, 1.0),
            w: w.clamp(0.0, 1.0),
            h: h.clamp(0.0, 1.0),
        }
    }

    /// Box centre.
    pub fn center(&self) -> (f32, f32) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Normalised area.
    pub fn area(&self) -> f32 {
        self.w * self.h
    }

    /// Apparent height in pixels when rendered at the given resolution.
    pub fn pixel_height(&self, resolution: Resolution) -> f64 {
        f64::from(self.h) * f64::from(resolution.height())
    }

    /// `true` if the box centre survives a centred crop with the given
    /// factor.
    pub fn visible_under_crop(&self, crop: CropFactor) -> bool {
        let keep = crop.linear_fraction() as f32;
        let margin = (1.0 - keep) / 2.0;
        let (cx, cy) = self.center();
        cx >= margin && cx <= 1.0 - margin && cy >= margin && cy <= 1.0 - margin
    }
}

/// The colour of an object, used by the Color operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectColor {
    /// Red.
    Red,
    /// Blue.
    Blue,
    /// White.
    White,
    /// Black.
    Black,
    /// Silver / grey.
    Silver,
    /// Yellow.
    Yellow,
    /// Green.
    Green,
}

impl ObjectColor {
    /// All colours, used when drawing attributes deterministically.
    pub const ALL: [ObjectColor; 7] = [
        ObjectColor::Red,
        ObjectColor::Blue,
        ObjectColor::White,
        ObjectColor::Black,
        ObjectColor::Silver,
        ObjectColor::Yellow,
        ObjectColor::Green,
    ];

    /// A luma rendering value so colours leave a visible footprint in the
    /// block plane.
    pub fn luma(self) -> u8 {
        match self {
            ObjectColor::Red => 90,
            ObjectColor::Blue => 70,
            ObjectColor::White => 235,
            ObjectColor::Black => 25,
            ObjectColor::Silver => 180,
            ObjectColor::Yellow => 210,
            ObjectColor::Green => 110,
        }
    }
}

impl fmt::Display for ObjectColor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObjectColor::Red => "red",
            ObjectColor::Blue => "blue",
            ObjectColor::White => "white",
            ObjectColor::Black => "black",
            ObjectColor::Silver => "silver",
            ObjectColor::Yellow => "yellow",
            ObjectColor::Green => "green",
        };
        f.write_str(s)
    }
}

/// A licence plate string (seven characters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlateText(pub [u8; 7]);

impl PlateText {
    /// The characters a plate may contain.
    pub const ALPHABET: &'static [u8] = b"ABCDEFGHJKLMNPRSTUVWXYZ0123456789";

    /// Generate a plate from a 64-bit hash value.
    pub fn from_hash(mut value: u64) -> Self {
        let mut chars = [0u8; 7];
        for c in &mut chars {
            *c = Self::ALPHABET[(value % Self::ALPHABET.len() as u64) as usize];
            value /= 31;
            value = value.rotate_left(9) ^ 0x9E37;
        }
        PlateText(chars)
    }

    /// The plate as a string slice.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.0).unwrap_or("???????")
    }

    /// Number of characters that differ from another plate.
    pub fn char_errors(&self, other: &PlateText) -> usize {
        self.0
            .iter()
            .zip(other.0.iter())
            .filter(|(a, b)| a != b)
            .count()
    }
}

impl fmt::Display for PlateText {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The class of a scene object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectClass {
    /// A vehicle, possibly carrying a readable licence plate.
    Vehicle {
        /// `true` when the rear plate faces the camera.
        plate_visible: bool,
    },
    /// A pedestrian.
    Pedestrian,
    /// A cyclist.
    Cyclist,
}

impl ObjectClass {
    /// `true` for vehicles.
    pub fn is_vehicle(&self) -> bool {
        matches!(self, ObjectClass::Vehicle { .. })
    }
}

/// A ground-truth object present in a frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneObject {
    /// Stable identity of the object across the frames it appears in.
    pub id: u64,
    /// Object class.
    pub class: ObjectClass,
    /// Normalised bounding box in the full frame.
    pub bbox: BoundingBox,
    /// Dominant colour.
    pub color: ObjectColor,
    /// Licence plate text (vehicles only).
    pub plate: Option<PlateText>,
    /// How visually distinctive the object is, in `(0, 1]`; low-salience
    /// objects are harder for every operator at every fidelity.
    pub salience: f32,
    /// Apparent speed in frame-widths per second (drives motion detection
    /// and optical flow magnitude).
    pub speed: f32,
}

impl SceneObject {
    /// `true` if this object is a vehicle with a readable plate.
    pub fn has_visible_plate(&self) -> bool {
        matches!(
            self.class,
            ObjectClass::Vehicle {
                plate_visible: true
            }
        ) && self.plate.is_some()
    }

    /// The plate's apparent height in pixels at a resolution (the plate is a
    /// fixed fraction of the vehicle's height).
    pub fn plate_pixel_height(&self, resolution: Resolution) -> f64 {
        self.bbox.pixel_height(resolution) * 0.12
    }
}

/// A generated frame: the block plane plus exact object ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneFrame {
    /// Frame index within the stream (30 fps).
    pub index: u64,
    /// Coarse luma raster at the ingestion resolution (720p → 160×90).
    pub plane: BlockPlane,
    /// Objects present in this frame.
    pub objects: Vec<SceneObject>,
    /// Global (camera) motion magnitude for this frame, in `[0, 1]`.
    pub global_motion: f32,
}

impl SceneFrame {
    /// Timestamp of the frame in seconds at 30 fps.
    pub fn timestamp(&self) -> f64 {
        self.index as f64 / 30.0
    }

    /// Objects whose bounding-box centre survives the given crop.
    pub fn objects_under_crop(&self, crop: CropFactor) -> impl Iterator<Item = &SceneObject> {
        self.objects
            .iter()
            .filter(move |o| o.bbox.visible_under_crop(crop))
    }

    /// `true` if any vehicle is present.
    pub fn has_vehicle(&self) -> bool {
        self.objects.iter().any(|o| o.class.is_vehicle())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bbox_clamps_and_measures() {
        let b = BoundingBox::new(-0.1, 0.5, 2.0, 0.25);
        assert_eq!(b.x, 0.0);
        assert_eq!(b.w, 1.0);
        assert!((b.area() - 0.25).abs() < 1e-6);
        assert!((b.pixel_height(Resolution::R720) - 180.0).abs() < 1e-6);
    }

    #[test]
    fn crop_visibility_depends_on_center() {
        let centered = BoundingBox::new(0.45, 0.45, 0.1, 0.1);
        let corner = BoundingBox::new(0.0, 0.0, 0.1, 0.1);
        assert!(centered.visible_under_crop(CropFactor::C50));
        assert!(!corner.visible_under_crop(CropFactor::C50));
        assert!(corner.visible_under_crop(CropFactor::C100));
    }

    #[test]
    fn plate_text_is_deterministic_and_comparable() {
        let a = PlateText::from_hash(12345);
        let b = PlateText::from_hash(12345);
        let c = PlateText::from_hash(54321);
        assert_eq!(a, b);
        assert_eq!(a.char_errors(&b), 0);
        assert!(a.char_errors(&c) > 0);
        assert_eq!(a.as_str().len(), 7);
    }

    #[test]
    fn scene_object_plate_helpers() {
        let obj = SceneObject {
            id: 1,
            class: ObjectClass::Vehicle {
                plate_visible: true,
            },
            bbox: BoundingBox::new(0.4, 0.4, 0.2, 0.2),
            color: ObjectColor::Blue,
            plate: Some(PlateText::from_hash(7)),
            salience: 0.8,
            speed: 0.1,
        };
        assert!(obj.has_visible_plate());
        assert!(obj.plate_pixel_height(Resolution::R720) > 10.0);
        assert!(obj.plate_pixel_height(Resolution::R100) < 3.0);
        let ped = SceneObject {
            class: ObjectClass::Pedestrian,
            plate: None,
            ..obj.clone()
        };
        assert!(!ped.has_visible_plate());
    }

    #[test]
    fn scene_frame_helpers() {
        let frame = SceneFrame {
            index: 90,
            plane: BlockPlane::filled(160, 90, 100),
            objects: vec![SceneObject {
                id: 1,
                class: ObjectClass::Vehicle {
                    plate_visible: false,
                },
                bbox: BoundingBox::new(0.05, 0.05, 0.1, 0.1),
                color: ObjectColor::Red,
                plate: None,
                salience: 0.5,
                speed: 0.2,
            }],
            global_motion: 0.1,
        };
        assert!((frame.timestamp() - 3.0).abs() < 1e-9);
        assert!(frame.has_vehicle());
        assert_eq!(frame.objects_under_crop(CropFactor::C50).count(), 0);
        assert_eq!(frame.objects_under_crop(CropFactor::C100).count(), 1);
    }

    #[test]
    fn colors_have_distinct_luma() {
        let mut lumas: Vec<u8> = ObjectColor::ALL.iter().map(|c| c.luma()).collect();
        lumas.sort_unstable();
        lumas.dedup();
        assert_eq!(lumas.len(), ObjectColor::ALL.len());
    }
}
