//! The camera simulator: an endless, deterministic live segment source.
//!
//! A [`LiveSource`] wraps a [`VideoSource`] with a *load profile* — a pure
//! function from virtual time to the number of segments the camera has
//! produced — so sustained-overload scenarios (bursts, diurnal swings)
//! replay identically on every run. Segment *content* is still the pure
//! function of `(seed, frame index)` that [`VideoSource`] implements; the
//! profile only decides *when* each segment becomes due on the
//! [`VirtualClock`].
//!
//! ```text
//!  VirtualClock ──now()──► LoadProfile ──due_by()──► segment indices due
//!                                                     │ capture()
//!                                                     ▼
//!                                        reusable SceneFrame buffer
//! ```
//!
//! [`capture`](LiveSource::capture) renders into one internal buffer via
//! [`VideoSource::segment_into`], so a camera can run for millions of
//! virtual frames without per-segment heap churn.

use crate::scene::SceneFrame;
use crate::source::VideoSource;
use serde::{Deserialize, Serialize};
use std::f64::consts::TAU;
use std::ops::Range;
use vstore_sim::VirtualClock;
use vstore_types::{Result, VStoreError};

/// How a simulated camera's offered load varies over virtual time. All
/// profiles are closed-form integrals — no RNG, no drift — so the segment
/// schedule is a pure function of the clock reading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LoadProfile {
    /// A constant offered rate.
    Steady {
        /// Segments produced per virtual second.
        segments_per_sec: f64,
    },
    /// A square wave: each period opens with a burst at
    /// `base * burst_multiplier`, then falls back to `base`.
    Bursty {
        /// Off-burst offered rate (segments per virtual second).
        base_segments_per_sec: f64,
        /// Rate multiplier during the burst window (≥ 1).
        burst_multiplier: f64,
        /// Length of one burst-then-quiet cycle in virtual seconds.
        period_seconds: f64,
        /// Fraction of each period spent bursting, in `(0, 1)`.
        burst_fraction: f64,
    },
    /// A day/night sine swing around a mean rate.
    Diurnal {
        /// Mean offered rate (segments per virtual second).
        mean_segments_per_sec: f64,
        /// Relative swing amplitude in `[0, 1]`: rate peaks at
        /// `mean * (1 + swing)` and bottoms out at `mean * (1 - swing)`.
        swing: f64,
        /// Length of one virtual "day" in seconds.
        period_seconds: f64,
    },
}

impl LoadProfile {
    /// Reject profiles whose schedule would be degenerate (non-positive
    /// rates or periods, out-of-range fractions).
    pub fn validate(&self) -> Result<()> {
        let reject = |what: &str| {
            Err(VStoreError::invalid_argument(format!(
                "LoadProfile: {what}"
            )))
        };
        match *self {
            LoadProfile::Steady { segments_per_sec } => {
                if !(segments_per_sec > 0.0 && segments_per_sec.is_finite()) {
                    return reject("segments_per_sec must be positive and finite");
                }
            }
            LoadProfile::Bursty {
                base_segments_per_sec,
                burst_multiplier,
                period_seconds,
                burst_fraction,
            } => {
                if !(base_segments_per_sec > 0.0 && base_segments_per_sec.is_finite()) {
                    return reject("base_segments_per_sec must be positive and finite");
                }
                if !(burst_multiplier >= 1.0 && burst_multiplier.is_finite()) {
                    return reject("burst_multiplier must be >= 1 and finite");
                }
                if !(period_seconds > 0.0 && period_seconds.is_finite()) {
                    return reject("period_seconds must be positive and finite");
                }
                if !(burst_fraction > 0.0 && burst_fraction < 1.0) {
                    return reject("burst_fraction must be in (0, 1)");
                }
            }
            LoadProfile::Diurnal {
                mean_segments_per_sec,
                swing,
                period_seconds,
            } => {
                if !(mean_segments_per_sec > 0.0 && mean_segments_per_sec.is_finite()) {
                    return reject("mean_segments_per_sec must be positive and finite");
                }
                if !(0.0..=1.0).contains(&swing) {
                    return reject("swing must be in [0, 1]");
                }
                if !(period_seconds > 0.0 && period_seconds.is_finite()) {
                    return reject("period_seconds must be positive and finite");
                }
            }
        }
        Ok(())
    }

    /// Total segments offered over virtual `[0, t]` — the integral of the
    /// rate function, before flooring to whole segments.
    fn offered(&self, t: f64) -> f64 {
        let t = t.max(0.0);
        match *self {
            LoadProfile::Steady { segments_per_sec } => segments_per_sec * t,
            LoadProfile::Bursty {
                base_segments_per_sec,
                burst_multiplier,
                period_seconds,
                burst_fraction,
            } => {
                let burst_len = period_seconds * burst_fraction;
                let per_period = base_segments_per_sec
                    * (burst_multiplier * burst_len + (period_seconds - burst_len));
                let full_periods = (t / period_seconds).floor();
                let rem = t - full_periods * period_seconds;
                let partial = base_segments_per_sec
                    * (burst_multiplier * rem.min(burst_len) + (rem - burst_len).max(0.0));
                full_periods * per_period + partial
            }
            LoadProfile::Diurnal {
                mean_segments_per_sec,
                swing,
                period_seconds,
            } => {
                // ∫ mean·(1 + swing·sin(ωt)) dt = mean·t + mean·swing·(1 − cos(ωt))/ω
                let omega = TAU / period_seconds;
                mean_segments_per_sec * (t + swing * (1.0 - (omega * t).cos()) / omega)
            }
        }
    }

    /// Whole segments due by virtual time `t`.
    #[must_use]
    pub fn due_by(&self, t: f64) -> u64 {
        self.offered(t).floor().max(0.0) as u64
    }

    /// The long-run mean offered rate in segments per virtual second.
    #[must_use]
    pub fn mean_rate(&self) -> f64 {
        match *self {
            LoadProfile::Steady { segments_per_sec } => segments_per_sec,
            LoadProfile::Bursty {
                base_segments_per_sec,
                burst_multiplier,
                burst_fraction,
                ..
            } => {
                base_segments_per_sec * (burst_multiplier * burst_fraction + (1.0 - burst_fraction))
            }
            LoadProfile::Diurnal {
                mean_segments_per_sec,
                ..
            } => mean_segments_per_sec,
        }
    }
}

/// An endless camera: a [`VideoSource`] scheduled by a [`LoadProfile`],
/// rendering due segments into one reusable frame buffer.
#[derive(Debug, Clone)]
pub struct LiveSource {
    source: VideoSource,
    profile: LoadProfile,
    /// Segments already handed out by [`poll`](Self::poll).
    next_due: u64,
    /// The reusable segment buffer [`capture`](Self::capture) renders into.
    buffer: Vec<SceneFrame>,
}

impl LiveSource {
    /// A camera producing `source`'s content on `profile`'s schedule.
    pub fn new(source: VideoSource, profile: LoadProfile) -> Result<Self> {
        profile.validate()?;
        Ok(LiveSource {
            source,
            profile,
            next_due: 0,
            buffer: Vec::new(),
        })
    }

    /// The underlying content source.
    pub fn source(&self) -> &VideoSource {
        &self.source
    }

    /// The camera's load profile.
    pub fn profile(&self) -> &LoadProfile {
        &self.profile
    }

    /// Total segments due by virtual time `now` (monotone in `now`).
    #[must_use]
    pub fn due_by(&self, now: f64) -> u64 {
        self.profile.due_by(now)
    }

    /// The segment indices newly due at virtual time `now`, advancing the
    /// camera's cursor past them: successive polls partition the stream, so
    /// every segment is offered exactly once.
    pub fn poll(&mut self, now: f64) -> Range<u64> {
        let due = self.due_by(now).max(self.next_due);
        let range = self.next_due..due;
        self.next_due = due;
        range
    }

    /// [`poll`](Self::poll) at the clock's current reading.
    pub fn poll_clock(&mut self, clock: &VirtualClock) -> Range<u64> {
        self.poll(clock.now())
    }

    /// Render segment `segment_index` into the internal buffer and return
    /// its frames — value-identical to [`VideoSource::segment`], without the
    /// per-capture allocations once the buffer has warmed up.
    pub fn capture(&mut self, segment_index: u64) -> &[SceneFrame] {
        self.source.segment_into(segment_index, &mut self.buffer);
        &self.buffer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Dataset;

    fn camera(profile: LoadProfile) -> LiveSource {
        LiveSource::new(VideoSource::new(Dataset::Jackson), profile).unwrap()
    }

    #[test]
    fn steady_rate_is_linear_and_polls_partition_the_stream() {
        let mut cam = camera(LoadProfile::Steady {
            segments_per_sec: 0.5,
        });
        assert_eq!(cam.due_by(0.0), 0);
        assert_eq!(cam.due_by(10.0), 5);
        assert_eq!(cam.poll(4.0), 0..2);
        assert_eq!(cam.poll(4.0), 2..2, "re-polling offers nothing new");
        assert_eq!(cam.poll(10.0), 2..5);
        // Time never runs backwards through the cursor.
        assert_eq!(cam.poll(3.0), 5..5);
    }

    #[test]
    fn bursty_profile_doubles_during_the_burst_window() {
        // 1 seg/s base, 2x for the first half of each 100 s period.
        let profile = LoadProfile::Bursty {
            base_segments_per_sec: 1.0,
            burst_multiplier: 2.0,
            period_seconds: 100.0,
            burst_fraction: 0.5,
        };
        assert_eq!(profile.due_by(50.0), 100, "burst window runs at 2 seg/s");
        assert_eq!(profile.due_by(100.0), 150, "quiet window at 1 seg/s");
        assert_eq!(profile.due_by(250.0), 400, "periods accumulate exactly");
        assert!((profile.mean_rate() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn diurnal_profile_oscillates_but_averages_to_the_mean() {
        let profile = LoadProfile::Diurnal {
            mean_segments_per_sec: 1.0,
            swing: 0.8,
            period_seconds: 100.0,
        };
        // Over whole periods the sine integrates away.
        assert_eq!(profile.due_by(100.0), 100);
        assert_eq!(profile.due_by(200.0), 200);
        // The first half-day runs hot, the second cold.
        let first_half = profile.due_by(50.0);
        let second_half = profile.due_by(100.0) - first_half;
        assert!(
            first_half > second_half,
            "daytime {first_half} <= nighttime {second_half}"
        );
        // due_by is monotone even on the cold slope.
        let mut last = 0;
        for i in 0..400 {
            let now = profile.due_by(i as f64 * 0.5);
            assert!(now >= last, "due_by went backwards at t={}", i as f64 * 0.5);
            last = now;
        }
    }

    #[test]
    fn capture_matches_the_offline_segment() {
        let mut cam = camera(LoadProfile::Steady {
            segments_per_sec: 1.0,
        });
        let expected_3 = cam.source().segment(3);
        let expected_0 = cam.source().segment(0);
        assert_eq!(cam.capture(3), expected_3.as_slice());
        // Buffer reuse across captures stays value-identical.
        assert_eq!(cam.capture(0), expected_0.as_slice());
    }

    #[test]
    fn poll_clock_follows_the_virtual_clock() {
        let clock = VirtualClock::new();
        let mut cam = camera(LoadProfile::Steady {
            segments_per_sec: 2.0,
        });
        assert_eq!(cam.poll_clock(&clock), 0..0);
        clock.advance(3.0);
        assert_eq!(cam.poll_clock(&clock), 0..6);
    }

    #[test]
    fn degenerate_profiles_are_rejected() {
        for profile in [
            LoadProfile::Steady {
                segments_per_sec: 0.0,
            },
            LoadProfile::Bursty {
                base_segments_per_sec: 1.0,
                burst_multiplier: 0.5,
                period_seconds: 10.0,
                burst_fraction: 0.5,
            },
            LoadProfile::Bursty {
                base_segments_per_sec: 1.0,
                burst_multiplier: 2.0,
                period_seconds: 10.0,
                burst_fraction: 1.0,
            },
            LoadProfile::Diurnal {
                mean_segments_per_sec: 1.0,
                swing: 1.5,
                period_seconds: 10.0,
            },
        ] {
            assert!(profile.validate().is_err(), "accepted {profile:?}");
        }
    }
}
