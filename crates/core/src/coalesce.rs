//! Configuring storage formats (§4.3): coalesce the derived consumption
//! formats into a small set of on-disk formats.
//!
//! Starting from one storage format per unique consumption format plus the
//! *golden* format (knob-wise maximum fidelity, smallest coding), the
//! coalescer runs rounds of pairwise merging:
//!
//! * **heuristic selection** (the paper's choice) first harvests "free"
//!   merges that do not increase storage cost, then — if the ingestion
//!   budget is still exceeded — keeps merging the pair with the smallest
//!   storage increase;
//! * **distance-based selection** (the §6.4 alternative) merges the pair of
//!   formats with the smallest normalised Euclidean knob distance.
//!
//! Whenever two formats merge, the merged fidelity is the knob-wise maximum
//! (satisfiable fidelity, R1) and the coding option is re-chosen as the
//! smallest-storage option whose retrieval speed still exceeds every
//! subscriber's consumption speed (adequate retrieval, R2) — falling back to
//! the RAW bypass when no encoded option is fast enough.

use crate::cf_search::DerivedCf;
use serde::{Deserialize, Serialize};
use vstore_profiler::Profiler;
use vstore_types::{
    ByteSize, CodingOption, CodingSpace, Fidelity, Result, Speed, StorageFormat, VStoreError,
};

/// How the coalescing pair is selected each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoalesceStrategy {
    /// Free merges first, then smallest-storage-increase merges (§4.3).
    Heuristic,
    /// Merge the pair with the smallest normalised knob distance (§6.4).
    DistanceBased,
}

/// One derived storage format with its subscribers.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedSf {
    /// The storage format.
    pub format: StorageFormat,
    /// Indices into the consumption-format list of the consumers this format
    /// serves.
    pub subscribers: Vec<usize>,
    /// Storage cost per video-second on the profiling content.
    pub bytes_per_video_second: ByteSize,
    /// Ingestion (transcode) cost in cores for real-time ingest.
    pub encode_cores: f64,
    /// Sequential retrieval speed (the Table 3(b) figure).
    pub sequential_retrieval_speed: Speed,
    /// `true` for the golden format (never eroded, serves as the ultimate
    /// fallback).
    pub is_golden: bool,
}

/// The outcome of coalescing.
#[derive(Debug, Clone, PartialEq)]
pub struct CoalesceResult {
    /// Derived storage formats; index 0 is the golden format.
    pub formats: Vec<DerivedSf>,
    /// Number of pairwise merges performed.
    pub rounds: usize,
    /// Whether the final ingestion cost respects the budget (always `true`
    /// when no budget was given).
    pub within_ingest_budget: bool,
    /// Total storage cost per video-second across all formats.
    pub total_bytes_per_video_second: ByteSize,
    /// Total ingestion cost in cores.
    pub total_ingest_cores: f64,
}

impl CoalesceResult {
    /// The storage format a consumption format (by index) subscribes to,
    /// returned as an index into `formats`.
    pub fn subscription_of(&self, cf_index: usize) -> Option<usize> {
        self.formats
            .iter()
            .position(|sf| sf.subscribers.contains(&cf_index))
    }
}

/// The §4.3 coalescer.
pub struct Coalescer<'a> {
    profiler: &'a Profiler,
    coding_space: CodingSpace,
    strategy: CoalesceStrategy,
    ingest_budget_cores: Option<f64>,
    max_merges: Option<usize>,
}

impl<'a> Coalescer<'a> {
    /// A coalescer with the paper's defaults (heuristic selection, full
    /// coding space, no ingestion budget).
    pub fn new(profiler: &'a Profiler) -> Self {
        Coalescer {
            profiler,
            coding_space: CodingSpace::full(),
            strategy: CoalesceStrategy::Heuristic,
            ingest_budget_cores: None,
            max_merges: None,
        }
    }

    /// Limit the number of pairwise merges (0 disables coalescing entirely,
    /// which is how the N→N baseline is produced).
    pub fn with_max_merges(mut self, max_merges: usize) -> Self {
        self.max_merges = Some(max_merges);
        self
    }

    /// Use a specific pair-selection strategy.
    pub fn with_strategy(mut self, strategy: CoalesceStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Impose an ingestion budget in CPU cores per stream.
    pub fn with_ingest_budget(mut self, cores: Option<f64>) -> Self {
        self.ingest_budget_cores = cores;
        self
    }

    /// Restrict the coding space.
    pub fn with_coding_space(mut self, space: CodingSpace) -> Self {
        self.coding_space = space;
        self
    }

    // -----------------------------------------------------------------
    // Coding selection
    // -----------------------------------------------------------------

    /// Choose the smallest-storage coding option for `fidelity` whose
    /// retrieval speed satisfies every subscriber, profiling candidates
    /// through the (memoising) profiler. Falls back to RAW.
    fn choose_coding(
        &self,
        fidelity: Fidelity,
        subscribers: &[usize],
        cfs: &[DerivedCf],
    ) -> (CodingOption, vstore_profiler::StorageProfile) {
        let mut best: Option<(CodingOption, vstore_profiler::StorageProfile)> = None;
        for coding in self.coding_space.iter().filter(|c| !c.is_raw()) {
            let format = StorageFormat::new(fidelity, coding);
            let profile = self.profiler.profile_storage(format);
            let adequate = subscribers.iter().all(|&i| {
                let cf = &cfs[i];
                self.profiler
                    .retrieval_speed(&format, cf.fidelity.sampling)
                    .factor()
                    >= cf.consumption_speed.factor()
            });
            if !adequate {
                continue;
            }
            let better = match &best {
                None => true,
                Some((_, b)) => profile.bytes_per_video_second < b.bytes_per_video_second,
            };
            if better {
                best = Some((coding, profile));
            }
        }
        match best {
            Some(found) => found,
            None => {
                // Even the cheapest-to-decode encoded option is too slow for
                // some subscriber: bypass coding and store raw frames.
                let format = StorageFormat::new(fidelity, CodingOption::Raw);
                (CodingOption::Raw, self.profiler.profile_storage(format))
            }
        }
    }

    fn build_sf(
        &self,
        fidelity: Fidelity,
        subscribers: Vec<usize>,
        cfs: &[DerivedCf],
        is_golden: bool,
    ) -> DerivedSf {
        let (coding, profile) = if is_golden {
            // The golden format always uses the smallest coding (§4.3); its
            // consumers are the slow, high-accuracy ones for which the
            // smallest coding is adequate anyway — and if not, the normal
            // adequacy re-check below upgrades it.
            let format = StorageFormat::new(fidelity, CodingOption::SMALLEST);
            let adequate = subscribers.iter().all(|&i| {
                let cf = &cfs[i];
                self.profiler
                    .retrieval_speed(&format, cf.fidelity.sampling)
                    .factor()
                    >= cf.consumption_speed.factor()
            });
            if adequate || subscribers.is_empty() {
                (
                    CodingOption::SMALLEST,
                    self.profiler.profile_storage(format),
                )
            } else {
                self.choose_coding(fidelity, &subscribers, cfs)
            }
        } else {
            self.choose_coding(fidelity, &subscribers, cfs)
        };
        DerivedSf {
            format: StorageFormat::new(fidelity, coding),
            subscribers,
            bytes_per_video_second: profile.bytes_per_video_second,
            encode_cores: profile.encode_cores,
            sequential_retrieval_speed: profile.sequential_retrieval_speed,
            is_golden,
        }
    }

    // -----------------------------------------------------------------
    // Main derivation
    // -----------------------------------------------------------------

    /// Derive the storage format set for the given consumption formats.
    pub fn derive(&self, cfs: &[DerivedCf]) -> Result<CoalesceResult> {
        if cfs.is_empty() {
            return Err(VStoreError::invalid_argument(
                "cannot derive storage formats from an empty consumer set",
            ));
        }
        // Golden fidelity: knob-wise maximum over all CFs.
        let golden_fidelity =
            Fidelity::join_all(cfs.iter().map(|cf| &cf.fidelity)).expect("non-empty CF list"); // vstore-lint: allow(no-unwrap) — emptiness rejected above

        // Initial SF set: golden + one SF per unique CF fidelity.
        let mut formats: Vec<DerivedSf> = Vec::new();
        formats.push(self.build_sf(golden_fidelity, Vec::new(), cfs, true));
        for (i, cf) in cfs.iter().enumerate() {
            if let Some(existing) = formats
                .iter_mut()
                .skip(1)
                .find(|sf| sf.format.fidelity == cf.fidelity)
            {
                existing.subscribers.push(i);
                continue;
            }
            formats.push(self.build_sf(cf.fidelity, vec![i], cfs, false));
        }
        // Re-choose coding for the non-golden SFs now that all subscribers
        // are known.
        for sf in formats.iter_mut().skip(1) {
            let subs = sf.subscribers.clone();
            *sf = self.build_sf(sf.format.fidelity, subs, cfs, false);
        }

        let mut rounds = 0usize;
        let merge_allowed = |rounds: usize| self.max_merges.map(|m| rounds < m).unwrap_or(true);
        // Phase 1: free merges — merge while some pair does not increase the
        // total storage cost.
        while merge_allowed(rounds) {
            match self.best_merge(&formats, cfs) {
                Some((a, b, merged, saving)) if saving >= 0 => {
                    self.apply_merge(&mut formats, a, b, merged);
                    rounds += 1;
                }
                _ => break,
            }
        }
        // Phase 2: if an ingestion budget is imposed and exceeded, keep
        // merging at the expense of storage until it is met (or no pairs
        // remain).
        if let Some(budget) = self.ingest_budget_cores {
            while merge_allowed(rounds) && Self::total_cores(&formats) > budget && formats.len() > 1
            {
                match self.best_merge(&formats, cfs) {
                    Some((a, b, merged, _)) => {
                        self.apply_merge(&mut formats, a, b, merged);
                        rounds += 1;
                    }
                    None => break,
                }
            }
        }

        let within = self
            .ingest_budget_cores
            .map(|budget| Self::total_cores(&formats) <= budget + 1e-9)
            .unwrap_or(true);
        Ok(CoalesceResult {
            total_bytes_per_video_second: formats.iter().map(|f| f.bytes_per_video_second).sum(),
            total_ingest_cores: Self::total_cores(&formats),
            rounds,
            within_ingest_budget: within,
            formats,
        })
    }

    fn total_cores(formats: &[DerivedSf]) -> f64 {
        formats.iter().map(|f| f.encode_cores).sum()
    }

    /// Find the best pair to merge under the active strategy. Returns the
    /// two indices, the merged format, and the storage *saving* in bytes
    /// (negative when the merge grows storage).
    fn best_merge(
        &self,
        formats: &[DerivedSf],
        cfs: &[DerivedCf],
    ) -> Option<(usize, usize, DerivedSf, i64)> {
        let mut best: Option<(usize, usize, DerivedSf, i64, f64)> = None;
        for a in 0..formats.len() {
            for b in (a + 1)..formats.len() {
                // Merging into the golden format keeps its identity.
                let is_golden = formats[a].is_golden || formats[b].is_golden;
                let merged_fidelity = formats[a].format.fidelity.join(&formats[b].format.fidelity);
                let mut subscribers = formats[a].subscribers.clone();
                subscribers.extend_from_slice(&formats[b].subscribers);
                let merged = self.build_sf(merged_fidelity, subscribers, cfs, is_golden);
                // A merge is only admissible when the merged format still
                // retrieves fast enough for every subscriber (R2) — the RAW
                // fallback of `choose_coding` cannot always guarantee that
                // once the merged fidelity is much richer than a fast
                // consumer's own format.
                let adequate = merged.subscribers.iter().all(|&i| {
                    let cf = &cfs[i];
                    self.profiler
                        .retrieval_speed(&merged.format, cf.fidelity.sampling)
                        .factor()
                        >= cf.consumption_speed.factor()
                });
                if !adequate {
                    continue;
                }
                let before = formats[a].bytes_per_video_second.bytes() as i64
                    + formats[b].bytes_per_video_second.bytes() as i64;
                let saving = before - merged.bytes_per_video_second.bytes() as i64;
                let metric = match self.strategy {
                    // Heuristic: maximise the storage saving.
                    CoalesceStrategy::Heuristic => saving as f64,
                    // Distance-based: minimise knob distance (flip the sign so
                    // "larger is better" below).
                    CoalesceStrategy::DistanceBased => {
                        -knob_distance(&formats[a].format.fidelity, &formats[b].format.fidelity)
                    }
                };
                let better = match &best {
                    None => true,
                    Some((.., best_metric)) => metric > *best_metric,
                };
                if better {
                    best = Some((a, b, merged, saving, metric));
                }
            }
        }
        best.map(|(a, b, merged, saving, _)| (a, b, merged, saving))
    }

    fn apply_merge(&self, formats: &mut Vec<DerivedSf>, a: usize, b: usize, merged: DerivedSf) {
        // Remove the higher index first so the lower index stays valid.
        let (first, second) = if a < b { (a, b) } else { (b, a) };
        formats.remove(second);
        formats.remove(first);
        if merged.is_golden {
            formats.insert(0, merged);
        } else {
            formats.push(merged);
        }
    }
}

/// Normalised Euclidean distance between two fidelity options' knob ranks
/// (the §6.4 distance-based selection metric).
pub fn knob_distance(a: &Fidelity, b: &Fidelity) -> f64 {
    fn norm(rank: usize, count: usize) -> f64 {
        if count <= 1 {
            0.0
        } else {
            rank as f64 / (count - 1) as f64
        }
    }
    let dq = norm(a.quality.rank(), 4) - norm(b.quality.rank(), 4);
    let dc = norm(a.crop.rank(), 3) - norm(b.crop.rank(), 3);
    let dr = norm(a.resolution.rank(), 10) - norm(b.resolution.rank(), 10);
    let ds = norm(a.sampling.rank(), 5) - norm(b.sampling.rank(), 5);
    (dq * dq + dc * dc + dr * dr + ds * ds).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstore_ops::OperatorLibrary;
    use vstore_profiler::ProfilerConfig;
    use vstore_sim::CodingCostModel;
    use vstore_types::{
        Consumer, CropFactor, FrameSampling, ImageQuality, OperatorKind, Resolution,
    };

    fn profiler() -> Profiler {
        Profiler::new(
            OperatorLibrary::paper_testbed(),
            CodingCostModel::paper_testbed(),
            ProfilerConfig::fast_test(),
        )
    }

    fn cf(
        op: OperatorKind,
        target: f64,
        q: ImageQuality,
        c: CropFactor,
        r: Resolution,
        s: FrameSampling,
        speed: f64,
    ) -> DerivedCf {
        DerivedCf {
            consumer: Consumer::new(op, target),
            fidelity: Fidelity::new(q, c, r, s),
            accuracy: target,
            consumption_speed: Speed(speed),
        }
    }

    fn sample_cfs() -> Vec<DerivedCf> {
        vec![
            // A slow, accurate NN consumer needing rich fidelity.
            cf(
                OperatorKind::FullNN,
                0.95,
                ImageQuality::Good,
                CropFactor::C100,
                Resolution::R600,
                FrameSampling::S2_3,
                5.0,
            ),
            // A License consumer at medium fidelity.
            cf(
                OperatorKind::License,
                0.9,
                ImageQuality::Best,
                CropFactor::C100,
                Resolution::R540,
                FrameSampling::S1_2,
                20.0,
            ),
            // Near-identical License consumer (should coalesce freely).
            cf(
                OperatorKind::License,
                0.8,
                ImageQuality::Good,
                CropFactor::C100,
                Resolution::R540,
                FrameSampling::S1_6,
                60.0,
            ),
            // A very fast, low-fidelity Motion consumer (likely RAW).
            cf(
                OperatorKind::Motion,
                0.9,
                ImageQuality::Bad,
                CropFactor::C75,
                Resolution::R180,
                FrameSampling::S1_30,
                25_000.0,
            ),
            // A fast Diff consumer.
            cf(
                OperatorKind::Diff,
                0.9,
                ImageQuality::Best,
                CropFactor::C75,
                Resolution::R100,
                FrameSampling::S2_3,
                4_000.0,
            ),
        ]
    }

    #[test]
    fn golden_format_exists_and_is_richest() {
        let p = profiler();
        let result = Coalescer::new(&p).derive(&sample_cfs()).unwrap();
        let golden = &result.formats[0];
        assert!(golden.is_golden);
        for sf in &result.formats {
            assert!(golden.format.fidelity.richer_or_equal(&sf.format.fidelity));
        }
        assert_eq!(golden.format.coding, CodingOption::SMALLEST);
    }

    #[test]
    fn every_consumer_is_served_with_satisfiable_fidelity_and_speed() {
        let p = profiler();
        let cfs = sample_cfs();
        let result = Coalescer::new(&p).derive(&cfs).unwrap();
        for (i, cf) in cfs.iter().enumerate() {
            let sf_idx = result
                .subscription_of(i)
                .expect("every CF subscribes somewhere");
            let sf = &result.formats[sf_idx];
            // R1: satisfiable fidelity.
            assert!(
                sf.format.fidelity.richer_or_equal(&cf.fidelity),
                "R1 violated for CF {i}"
            );
            // R2: adequate retrieval speed.
            let retrieval = p.retrieval_speed(&sf.format, cf.fidelity.sampling);
            assert!(
                retrieval.factor() >= cf.consumption_speed.factor(),
                "R2 violated for CF {i}: retrieval {retrieval} < consumption {}",
                cf.consumption_speed
            );
        }
    }

    #[test]
    fn coalescing_reduces_format_count_below_cf_count() {
        let p = profiler();
        let cfs = sample_cfs();
        let result = Coalescer::new(&p).derive(&cfs).unwrap();
        assert!(result.rounds > 0, "no coalescing happened");
        assert!(
            result.formats.len() <= cfs.len(),
            "{} formats for {} CFs",
            result.formats.len(),
            cfs.len()
        );
    }

    #[test]
    fn very_fast_consumers_get_raw_storage() {
        let p = profiler();
        let cfs = sample_cfs();
        let result = Coalescer::new(&p).derive(&cfs).unwrap();
        // The 25 000× Motion consumer cannot be fed from any encoded format.
        let sf_idx = result.subscription_of(3).unwrap();
        assert!(
            result.formats[sf_idx].format.coding.is_raw(),
            "expected RAW for the fastest consumer, got {}",
            result.formats[sf_idx].format.coding
        );
    }

    #[test]
    fn ingest_budget_forces_more_coalescing() {
        let p = profiler();
        let cfs = sample_cfs();
        let unbudgeted = Coalescer::new(&p).derive(&cfs).unwrap();
        let budgeted = Coalescer::new(&p)
            .with_ingest_budget(Some(unbudgeted.total_ingest_cores * 0.6))
            .derive(&cfs)
            .unwrap();
        assert!(budgeted.total_ingest_cores <= unbudgeted.total_ingest_cores + 1e-9);
        assert!(budgeted.formats.len() <= unbudgeted.formats.len());
    }

    #[test]
    fn distance_based_is_valid_but_not_cheaper_than_heuristic() {
        let p = profiler();
        let cfs = sample_cfs();
        let heuristic = Coalescer::new(&p).derive(&cfs).unwrap();
        let distance = Coalescer::new(&p)
            .with_strategy(CoalesceStrategy::DistanceBased)
            .with_ingest_budget(Some(heuristic.total_ingest_cores))
            .derive(&cfs)
            .unwrap();
        // Both must satisfy R1/R2 (checked via subscription_of existing).
        for i in 0..cfs.len() {
            assert!(distance.subscription_of(i).is_some());
        }
        // §6.4: distance-based storage is at least as expensive.
        assert!(
            distance.total_bytes_per_video_second.bytes() + 1
                >= heuristic.total_bytes_per_video_second.bytes(),
            "distance {} vs heuristic {}",
            distance.total_bytes_per_video_second,
            heuristic.total_bytes_per_video_second
        );
    }

    #[test]
    fn empty_cf_list_is_rejected() {
        let p = profiler();
        assert!(Coalescer::new(&p).derive(&[]).is_err());
    }

    #[test]
    fn knob_distance_properties() {
        let a = Fidelity::INGESTION;
        let b = Fidelity::POOREST;
        assert_eq!(knob_distance(&a, &a), 0.0);
        assert!(
            knob_distance(&a, &b)
                > knob_distance(
                    &a,
                    &Fidelity::new(
                        ImageQuality::Best,
                        CropFactor::C100,
                        Resolution::R720,
                        FrameSampling::S2_3,
                    )
                )
        );
        assert!((knob_distance(&a, &b) - knob_distance(&b, &a)).abs() < 1e-12);
    }
}
