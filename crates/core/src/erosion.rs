//! Planning age-based data erosion (§4.4).
//!
//! As video ages, VStore deletes growing fractions of the non-golden storage
//! formats. Consumers that hit a deleted segment fall back along the
//! richer-than tree to an ancestor format (ultimately the golden format),
//! which keeps their accuracy intact but decays their effective speed. The
//! plan chooses, per age, how much of each format to delete so that the
//! *overall* (max-min fair) relative consumer speed follows a power-law
//! decay whose factor `k` is the smallest that brings the accumulated
//! storage under budget.

use crate::coalesce::DerivedSf;
use std::collections::BTreeMap;
use vstore_profiler::Profiler;
use vstore_types::{
    power_law_target, ByteSize, ErosionPlan, ErosionStep, FormatId, Fraction, Result, Speed,
    VStoreError,
};

/// Everything the erosion planner needs to know about one consumer.
#[derive(Debug, Clone, PartialEq)]
struct ConsumerLane {
    /// The consumer's consumption speed on its consumption format.
    consumption_speed: Speed,
    /// Format indices of the fallback chain: position 0 is the home format
    /// the consumer subscribes to, the last entry is the golden root.
    chain: Vec<usize>,
    /// Retrieval speed of each chain level at this consumer's sampling rate.
    chain_speeds: Vec<Speed>,
}

impl ConsumerLane {
    /// Relative speed of this consumer given the cumulative deleted fraction
    /// of every format (indexed by format): the ratio of its decayed
    /// effective speed to its original speed, the paper's
    /// `α/((1−p)·α + p)` generalised to a multi-level fallback chain.
    fn relative_speed(&self, deleted_by_format: &[f64]) -> f64 {
        let original = self.consumption_speed.factor().max(1e-9);
        let mut remaining = 1.0_f64;
        let mut expected_time = 0.0_f64;
        for (level, (&fmt_idx, speed)) in
            self.chain.iter().zip(self.chain_speeds.iter()).enumerate()
        {
            let is_last = level + 1 == self.chain.len();
            let available = if is_last {
                1.0 // the golden root is never eroded
            } else {
                1.0 - deleted_by_format.get(fmt_idx).copied().unwrap_or(0.0)
            };
            let p_here = remaining * available.clamp(0.0, 1.0);
            // Falling back may make retrieval the bottleneck.
            let effective = speed.factor().min(original).max(1e-9);
            expected_time += p_here / effective;
            remaining -= p_here;
            if remaining <= 1e-12 {
                break;
            }
        }
        if remaining > 1e-12 {
            expected_time += remaining / original;
        }
        let decayed = 1.0 / expected_time.max(1e-12);
        (decayed / original).clamp(0.0, 1.0)
    }

    /// `true` if the given format participates in this consumer's fallback
    /// chain.
    fn uses_format(&self, format_idx: usize) -> bool {
        self.chain.contains(&format_idx)
    }
}

/// Inputs to the erosion planner.
#[derive(Debug, Clone)]
pub struct ErosionInputs<'a> {
    /// The derived storage formats (golden first), as produced by the
    /// coalescer.
    pub formats: &'a [DerivedSf],
    /// The ids assigned to those formats in the final configuration, in the
    /// same order.
    pub format_ids: &'a [FormatId],
    /// Per-consumer `(format index, consumption fidelity sampling, speed)`
    /// triples — the subscriptions.
    pub consumers: &'a [(usize, vstore_types::FrameSampling, Speed)],
    /// Video lifespan in days.
    pub lifespan_days: u32,
    /// Storage budget for one stream over its full lifespan.
    pub storage_budget: ByteSize,
}

/// Build the richer-than fallback parent of each format: the cheapest format
/// whose fidelity is richer-or-equal (excluding itself); the golden format
/// (index 0) is its own parent (the root).
fn fallback_parents(formats: &[DerivedSf]) -> Vec<usize> {
    formats
        .iter()
        .enumerate()
        .map(|(i, sf)| {
            if i == 0 {
                return 0;
            }
            let mut best: Option<(usize, u64)> = None;
            for (j, other) in formats.iter().enumerate() {
                if i == j || !other.format.fidelity.richer_or_equal(&sf.format.fidelity) {
                    continue;
                }
                let cost = other.bytes_per_video_second.bytes();
                if best.map(|(_, c)| cost < c).unwrap_or(true) {
                    best = Some((j, cost));
                }
            }
            best.map(|(j, _)| j).unwrap_or(0)
        })
        .collect()
}

/// The fallback chain of a format: itself, then parents up to the golden
/// root.
fn fallback_chain(parents: &[usize], start: usize) -> Vec<usize> {
    let mut chain = vec![start];
    let mut current = start;
    while current != 0 {
        let parent = parents[current];
        if chain.contains(&parent) {
            break;
        }
        chain.push(parent);
        current = parent;
    }
    if *chain.last().unwrap_or(&0) != 0 {
        chain.push(0);
    }
    chain
}

/// Build the consumer lanes: for each consumer, its fallback chain and the
/// retrieval speed of every chain level at that consumer's sampling rate.
fn build_lanes(
    profiler: &Profiler,
    inputs: &ErosionInputs<'_>,
    parents: &[usize],
) -> Vec<ConsumerLane> {
    inputs
        .consumers
        .iter()
        .map(|&(home, sampling, speed)| {
            let chain = fallback_chain(parents, home);
            let chain_speeds = chain
                .iter()
                .map(|&idx| profiler.retrieval_speed(&inputs.formats[idx].format, sampling))
                .collect();
            ConsumerLane {
                consumption_speed: speed,
                chain,
                chain_speeds,
            }
        })
        .collect()
}

/// Storage consumed by one stream over its lifespan under a given erosion
/// schedule (`deleted_by_age[age-1][format]` = cumulative deleted fraction).
fn total_storage(
    formats: &[DerivedSf],
    deleted_by_age: &[Vec<f64>],
    lifespan_days: u32,
) -> ByteSize {
    let seconds_per_day = 86_400.0;
    let mut total = 0u64;
    for age in 0..lifespan_days as usize {
        let deleted = &deleted_by_age[age.min(deleted_by_age.len().saturating_sub(1))];
        for (idx, sf) in formats.iter().enumerate() {
            let retain = if idx == 0 { 1.0 } else { 1.0 - deleted[idx] };
            total += (sf.bytes_per_video_second.bytes() as f64 * seconds_per_day * retain) as u64;
        }
    }
    ByteSize(total)
}

/// Plan data erosion. Returns a no-op plan when the un-eroded storage
/// already fits the budget, otherwise the gentlest power-law decay that
/// fits; errs when even deleting everything but the golden format cannot fit
/// the budget.
pub fn plan_erosion(profiler: &Profiler, inputs: &ErosionInputs<'_>) -> Result<ErosionPlan> {
    if inputs.formats.is_empty() || inputs.format_ids.len() != inputs.formats.len() {
        return Err(VStoreError::invalid_argument("formats and ids must align"));
    }
    let lifespan = inputs.lifespan_days.max(1);
    let parents = fallback_parents(inputs.formats);
    let lanes = build_lanes(profiler, inputs, &parents);

    // Pmin: the overall speed when every non-golden format is gone.
    let all_deleted: Vec<f64> = (0..inputs.formats.len())
        .map(|i| if i == 0 { 0.0 } else { 1.0 })
        .collect();
    let p_min = if lanes.is_empty() {
        1.0
    } else {
        lanes
            .iter()
            .map(|l| l.relative_speed(&all_deleted))
            .fold(1.0, f64::min)
    };

    // Feasibility: even with maximal erosion, does storage fit?
    let max_eroded: Vec<Vec<f64>> = (0..lifespan)
        .map(|age| {
            if age == 0 {
                vec![0.0; inputs.formats.len()]
            } else {
                all_deleted.clone()
            }
        })
        .collect();
    let minimum_possible = total_storage(inputs.formats, &max_eroded, lifespan);
    if minimum_possible > inputs.storage_budget {
        return Err(VStoreError::BudgetUnsatisfiable(format!(
            "storage budget {} cannot hold even maximally eroded video ({} required)",
            inputs.storage_budget, minimum_possible
        )));
    }

    // No erosion needed?
    let no_erosion: Vec<Vec<f64>> = vec![vec![0.0; inputs.formats.len()]; lifespan as usize];
    if total_storage(inputs.formats, &no_erosion, lifespan) <= inputs.storage_budget {
        return Ok(ErosionPlan::no_erosion(lifespan, p_min));
    }

    // Binary search the smallest decay factor k whose plan fits the budget.
    let plan_for = |k: f64| -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut deleted = vec![0.0; inputs.formats.len()];
        let mut by_age = Vec::with_capacity(lifespan as usize);
        let mut overall_by_age = Vec::with_capacity(lifespan as usize);
        for age in 1..=lifespan {
            let target = power_law_target(k, p_min, age);
            // Delete, fairly, until the overall speed drops to the target.
            let mut guard = 0;
            loop {
                let overall: f64 = lanes
                    .iter()
                    .map(|l| l.relative_speed(&deleted))
                    .fold(1.0, f64::min);
                if overall <= target + 1e-9 || guard > 10_000 {
                    break;
                }
                guard += 1;
                // The consumer currently worst off.
                let (worst_idx, worst_speed) = lanes
                    .iter()
                    .enumerate()
                    .map(|(i, l)| (i, l.relative_speed(&deleted)))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("at least one lane"); // vstore-lint: allow(no-unwrap) — lanes mirror the non-empty format list
                                                  // Candidate formats: non-golden, not fully deleted; prefer the
                                                  // one with the least impact on the worst consumer.
                let mut candidate: Option<(usize, f64)> = None;
                for idx in 1..inputs.formats.len() {
                    if deleted[idx] >= 1.0 - 1e-9 {
                        continue;
                    }
                    let mut probe = deleted.clone();
                    probe[idx] = (probe[idx] + 0.05).min(1.0);
                    let impact = worst_speed - lanes[worst_idx].relative_speed(&probe);
                    let better = match candidate {
                        None => true,
                        Some((_, best_impact)) => impact < best_impact,
                    };
                    if better {
                        candidate = Some((idx, impact));
                    }
                }
                let (chosen, _) = match candidate {
                    Some(c) => c,
                    None => break, // everything non-golden already gone
                };
                // Delete in 5 % steps until another consumer drops below the
                // worst one (max-min fairness) or the target is reached.
                loop {
                    deleted[chosen] = (deleted[chosen] + 0.05).min(1.0);
                    let overall: f64 = lanes
                        .iter()
                        .map(|l| l.relative_speed(&deleted))
                        .fold(1.0, f64::min);
                    let another_below = lanes
                        .iter()
                        .enumerate()
                        .any(|(i, l)| i != worst_idx && l.relative_speed(&deleted) < worst_speed);
                    if overall <= target + 1e-9
                        || another_below
                        || deleted[chosen] >= 1.0 - 1e-9
                        || lanes.iter().all(|l| !l.uses_format(chosen))
                    {
                        break;
                    }
                }
            }
            by_age.push(deleted.clone());
            overall_by_age.push(
                lanes
                    .iter()
                    .map(|l| l.relative_speed(&deleted))
                    .fold(1.0, f64::min),
            );
        }
        (by_age, overall_by_age)
    };

    let mut lo = 0.0f64;
    let mut hi = 8.0f64;
    let mut best: Option<(f64, Vec<Vec<f64>>, Vec<f64>)> = None;
    for _ in 0..24 {
        let mid = (lo + hi) / 2.0;
        let (by_age, overall) = plan_for(mid);
        if total_storage(inputs.formats, &by_age, lifespan) <= inputs.storage_budget {
            best = Some((mid, by_age, overall));
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let (k, by_age, overall) = match best {
        Some(found) => found,
        None => {
            // Fall back to the most aggressive decay examined.
            let (by_age, overall) = plan_for(hi);
            (hi, by_age, overall)
        }
    };

    let steps = by_age
        .iter()
        .zip(overall.iter())
        .enumerate()
        .map(|(i, (deleted, overall))| ErosionStep {
            age_days: i as u32 + 1,
            deleted: deleted
                .iter()
                .enumerate()
                .filter(|&(idx, frac)| idx != 0 && *frac > 0.0)
                .map(|(idx, frac)| (inputs.format_ids[idx], Fraction::new(*frac)))
                .collect::<BTreeMap<_, _>>(),
            overall_relative_speed: *overall,
        })
        .collect();

    Ok(ErosionPlan {
        decay_factor: k,
        p_min,
        lifespan_days: lifespan,
        steps,
    })
}

/// Total storage over the lifespan implied by an erosion plan, for a given
/// format list (golden is never eroded).
pub fn storage_under_plan(
    formats: &[DerivedSf],
    format_ids: &[FormatId],
    plan: &ErosionPlan,
) -> ByteSize {
    let seconds_per_day = 86_400.0;
    let mut total = 0u64;
    for age in 1..=plan.lifespan_days {
        let step = plan.step(age);
        for (idx, sf) in formats.iter().enumerate() {
            let deleted = if idx == 0 {
                0.0
            } else {
                step.map(|s| s.deleted_fraction(format_ids[idx]).value())
                    .unwrap_or(0.0)
            };
            total += (sf.bytes_per_video_second.bytes() as f64 * seconds_per_day * (1.0 - deleted))
                as u64;
        }
    }
    ByteSize(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cf_search::DerivedCf;
    use crate::coalesce::Coalescer;
    use vstore_ops::OperatorLibrary;
    use vstore_profiler::ProfilerConfig;
    use vstore_sim::CodingCostModel;
    use vstore_types::{
        Consumer, CropFactor, Fidelity, FrameSampling, ImageQuality, OperatorKind, Resolution,
    };

    fn profiler() -> Profiler {
        Profiler::new(
            OperatorLibrary::paper_testbed(),
            CodingCostModel::paper_testbed(),
            ProfilerConfig::fast_test(),
        )
    }

    fn derived_formats(p: &Profiler) -> (Vec<DerivedSf>, Vec<(usize, FrameSampling, Speed)>) {
        let cfs = vec![
            DerivedCf {
                consumer: Consumer::new(OperatorKind::FullNN, 0.95),
                fidelity: Fidelity::new(
                    ImageQuality::Good,
                    CropFactor::C100,
                    Resolution::R600,
                    FrameSampling::S2_3,
                ),
                accuracy: 0.95,
                consumption_speed: Speed(5.0),
            },
            DerivedCf {
                consumer: Consumer::new(OperatorKind::License, 0.8),
                fidelity: Fidelity::new(
                    ImageQuality::Good,
                    CropFactor::C100,
                    Resolution::R540,
                    FrameSampling::S1_6,
                ),
                accuracy: 0.8,
                consumption_speed: Speed(60.0),
            },
            DerivedCf {
                consumer: Consumer::new(OperatorKind::Motion, 0.9),
                fidelity: Fidelity::new(
                    ImageQuality::Bad,
                    CropFactor::C75,
                    Resolution::R180,
                    FrameSampling::S1_30,
                ),
                accuracy: 0.9,
                consumption_speed: Speed(20_000.0),
            },
        ];
        let result = Coalescer::new(p).derive(&cfs).unwrap();
        let consumers: Vec<(usize, FrameSampling, Speed)> = cfs
            .iter()
            .enumerate()
            .map(|(i, cf)| {
                (
                    result.subscription_of(i).unwrap(),
                    cf.fidelity.sampling,
                    cf.consumption_speed,
                )
            })
            .collect();
        (result.formats, consumers)
    }

    fn ids(n: usize) -> Vec<FormatId> {
        (0..n as u32).map(FormatId).collect()
    }

    #[test]
    fn generous_budget_means_no_erosion() {
        let p = profiler();
        let (formats, consumers) = derived_formats(&p);
        let format_ids = ids(formats.len());
        let plan = plan_erosion(
            &p,
            &ErosionInputs {
                formats: &formats,
                format_ids: &format_ids,
                consumers: &consumers,
                lifespan_days: 10,
                storage_budget: ByteSize::from_tib(100.0),
            },
        )
        .unwrap();
        assert!(plan.is_no_op());
        assert_eq!(plan.decay_factor, 0.0);
    }

    #[test]
    fn tight_budget_produces_decaying_plan_under_budget() {
        let p = profiler();
        let (formats, consumers) = derived_formats(&p);
        let format_ids = ids(formats.len());
        let unconstrained: u64 = formats
            .iter()
            .map(|f| f.bytes_per_video_second.bytes() * 86_400 * 10)
            .sum();
        let budget = ByteSize(unconstrained * 8 / 10);
        let plan = plan_erosion(
            &p,
            &ErosionInputs {
                formats: &formats,
                format_ids: &format_ids,
                consumers: &consumers,
                lifespan_days: 10,
                storage_budget: budget,
            },
        )
        .unwrap();
        assert!(!plan.is_no_op());
        assert!(plan.decay_factor > 0.0);
        // Overall speed is non-increasing with age and bounded by [Pmin, 1].
        let mut prev = 1.0 + 1e-9;
        for step in &plan.steps {
            assert!(step.overall_relative_speed <= prev + 1e-9);
            assert!(step.overall_relative_speed >= plan.p_min - 1e-9);
            prev = step.overall_relative_speed;
        }
        // Deleted fractions only grow with age and never touch the golden
        // format.
        for w in plan.steps.windows(2) {
            for (id, frac) in &w[0].deleted {
                assert!(w[1].deleted_fraction(*id).value() + 1e-9 >= frac.value());
                assert!(!id.is_golden());
            }
        }
        // The plan meets the budget.
        assert!(storage_under_plan(&formats, &format_ids, &plan) <= budget);
    }

    #[test]
    fn impossible_budget_is_rejected() {
        let p = profiler();
        let (formats, consumers) = derived_formats(&p);
        let format_ids = ids(formats.len());
        let err = plan_erosion(
            &p,
            &ErosionInputs {
                formats: &formats,
                format_ids: &format_ids,
                consumers: &consumers,
                lifespan_days: 10,
                storage_budget: ByteSize::from_mib(1.0),
            },
        )
        .unwrap_err();
        assert!(matches!(err, VStoreError::BudgetUnsatisfiable(_)));
    }

    #[test]
    fn tighter_budgets_need_steeper_decay() {
        let p = profiler();
        let (formats, consumers) = derived_formats(&p);
        let format_ids = ids(formats.len());
        let unconstrained: u64 = formats
            .iter()
            .map(|f| f.bytes_per_video_second.bytes() * 86_400 * 10)
            .sum();
        let plan = |fraction: f64| {
            plan_erosion(
                &p,
                &ErosionInputs {
                    formats: &formats,
                    format_ids: &format_ids,
                    consumers: &consumers,
                    lifespan_days: 10,
                    storage_budget: ByteSize((unconstrained as f64 * fraction) as u64),
                },
            )
            .unwrap()
        };
        let loose = plan(0.95);
        let tight = plan(0.80);
        assert!(tight.decay_factor >= loose.decay_factor);
    }

    #[test]
    fn fallback_parents_form_a_tree_rooted_at_golden() {
        let p = profiler();
        let (formats, _) = derived_formats(&p);
        let parents = fallback_parents(&formats);
        assert_eq!(parents[0], 0);
        for (i, &parent) in parents.iter().enumerate().skip(1) {
            assert_ne!(parent, i, "format {i} is its own parent");
            assert!(
                formats[parent]
                    .format
                    .fidelity
                    .richer_or_equal(&formats[i].format.fidelity),
                "parent of {i} is not richer"
            );
            let chain = fallback_chain(&parents, i);
            assert_eq!(
                *chain.last().unwrap(),
                0,
                "chain of {i} does not reach golden"
            );
        }
    }
}
