//! The configuration engine: backward derivation end to end, plus the
//! alternative configurations the paper compares against (§6.2).

use crate::budget::adapt_to_ingest_budget;
use crate::cf_search::{CfSearch, DerivedCf};
use crate::coalesce::{CoalesceResult, CoalesceStrategy, Coalescer, DerivedSf};
use crate::erosion::{plan_erosion, ErosionInputs};
use std::collections::BTreeMap;
use std::sync::Arc;
use vstore_profiler::Profiler;
use vstore_types::{
    ByteSize, CodingOption, CodingSpace, Configuration, Consumer, ConsumptionFormat, ErosionPlan,
    Fidelity, FidelitySpace, FormatId, Result, Speed, StorageFormat, Subscription,
};

/// Alternative configurations used as baselines in §6.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alternative {
    /// `1→1`: store only the golden format; every consumer also consumes the
    /// golden fidelity (a classic analytics-oblivious video database).
    OneToOne,
    /// `1→N`: store only the golden format but give each consumer its
    /// VStore-derived consumption format (configuring consumption but not
    /// storage) — retrieval of the golden format caps everyone's speed.
    OneToN,
    /// `N→N`: store one format per unique consumption format (no
    /// coalescing).
    NToN,
}

/// Options controlling a configuration derivation.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// The fidelity space searched for consumption formats.
    pub fidelity_space: FidelitySpace,
    /// The coding space considered for storage formats.
    pub coding_space: CodingSpace,
    /// The coalescing pair-selection strategy.
    pub strategy: CoalesceStrategy,
    /// Ingestion budget in CPU cores per stream, if any.
    pub ingest_budget_cores: Option<f64>,
    /// Storage budget per stream over its lifespan, if any.
    pub storage_budget: Option<ByteSize>,
    /// Video lifespan in days.
    pub lifespan_days: u32,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            fidelity_space: FidelitySpace::full(),
            coding_space: CodingSpace::full(),
            strategy: CoalesceStrategy::Heuristic,
            ingest_budget_cores: None,
            storage_budget: None,
            lifespan_days: 10,
        }
    }
}

/// The backward-derivation configuration engine.
pub struct ConfigurationEngine {
    profiler: Arc<Profiler>,
    options: EngineOptions,
}

impl ConfigurationEngine {
    /// An engine over the given profiler with the given options.
    pub fn new(profiler: Arc<Profiler>, options: EngineOptions) -> Self {
        ConfigurationEngine { profiler, options }
    }

    /// An engine with default options (full spaces, heuristic coalescing, no
    /// budgets, 10-day lifespan).
    pub fn with_defaults(profiler: Arc<Profiler>) -> Self {
        ConfigurationEngine::new(profiler, EngineOptions::default())
    }

    /// The profiler in use.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// The options in use.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    // -----------------------------------------------------------------
    // Step 1: consumption formats
    // -----------------------------------------------------------------

    /// Derive a consumption format for every consumer (§4.2).
    pub fn derive_consumption_formats(&self, consumers: &[Consumer]) -> Result<Vec<DerivedCf>> {
        let search = CfSearch::with_space(&self.profiler, self.options.fidelity_space.clone());
        consumers.iter().map(|&c| search.derive(c)).collect()
    }

    // -----------------------------------------------------------------
    // Step 2: storage formats
    // -----------------------------------------------------------------

    /// Coalesce consumption formats into storage formats (§4.3).
    pub fn derive_storage_formats(&self, cfs: &[DerivedCf]) -> Result<CoalesceResult> {
        Coalescer::new(&self.profiler)
            .with_strategy(self.options.strategy)
            .with_coding_space(self.options.coding_space.clone())
            .with_ingest_budget(self.options.ingest_budget_cores)
            .derive(cfs)
    }

    // -----------------------------------------------------------------
    // Full derivation
    // -----------------------------------------------------------------

    /// Run the full backward derivation for a consumer set and return a
    /// validated configuration.
    pub fn derive(&self, consumers: &[Consumer]) -> Result<Configuration> {
        if consumers.is_empty() {
            return Err(vstore_types::VStoreError::invalid_argument(
                "cannot derive a configuration for an empty consumer set",
            ));
        }
        let cfs = self.derive_consumption_formats(consumers)?;
        let mut coalesced = self.derive_storage_formats(&cfs)?;
        if let Some(budget) = self.options.ingest_budget_cores {
            if coalesced.total_ingest_cores > budget {
                let adapted = adapt_to_ingest_budget(&self.profiler, &coalesced.formats, budget)?;
                coalesced.total_ingest_cores = adapted.total_ingest_cores;
                coalesced.total_bytes_per_video_second =
                    ByteSize(adapted.total_bytes_per_video_second);
                coalesced.within_ingest_budget = adapted.within_budget;
                coalesced.formats = adapted.formats;
            }
        }
        let config = self.build_configuration(&cfs, &coalesced.formats)?;
        config.validate()?;
        Ok(config)
    }

    /// Build one of the §6.2 baseline configurations. These deliberately do
    /// not have to satisfy requirement R2 (that is the point of comparing
    /// against them), so they are not validated.
    pub fn derive_alternative(
        &self,
        consumers: &[Consumer],
        alternative: Alternative,
    ) -> Result<Configuration> {
        match alternative {
            Alternative::OneToOne => {
                let cfs: Vec<DerivedCf> = consumers
                    .iter()
                    .map(|&consumer| {
                        let profile = self
                            .profiler
                            .profile_consumer(consumer.op, Fidelity::INGESTION);
                        DerivedCf {
                            consumer,
                            fidelity: Fidelity::INGESTION,
                            accuracy: profile.accuracy,
                            consumption_speed: profile.consumption_speed,
                        }
                    })
                    .collect();
                let golden = self.golden_only_format(&cfs);
                self.build_configuration(&cfs, &[golden])
            }
            Alternative::OneToN => {
                let cfs = self.derive_consumption_formats(consumers)?;
                let golden = self.golden_only_format(&cfs);
                self.build_configuration(&cfs, &[golden])
            }
            Alternative::NToN => {
                let cfs = self.derive_consumption_formats(consumers)?;
                let result = Coalescer::new(&self.profiler)
                    .with_coding_space(self.options.coding_space.clone())
                    .with_max_merges(0)
                    .derive(&cfs)?;
                self.build_configuration(&cfs, &result.formats)
            }
        }
    }

    fn golden_only_format(&self, cfs: &[DerivedCf]) -> DerivedSf {
        let fidelity =
            Fidelity::join_all(cfs.iter().map(|cf| &cf.fidelity)).unwrap_or(Fidelity::INGESTION);
        let format = StorageFormat::new(fidelity, CodingOption::SMALLEST);
        let profile = self.profiler.profile_storage(format);
        DerivedSf {
            format,
            subscribers: (0..cfs.len()).collect(),
            bytes_per_video_second: profile.bytes_per_video_second,
            encode_cores: profile.encode_cores,
            sequential_retrieval_speed: profile.sequential_retrieval_speed,
            is_golden: true,
        }
    }

    /// Assemble a [`Configuration`] from derived consumption and storage
    /// formats, planning erosion when a storage budget is set.
    pub fn build_configuration(
        &self,
        cfs: &[DerivedCf],
        formats: &[DerivedSf],
    ) -> Result<Configuration> {
        let format_ids: Vec<FormatId> = formats
            .iter()
            .enumerate()
            .map(|(i, sf)| {
                if sf.is_golden {
                    FormatId::GOLDEN
                } else {
                    FormatId(i as u32)
                }
            })
            .collect();

        let mut storage_formats = BTreeMap::new();
        let mut retrieval_speeds = BTreeMap::new();
        for (sf, id) in formats.iter().zip(&format_ids) {
            storage_formats.insert(*id, sf.format);
            retrieval_speeds.insert(*id, sf.sequential_retrieval_speed);
        }

        let mut subscriptions = Vec::with_capacity(cfs.len());
        let mut erosion_consumers = Vec::with_capacity(cfs.len());
        for (i, cf) in cfs.iter().enumerate() {
            let sf_index = formats
                .iter()
                .position(|sf| sf.subscribers.contains(&i))
                .or_else(|| {
                    // Fall back to the cheapest format with satisfiable
                    // fidelity (used by the 1→1 / 1→N baselines whose single
                    // format serves everyone).
                    formats
                        .iter()
                        .position(|sf| sf.format.fidelity.richer_or_equal(&cf.fidelity))
                })
                .ok_or_else(|| {
                    vstore_types::VStoreError::FidelityUnsatisfiable(format!(
                        "no storage format can serve consumer {}",
                        cf.consumer
                    ))
                })?;
            let sf = &formats[sf_index];
            let retrieval_speed = self
                .profiler
                .retrieval_speed(&sf.format, cf.fidelity.sampling);
            subscriptions.push(Subscription {
                consumer: cf.consumer,
                consumption: ConsumptionFormat::new(cf.fidelity),
                consumption_speed: cf.consumption_speed,
                expected_accuracy: cf.accuracy,
                storage: format_ids[sf_index],
                retrieval_speed,
            });
            erosion_consumers.push((sf_index, cf.fidelity.sampling, cf.consumption_speed));
        }

        let erosion = match self.options.storage_budget {
            Some(budget) => plan_erosion(
                &self.profiler,
                &ErosionInputs {
                    formats,
                    format_ids: &format_ids,
                    consumers: &erosion_consumers,
                    lifespan_days: self.options.lifespan_days,
                    storage_budget: budget,
                },
            )?,
            None => ErosionPlan::no_erosion(self.options.lifespan_days, 0.0),
        };

        Ok(Configuration {
            storage_formats,
            retrieval_speeds,
            subscriptions,
            erosion,
        })
    }

    /// Total ingestion cost (cores) of a configuration on the profiling
    /// content.
    pub fn ingest_cores(&self, config: &Configuration) -> f64 {
        config
            .storage_formats
            .values()
            .map(|sf| self.profiler.profile_storage(*sf).encode_cores)
            .sum()
    }

    /// Total storage cost (bytes per video-second) of a configuration on the
    /// profiling content.
    pub fn storage_bytes_per_second(&self, config: &Configuration) -> ByteSize {
        config
            .storage_formats
            .values()
            .map(|sf| self.profiler.profile_storage(*sf).bytes_per_video_second)
            .sum()
    }

    /// The speed at which a consumer effectively runs under a configuration:
    /// the minimum of its consumption speed and the retrieval speed of the
    /// storage format it subscribes to.
    pub fn effective_consumer_speed(&self, config: &Configuration, consumer: &Consumer) -> Speed {
        config
            .subscription(consumer)
            .map(|sub| sub.consumption_speed.min(sub.retrieval_speed))
            .unwrap_or(Speed(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstore_ops::OperatorLibrary;
    use vstore_profiler::ProfilerConfig;
    use vstore_sim::CodingCostModel;
    use vstore_types::OperatorKind;

    fn profiler() -> Arc<Profiler> {
        Arc::new(Profiler::new(
            OperatorLibrary::paper_testbed(),
            CodingCostModel::paper_testbed(),
            ProfilerConfig::fast_test(),
        ))
    }

    fn small_consumer_set() -> Vec<Consumer> {
        vec![
            Consumer::new(OperatorKind::FullNN, 0.9),
            Consumer::new(OperatorKind::FullNN, 0.7),
            Consumer::new(OperatorKind::Motion, 0.9),
            Consumer::new(OperatorKind::License, 0.8),
            Consumer::new(OperatorKind::Diff, 0.9),
        ]
    }

    fn reduced_options() -> EngineOptions {
        EngineOptions {
            fidelity_space: FidelitySpace::reduced(),
            ..EngineOptions::default()
        }
    }

    #[test]
    fn full_derivation_produces_valid_configuration() {
        let engine = ConfigurationEngine::new(profiler(), reduced_options());
        let config = engine.derive(&small_consumer_set()).unwrap();
        config.validate().unwrap();
        assert!(config.golden().is_some());
        assert_eq!(config.subscriptions.len(), 5);
        // Every consumer meets its target accuracy.
        for sub in &config.subscriptions {
            assert!(sub.expected_accuracy + 1e-9 >= sub.consumer.accuracy.value());
        }
        // Coalescing produced fewer storage formats than consumers.
        assert!(config.storage_formats.len() <= 5);
    }

    #[test]
    fn one_to_one_keeps_single_format_and_full_accuracy() {
        let engine = ConfigurationEngine::new(profiler(), reduced_options());
        let config = engine
            .derive_alternative(&small_consumer_set(), Alternative::OneToOne)
            .unwrap();
        assert_eq!(config.storage_formats.len(), 1);
        for sub in &config.subscriptions {
            assert_eq!(sub.expected_accuracy, 1.0);
            assert_eq!(sub.consumption.fidelity, config.golden().unwrap().fidelity);
        }
    }

    #[test]
    fn one_to_n_bottlenecks_fast_consumers_on_retrieval() {
        let engine = ConfigurationEngine::new(profiler(), reduced_options());
        let consumers = small_consumer_set();
        let vstore = engine.derive(&consumers).unwrap();
        let one_to_n = engine
            .derive_alternative(&consumers, Alternative::OneToN)
            .unwrap();
        assert_eq!(one_to_n.storage_formats.len(), 1);
        // The fast Motion consumer is much slower under 1→N.
        let motion = Consumer::new(OperatorKind::Motion, 0.9);
        let vstore_speed = engine.effective_consumer_speed(&vstore, &motion);
        let baseline_speed = engine.effective_consumer_speed(&one_to_n, &motion);
        assert!(
            vstore_speed.factor() > baseline_speed.factor() * 2.0,
            "VStore {vstore_speed} vs 1→N {baseline_speed}"
        );
    }

    #[test]
    fn n_to_n_stores_more_formats_and_costs_more() {
        let engine = ConfigurationEngine::new(profiler(), reduced_options());
        let consumers = small_consumer_set();
        let vstore = engine.derive(&consumers).unwrap();
        let n_to_n = engine
            .derive_alternative(&consumers, Alternative::NToN)
            .unwrap();
        assert!(n_to_n.storage_formats.len() >= vstore.storage_formats.len());
        assert!(
            engine.storage_bytes_per_second(&n_to_n).bytes()
                >= engine.storage_bytes_per_second(&vstore).bytes()
        );
        assert!(engine.ingest_cores(&n_to_n) >= engine.ingest_cores(&vstore) * 0.99);
    }

    #[test]
    fn storage_budget_triggers_erosion_plan() {
        let base = ConfigurationEngine::new(profiler(), reduced_options());
        let consumers = small_consumer_set();
        let unbudgeted = base.derive(&consumers).unwrap();
        let per_second = base.storage_bytes_per_second(&unbudgeted).bytes();
        let ten_days = per_second * 86_400 * 10;
        let mut options = reduced_options();
        options.storage_budget = Some(ByteSize(ten_days * 17 / 20));
        let engine = ConfigurationEngine::new(profiler(), options);
        let config = engine.derive(&consumers).unwrap();
        assert!(!config.erosion.is_no_op(), "tight budget should erode");
        assert!(config.erosion.decay_factor > 0.0);
    }

    #[test]
    fn ingest_budget_is_respected() {
        let base = ConfigurationEngine::new(profiler(), reduced_options());
        let consumers = small_consumer_set();
        let unbudgeted = base.derive(&consumers).unwrap();
        let cores = base.ingest_cores(&unbudgeted);
        let mut options = reduced_options();
        options.ingest_budget_cores = Some(cores * 0.5);
        let engine = ConfigurationEngine::new(profiler(), options);
        let config = engine.derive(&consumers).unwrap();
        assert!(engine.ingest_cores(&config) <= cores * 0.5 + 0.5);
        config.validate().unwrap();
    }
}
