//! # vstore-core
//!
//! The paper's primary contribution: **backward derivation of the video
//! format configuration** (§4). In the direction opposite to the video data
//! path, the engine:
//!
//! 1. derives a **consumption format** for every `<operator, accuracy>`
//!    consumer, by searching the 4-D fidelity space with the monotone
//!    2-D boundary walk of §4.2 ([`cf_search`]);
//! 2. derives the **storage formats** by iteratively coalescing the
//!    consumption formats — satisfiable fidelity, adequate retrieval speed,
//!    ingestion under budget — always keeping a *golden* format
//!    ([`coalesce`]);
//! 3. derives an **age-based data erosion plan** that decays overall
//!    operator speed along a power law, with max-min fairness across
//!    consumers, until the storage budget is met ([`erosion`]);
//! 4. adapts coding knobs when the ingestion budget shrinks
//!    ([`budget`]).
//!
//! [`engine::ConfigurationEngine`] ties the steps together and also produces
//! the alternative configurations (1→1, 1→N, N→N) the paper compares
//! against in §6.2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod cf_search;
pub mod coalesce;
pub mod engine;
pub mod erosion;

pub use budget::adapt_to_ingest_budget;
pub use cf_search::{CfSearch, DerivedCf};
pub use coalesce::{CoalesceResult, CoalesceStrategy, Coalescer, DerivedSf};
pub use engine::{Alternative, ConfigurationEngine, EngineOptions};
pub use erosion::{plan_erosion, ErosionInputs};
