//! Configuring consumption formats (§4.2): for each consumer
//! `<operator, accuracy>`, find the fidelity with adequate accuracy and the
//! lowest consumption cost, profiling only a small subset of the space.
//!
//! The search exploits the paper's two observations:
//!
//! * **O1 (monotonicity)** — accuracy and consumption cost are non-decreasing
//!   in fidelity richness, so each 2-D (resolution × sampling) slice has an
//!   *accuracy boundary* that a staircase walk can trace while profiling only
//!   the cells it visits;
//! * **O2** — image quality does not affect consumption cost, so the quality
//!   knob can be fixed at its richest value during the spatial search and
//!   lowered afterwards as far as accuracy allows (to opportunistically save
//!   storage).

use vstore_profiler::Profiler;
use vstore_types::{Consumer, Fidelity, FidelitySpace, Result, Speed, VStoreError};

/// A consumption format derived for one consumer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivedCf {
    /// The consumer this format serves.
    pub consumer: Consumer,
    /// The derived fidelity.
    pub fidelity: Fidelity,
    /// Profiled accuracy at that fidelity.
    pub accuracy: f64,
    /// Profiled consumption speed at that fidelity.
    pub consumption_speed: Speed,
}

/// The §4.2 search.
pub struct CfSearch<'a> {
    profiler: &'a Profiler,
    space: FidelitySpace,
}

impl<'a> CfSearch<'a> {
    /// A search over the full Table-1 fidelity space.
    pub fn new(profiler: &'a Profiler) -> Self {
        CfSearch {
            profiler,
            space: FidelitySpace::full(),
        }
    }

    /// A search over a restricted space.
    pub fn with_space(profiler: &'a Profiler, space: FidelitySpace) -> Self {
        CfSearch { profiler, space }
    }

    /// The space being searched.
    pub fn space(&self) -> &FidelitySpace {
        &self.space
    }

    /// Derive the consumption format for one consumer.
    pub fn derive(&self, consumer: Consumer) -> Result<DerivedCf> {
        let target = consumer.accuracy.value();
        let qualities = &self.space.qualities;
        let top_quality = *qualities
            .last()
            .ok_or_else(|| VStoreError::invalid_argument("empty quality axis"))?;

        // Step 1–3: search the 3-D (crop × resolution × sampling) space at
        // the richest image quality, one 2-D slice per crop value.
        let mut best: Option<DerivedCf> = None;
        for &crop in &self.space.crops {
            for candidate in self.explore_slice(consumer, top_quality, crop, target) {
                let better = match &best {
                    None => true,
                    Some(b) => {
                        candidate.consumption_speed.factor() > b.consumption_speed.factor()
                            || (candidate.consumption_speed.factor()
                                == b.consumption_speed.factor()
                                && candidate.fidelity.richness_volume()
                                    < b.fidelity.richness_volume())
                    }
                };
                if better {
                    best = Some(candidate);
                }
            }
        }
        let mut chosen = best.ok_or_else(|| {
            VStoreError::AccuracyUnreachable(format!(
                "no fidelity in the search space reaches accuracy {target:.2} for {}",
                consumer.op
            ))
        })?;

        // Step 4: lower image quality while accuracy stays adequate. This
        // cannot reduce consumption cost (O2) but reduces storage cost
        // downstream.
        for &quality in qualities.iter().rev().skip(1) {
            let fidelity = Fidelity {
                quality,
                ..chosen.fidelity
            };
            let profile = self.profiler.profile_consumer(consumer.op, fidelity);
            if profile.accuracy + 1e-9 >= target {
                chosen = DerivedCf {
                    consumer,
                    fidelity,
                    accuracy: profile.accuracy,
                    consumption_speed: profile.consumption_speed,
                };
            } else {
                break;
            }
        }
        Ok(chosen)
    }

    /// Derive the consumption format by exhaustively profiling every fidelity
    /// option — the Figure 14 baseline.
    pub fn derive_exhaustive(&self, consumer: Consumer) -> Result<DerivedCf> {
        let target = consumer.accuracy.value();
        let mut best: Option<DerivedCf> = None;
        for fidelity in self.space.iter() {
            let profile = self.profiler.profile_consumer(consumer.op, fidelity);
            if profile.accuracy + 1e-9 < target {
                continue;
            }
            let candidate = DerivedCf {
                consumer,
                fidelity,
                accuracy: profile.accuracy,
                consumption_speed: profile.consumption_speed,
            };
            let better = match &best {
                None => true,
                Some(b) => candidate.consumption_speed.factor() > b.consumption_speed.factor(),
            };
            if better {
                best = Some(candidate);
            }
        }
        best.ok_or_else(|| {
            VStoreError::AccuracyUnreachable(format!(
                "no fidelity reaches accuracy {target:.2} for {}",
                consumer.op
            ))
        })
    }

    /// Explore one 2-D (resolution × sampling) slice at a fixed quality and
    /// crop: walk the accuracy boundary and return the boundary cells with
    /// adequate accuracy.
    fn explore_slice(
        &self,
        consumer: Consumer,
        quality: vstore_types::ImageQuality,
        crop: vstore_types::CropFactor,
        target: f64,
    ) -> Vec<DerivedCf> {
        let resolutions = &self.space.resolutions;
        let samplings = &self.space.samplings;
        if resolutions.is_empty() || samplings.is_empty() {
            return Vec::new();
        }
        let mut boundary = Vec::new();
        // Start at the top-right corner: richest sampling, richest resolution.
        let mut res_idx = resolutions.len() - 1;
        // Walk sampling rows from richest to poorest.
        for s_idx in (0..samplings.len()).rev() {
            let mut last_adequate: Option<DerivedCf> = None;
            // First make sure the current column is adequate for this poorer
            // row; if not, move right (richer resolution) until it is.
            loop {
                let fidelity = Fidelity {
                    quality,
                    crop,
                    resolution: resolutions[res_idx],
                    sampling: samplings[s_idx],
                };
                let profile = self.profiler.profile_consumer(consumer.op, fidelity);
                if profile.accuracy + 1e-9 >= target {
                    last_adequate = Some(DerivedCf {
                        consumer,
                        fidelity,
                        accuracy: profile.accuracy,
                        consumption_speed: profile.consumption_speed,
                    });
                    // Adequate: try to move left (poorer resolution).
                    if res_idx == 0 {
                        break;
                    }
                    res_idx -= 1;
                } else if last_adequate.is_some() {
                    // We just stepped past the boundary going left; step back.
                    res_idx += 1;
                    break;
                } else if res_idx + 1 < resolutions.len() {
                    // Inadequate and we have not seen an adequate cell in
                    // this row yet: move right (richer resolution).
                    res_idx += 1;
                } else {
                    // Even the richest resolution is inadequate for this row;
                    // poorer rows can only be worse (O1), so stop entirely.
                    break;
                }
            }
            match last_adequate {
                Some(cell) => boundary.push(cell),
                None => break,
            }
        }
        boundary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstore_ops::OperatorLibrary;
    use vstore_profiler::ProfilerConfig;
    use vstore_sim::CodingCostModel;
    use vstore_types::OperatorKind;

    fn profiler() -> Profiler {
        Profiler::new(
            OperatorLibrary::paper_testbed(),
            CodingCostModel::paper_testbed(),
            ProfilerConfig::fast_test(),
        )
    }

    fn reduced_space() -> FidelitySpace {
        FidelitySpace::reduced()
    }

    #[test]
    fn derived_cf_meets_target_accuracy() {
        let p = profiler();
        let search = CfSearch::new(&p);
        for (op, target) in [
            (OperatorKind::Motion, 0.9),
            (OperatorKind::FullNN, 0.8),
            (OperatorKind::License, 0.8),
        ] {
            let cf = search.derive(Consumer::new(op, target)).unwrap();
            assert!(
                cf.accuracy + 1e-9 >= target,
                "{op:?}: derived accuracy {} below target {target}",
                cf.accuracy
            );
            assert!(cf.consumption_speed.factor() > 0.0);
        }
    }

    #[test]
    fn lower_targets_get_cheaper_formats() {
        let p = profiler();
        let search = CfSearch::new(&p);
        let strict = search
            .derive(Consumer::new(OperatorKind::License, 0.95))
            .unwrap();
        let loose = search
            .derive(Consumer::new(OperatorKind::License, 0.7))
            .unwrap();
        assert!(
            loose.consumption_speed.factor() >= strict.consumption_speed.factor(),
            "loose target should not be slower: {} vs {}",
            loose.consumption_speed,
            strict.consumption_speed
        );
    }

    #[test]
    fn search_profiles_far_fewer_options_than_exhaustive() {
        let p = profiler();
        let search = CfSearch::with_space(&p, reduced_space());
        let consumer = Consumer::new(OperatorKind::SpecializedNN, 0.9);
        search.derive(consumer).unwrap();
        let guided_runs = p.stats().operator_runs;
        // The §4.2 bound: O((Nsample + Nres)·Ncrop + Nquality).
        let space = reduced_space();
        let bound = (space.samplings.len() + space.resolutions.len()) * space.crops.len()
            + space.qualities.len();
        assert!(
            guided_runs <= bound,
            "guided search used {guided_runs} runs, bound is {bound}"
        );
        assert!(
            guided_runs < space.len() / 3,
            "guided {guided_runs} vs space {}",
            space.len()
        );
    }

    #[test]
    fn exhaustive_and_guided_agree_on_adequacy() {
        let p = profiler();
        let space = FidelitySpace {
            qualities: vec![
                vstore_types::ImageQuality::Bad,
                vstore_types::ImageQuality::Best,
            ],
            crops: vec![vstore_types::CropFactor::C100],
            resolutions: vec![
                vstore_types::Resolution::R100,
                vstore_types::Resolution::R200,
                vstore_types::Resolution::R400,
                vstore_types::Resolution::R600,
            ],
            samplings: vec![
                vstore_types::FrameSampling::S1_30,
                vstore_types::FrameSampling::S1_2,
                vstore_types::FrameSampling::Full,
            ],
        };
        let consumer = Consumer::new(OperatorKind::SpecializedNN, 0.85);
        let guided = CfSearch::with_space(&p, space.clone())
            .derive(consumer)
            .unwrap();
        let exhaustive = CfSearch::with_space(&p, space)
            .derive_exhaustive(consumer)
            .unwrap();
        // Both must be adequate; the guided result must consume at a speed no
        // worse than ~20 % below the exhaustive optimum (boundary walks can
        // differ slightly when accuracy is locally flat).
        assert!(guided.accuracy + 1e-9 >= 0.85);
        assert!(exhaustive.accuracy + 1e-9 >= 0.85);
        assert!(
            guided.consumption_speed.factor() >= exhaustive.consumption_speed.factor() * 0.8,
            "guided {} vs exhaustive {}",
            guided.consumption_speed,
            exhaustive.consumption_speed
        );
    }

    #[test]
    fn accuracy_one_is_reachable_only_at_ingestion_like_fidelity() {
        let p = profiler();
        let search = CfSearch::new(&p);
        let cf = search
            .derive(Consumer::new(OperatorKind::FullNN, 1.0))
            .unwrap();
        assert_eq!(cf.accuracy, 1.0);
    }

    #[test]
    fn unreachable_target_in_tiny_space_errors() {
        let p = profiler();
        let space = FidelitySpace {
            qualities: vec![vstore_types::ImageQuality::Worst],
            crops: vec![vstore_types::CropFactor::C50],
            resolutions: vec![vstore_types::Resolution::R60],
            samplings: vec![vstore_types::FrameSampling::S1_30],
        };
        let search = CfSearch::with_space(&p, space);
        let err = search
            .derive(Consumer::new(OperatorKind::Ocr, 0.95))
            .unwrap_err();
        assert!(matches!(err, VStoreError::AccuracyUnreachable(_)));
    }
}
