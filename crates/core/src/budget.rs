//! Adapting the configuration to an ingestion (transcoding) budget (§6.3,
//! Table 4).
//!
//! When the CPU cores available for transcoding one stream shrink, VStore
//! does not re-derive the whole configuration: it incrementally tunes the
//! *coding speed step* of individual storage formats towards cheaper
//! (faster) encodes, accepting a modest storage increase, until the
//! ingestion cost fits the budget. Faster coding only over-provisions
//! retrieval speed, so requirement R2 can never regress.

use crate::coalesce::DerivedSf;
use vstore_profiler::Profiler;
use vstore_types::{CodingOption, Result, SpeedStep, StorageFormat, VStoreError};

/// One step of the Table-4 adaptation trace.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetAdaptation {
    /// The adapted storage formats (same order as the input).
    pub formats: Vec<DerivedSf>,
    /// Total ingestion cost after adaptation, in cores.
    pub total_ingest_cores: f64,
    /// Total storage cost after adaptation, bytes per video-second.
    pub total_bytes_per_video_second: u64,
    /// Whether the budget was met.
    pub within_budget: bool,
}

/// The next-faster speed step, if any.
fn faster(step: SpeedStep) -> Option<SpeedStep> {
    let rank = step.rank();
    SpeedStep::ALL.get(rank + 1).copied()
}

/// Adapt a derived storage-format set to an ingestion budget (CPU cores per
/// stream) by tuning coding speed steps from the most expensive format
/// first.
pub fn adapt_to_ingest_budget(
    profiler: &Profiler,
    formats: &[DerivedSf],
    budget_cores: f64,
) -> Result<BudgetAdaptation> {
    if formats.is_empty() {
        return Err(VStoreError::invalid_argument("no storage formats to adapt"));
    }
    if budget_cores <= 0.0 {
        return Err(VStoreError::invalid_argument(
            "ingestion budget must be positive",
        ));
    }
    let mut adapted: Vec<DerivedSf> = formats.to_vec();
    let total = |formats: &[DerivedSf]| -> f64 { formats.iter().map(|f| f.encode_cores).sum() };

    // Repeatedly take the format with the highest encode cost that can still
    // be made cheaper, and move its speed step one notch faster.
    let mut guard = 0;
    while total(&adapted) > budget_cores && guard < 1000 {
        guard += 1;
        let candidate = adapted
            .iter()
            .enumerate()
            .filter_map(|(i, sf)| match sf.format.coding {
                CodingOption::Encoded {
                    keyframe_interval,
                    speed,
                } => faster(speed).map(|next| (i, keyframe_interval, next, sf.encode_cores)),
                CodingOption::Raw => None,
            })
            .max_by(|a, b| a.3.total_cmp(&b.3));
        let (idx, keyframe_interval, next_speed, _) = match candidate {
            Some(c) => c,
            None => break, // everything already at the fastest step
        };
        let new_format = StorageFormat::new(
            adapted[idx].format.fidelity,
            CodingOption::Encoded {
                keyframe_interval,
                speed: next_speed,
            },
        );
        let profile = profiler.profile_storage(new_format);
        adapted[idx] = DerivedSf {
            format: new_format,
            subscribers: adapted[idx].subscribers.clone(),
            bytes_per_video_second: profile.bytes_per_video_second,
            encode_cores: profile.encode_cores,
            sequential_retrieval_speed: profile.sequential_retrieval_speed,
            is_golden: adapted[idx].is_golden,
        };
    }

    let total_cores = total(&adapted);
    Ok(BudgetAdaptation {
        within_budget: total_cores <= budget_cores + 1e-9,
        total_ingest_cores: total_cores,
        total_bytes_per_video_second: adapted
            .iter()
            .map(|f| f.bytes_per_video_second.bytes())
            .sum(),
        formats: adapted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstore_ops::OperatorLibrary;
    use vstore_profiler::ProfilerConfig;
    use vstore_sim::CodingCostModel;
    use vstore_types::{
        CropFactor, Fidelity, FrameSampling, ImageQuality, KeyframeInterval, Resolution,
    };

    fn profiler() -> Profiler {
        Profiler::new(
            OperatorLibrary::paper_testbed(),
            CodingCostModel::paper_testbed(),
            ProfilerConfig::fast_test(),
        )
    }

    fn sf(p: &Profiler, fidelity: Fidelity, coding: CodingOption, is_golden: bool) -> DerivedSf {
        let profile = p.profile_storage(StorageFormat::new(fidelity, coding));
        DerivedSf {
            format: StorageFormat::new(fidelity, coding),
            subscribers: vec![],
            bytes_per_video_second: profile.bytes_per_video_second,
            encode_cores: profile.encode_cores,
            sequential_retrieval_speed: profile.sequential_retrieval_speed,
            is_golden,
        }
    }

    fn paper_like_formats(p: &Profiler) -> Vec<DerivedSf> {
        vec![
            sf(p, Fidelity::INGESTION, CodingOption::SMALLEST, true),
            sf(
                p,
                Fidelity::new(
                    ImageQuality::Good,
                    CropFactor::C100,
                    Resolution::R540,
                    FrameSampling::S1_6,
                ),
                CodingOption::SMALLEST,
                false,
            ),
            sf(
                p,
                Fidelity::new(
                    ImageQuality::Best,
                    CropFactor::C100,
                    Resolution::R540,
                    FrameSampling::S1_30,
                ),
                CodingOption::Encoded {
                    keyframe_interval: KeyframeInterval::K10,
                    speed: vstore_types::SpeedStep::Fast,
                },
                false,
            ),
            sf(
                p,
                Fidelity::new(
                    ImageQuality::Best,
                    CropFactor::C100,
                    Resolution::R200,
                    FrameSampling::Full,
                ),
                CodingOption::Raw,
                false,
            ),
        ]
    }

    #[test]
    fn generous_budget_changes_nothing() {
        let p = profiler();
        let formats = paper_like_formats(&p);
        let before: Vec<_> = formats.iter().map(|f| f.format).collect();
        let adapted = adapt_to_ingest_budget(&p, &formats, 100.0).unwrap();
        assert!(adapted.within_budget);
        let after: Vec<_> = adapted.formats.iter().map(|f| f.format).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn shrinking_budget_speeds_up_coding_and_grows_storage() {
        let p = profiler();
        let formats = paper_like_formats(&p);
        let unbudgeted: f64 = formats.iter().map(|f| f.encode_cores).sum();
        let mut prev_storage = 0u64;
        let mut prev_cores = f64::INFINITY;
        // Mirror Table 4: progressively smaller budgets.
        for budget in [
            unbudgeted * 0.8,
            unbudgeted * 0.5,
            unbudgeted * 0.3,
            unbudgeted * 0.15,
        ] {
            let adapted = adapt_to_ingest_budget(&p, &formats, budget).unwrap();
            assert!(
                adapted.total_ingest_cores <= prev_cores + 1e-9,
                "ingest cost should not grow as budgets shrink"
            );
            assert!(
                adapted.total_bytes_per_video_second >= prev_storage,
                "storage should not shrink as budgets shrink"
            );
            prev_storage = adapted.total_bytes_per_video_second;
            prev_cores = adapted.total_ingest_cores;
            // The golden format is still golden and fidelities are untouched.
            assert!(adapted.formats[0].is_golden);
            for (a, b) in adapted.formats.iter().zip(formats.iter()) {
                assert_eq!(a.format.fidelity, b.format.fidelity);
            }
        }
    }

    #[test]
    fn impossible_budget_reports_not_within() {
        let p = profiler();
        let formats = paper_like_formats(&p);
        let adapted = adapt_to_ingest_budget(&p, &formats, 0.001).unwrap();
        assert!(!adapted.within_budget);
        // Every encodable format should have been pushed to the fastest step.
        for sf in &adapted.formats {
            if let CodingOption::Encoded { speed, .. } = sf.format.coding {
                assert_eq!(speed, vstore_types::SpeedStep::Fastest);
            }
        }
    }

    #[test]
    fn invalid_arguments_are_rejected() {
        let p = profiler();
        assert!(adapt_to_ingest_budget(&p, &[], 5.0).is_err());
        let formats = paper_like_formats(&p);
        assert!(adapt_to_ingest_budget(&p, &formats, 0.0).is_err());
    }
}
