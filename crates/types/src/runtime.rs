//! Runtime parallelism options shared by the storage, ingestion and query
//! layers.
//!
//! VStore's premise is saturating the hardware: ingestion transcodes one
//! stream into many storage formats under a CPU budget (§4.3) and queries
//! are retrieval-bound on decode bandwidth (§6.2). These options size the
//! sharded store and the worker pools that deliver that parallelism. Every
//! knob set to 1 reproduces the fully sequential behaviour, and all paths
//! produce *identical* reports regardless of the values — parallelism never
//! changes results, only wall-clock time.

use crate::{Result, VStoreError};
use serde::{Deserialize, Serialize};

/// Parallelism configuration for a VStore instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuntimeOptions {
    /// Number of independent segment-store shards. Each shard owns its own
    /// index, log-file set, roll-over and compaction; keys are routed by
    /// hash. 1 reproduces the original single-lock store.
    pub shards: usize,
    /// Worker threads fanning per-segment transcode work across the storage
    /// formats at ingestion. Capped further by the configuration's ingestion
    /// CPU budget when one is set.
    pub ingest_workers: usize,
    /// Segment lookahead of the query engine's prefetch/decode stage: how
    /// many segments are fetched and decoded in parallel ahead of the
    /// operator cascade. 1 disables prefetching.
    pub query_prefetch: usize,
    /// Capacity in bytes of the tier-1 raw-segment cache fronting
    /// `SegmentStore::get`, split evenly across the store's shards (each
    /// shard cache has its own lock, so hot reads stay lock-cheap under the
    /// parallel query runtime). `0` disables the tier entirely — the read
    /// path is then byte-identical to the uncached store. Non-zero values
    /// must be at least `shards ×` [`MIN_CACHE_BYTES_PER_SHARD`].
    pub cache_bytes: u64,
    /// Entry capacity of the tier-2 decoded-frames cache, keyed by
    /// `(segment key, consumer sampling rate)` so repeated cascade stages
    /// skip `decode_sampled` entirely. Split across shards like
    /// `cache_bytes`. `0` disables the tier.
    pub decoded_cache_entries: usize,
    /// Session default for the query planner: when `true`, queries consult
    /// the ingest-time metadata sidecars to skip fetching/decoding segments
    /// the first cascade stage would discard, and order cascade stages by
    /// cost × selectivity. `false` (the default) keeps every query an exact
    /// scan, byte-identical to the pre-planner engine. Individual requests
    /// can override this per query.
    pub query_planner: bool,
}

/// Default shard count: enough to spread MB-sized segment appends across
/// locks without creating needless log files on small hosts.
pub const DEFAULT_SHARDS: usize = 8;

/// Smallest accepted non-zero [`RuntimeOptions::cache_bytes`] **per
/// shard**: one MiB. `cache_bytes` is split evenly across the shards, and
/// segments are hundreds of KiB, so a shard slice smaller than this cannot
/// hold a single entry and the tier would silently behave as a disabled
/// cache. `validate` therefore rejects non-zero `cache_bytes` below
/// `shards × MIN_CACHE_BYTES_PER_SHARD`.
pub const MIN_CACHE_BYTES_PER_SHARD: u64 = 1 << 20;

/// The host's available parallelism (1 when it cannot be determined).
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl RuntimeOptions {
    /// Fully sequential execution: one shard, one worker, no prefetch, no
    /// caching. This is byte-for-byte the behaviour of the original serial
    /// runtime.
    pub fn sequential() -> Self {
        RuntimeOptions {
            shards: 1,
            ingest_workers: 1,
            query_prefetch: 1,
            cache_bytes: 0,
            decoded_cache_entries: 0,
            query_planner: false,
        }
    }

    /// Clamp every parallelism knob to at least 1 (cache knobs are left
    /// untouched: 0 is their valid "disabled" state).
    pub fn normalized(self) -> Self {
        RuntimeOptions {
            shards: self.shards.max(1),
            ingest_workers: self.ingest_workers.max(1),
            query_prefetch: self.query_prefetch.max(1),
            cache_bytes: self.cache_bytes,
            decoded_cache_entries: self.decoded_cache_entries,
            query_planner: self.query_planner,
        }
    }

    /// Enable the two-tier segment cache: `cache_bytes` of raw segment
    /// bytes (tier 1) and `decoded_entries` decoded-frame entries (tier 2).
    /// Either knob may be 0 to disable that tier.
    pub fn with_cache(mut self, cache_bytes: u64, decoded_entries: usize) -> Self {
        self.cache_bytes = cache_bytes;
        self.decoded_cache_entries = decoded_entries;
        self
    }

    /// Enable (or disable) the query planner for every query of the
    /// session. Requests can still override this per query.
    pub fn with_query_planner(mut self, enabled: bool) -> Self {
        self.query_planner = enabled;
        self
    }

    /// Reject configurations with zeroed knobs. The service front door
    /// (`VStore::open`) calls this so a bad knob surfaces as a
    /// [`VStoreError::InvalidArgument`] at open time instead of panicking
    /// (or being silently rewritten) deep inside the store or a worker pool.
    pub fn validate(&self) -> Result<()> {
        let reject = |knob: &str| {
            Err(VStoreError::invalid_argument(format!(
                "RuntimeOptions::{knob} must be >= 1 (use RuntimeOptions::sequential() \
                 for the serial runtime)"
            )))
        };
        if self.shards == 0 {
            return reject("shards");
        }
        if self.ingest_workers == 0 {
            return reject("ingest_workers");
        }
        if self.query_prefetch == 0 {
            return reject("query_prefetch");
        }
        let cache_floor = self.shards as u64 * MIN_CACHE_BYTES_PER_SHARD;
        if self.cache_bytes != 0 && self.cache_bytes < cache_floor {
            return Err(VStoreError::invalid_argument(format!(
                "RuntimeOptions::cache_bytes must be 0 (cache disabled) or at least \
                 {MIN_CACHE_BYTES_PER_SHARD} bytes per shard ({cache_floor} for {} shards); \
                 {} cannot hold one segment per shard",
                self.shards, self.cache_bytes
            )));
        }
        Ok(())
    }
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        let workers = available_workers();
        RuntimeOptions {
            shards: DEFAULT_SHARDS,
            ingest_workers: workers,
            query_prefetch: workers.max(2),
            // Caching is opt-in: the default read path stays byte-identical
            // to the seed runtime (every get pays disk + CRC + decode).
            cache_bytes: 0,
            decoded_cache_entries: 0,
            // The planner's metadata skip is approximate, so it is opt-in
            // too: default queries are exact scans.
            query_planner: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_parallel() {
        let opts = RuntimeOptions::default();
        assert_eq!(opts.shards, DEFAULT_SHARDS);
        assert!(opts.ingest_workers >= 1);
        assert!(opts.query_prefetch >= 2);
    }

    #[test]
    fn sequential_means_all_ones_and_no_cache() {
        assert_eq!(
            RuntimeOptions::sequential(),
            RuntimeOptions {
                shards: 1,
                ingest_workers: 1,
                query_prefetch: 1,
                cache_bytes: 0,
                decoded_cache_entries: 0,
                query_planner: false,
            }
        );
    }

    #[test]
    fn defaults_leave_the_cache_disabled() {
        let opts = RuntimeOptions::default();
        assert_eq!(opts.cache_bytes, 0);
        assert_eq!(opts.decoded_cache_entries, 0);
    }

    #[test]
    fn validate_rejects_zeroed_knobs() {
        assert!(RuntimeOptions::default().validate().is_ok());
        assert!(RuntimeOptions::sequential().validate().is_ok());
        for (shards, ingest_workers, query_prefetch) in [(0, 1, 1), (1, 0, 1), (1, 1, 0), (0, 0, 0)]
        {
            let opts = RuntimeOptions {
                shards,
                ingest_workers,
                query_prefetch,
                ..RuntimeOptions::sequential()
            };
            let err = opts.validate().unwrap_err();
            assert!(
                matches!(err, VStoreError::InvalidArgument(_)),
                "expected InvalidArgument, got {err}"
            );
        }
    }

    #[test]
    fn validate_rejects_useless_tiny_caches_but_accepts_disabled_and_real_ones() {
        // 0 is the valid "disabled" state.
        assert!(RuntimeOptions::sequential()
            .with_cache(0, 0)
            .validate()
            .is_ok());
        // Tier 2 alone is fine at any entry count.
        assert!(RuntimeOptions::sequential()
            .with_cache(0, 7)
            .validate()
            .is_ok());
        // A cache too small to hold one segment per shard is rejected.
        let err = RuntimeOptions::sequential()
            .with_cache(MIN_CACHE_BYTES_PER_SHARD - 1, 0)
            .validate()
            .unwrap_err();
        assert!(matches!(err, VStoreError::InvalidArgument(_)), "{err}");
        assert!(RuntimeOptions::sequential()
            .with_cache(MIN_CACHE_BYTES_PER_SHARD, 0)
            .validate()
            .is_ok());
        // The floor scales with the shard count: what one shard accepts,
        // eight shards reject (each shard slice must hold a segment).
        let eight = RuntimeOptions {
            shards: 8,
            ..RuntimeOptions::sequential()
        };
        let err = eight
            .with_cache(MIN_CACHE_BYTES_PER_SHARD, 0)
            .validate()
            .unwrap_err();
        assert!(matches!(err, VStoreError::InvalidArgument(_)), "{err}");
        assert!(eight
            .with_cache(8 * MIN_CACHE_BYTES_PER_SHARD, 0)
            .validate()
            .is_ok());
    }

    #[test]
    fn normalized_clamps_zeroes() {
        let opts = RuntimeOptions {
            shards: 0,
            ingest_workers: 0,
            query_prefetch: 0,
            cache_bytes: 0,
            decoded_cache_entries: 0,
            query_planner: false,
        }
        .normalized();
        assert_eq!(opts, RuntimeOptions::sequential());
    }

    #[test]
    fn query_planner_defaults_off_and_toggles() {
        assert!(!RuntimeOptions::default().query_planner);
        assert!(!RuntimeOptions::sequential().query_planner);
        let opts = RuntimeOptions::default().with_query_planner(true);
        assert!(opts.query_planner);
        assert!(opts.validate().is_ok());
        // Normalisation never flips the planner switch.
        assert!(opts.normalized().query_planner);
    }

    #[test]
    fn with_cache_sets_both_tiers() {
        let opts = RuntimeOptions::default().with_cache(64 << 20, 256);
        assert_eq!(opts.cache_bytes, 64 << 20);
        assert_eq!(opts.decoded_cache_entries, 256);
        assert!(opts.validate().is_ok());
    }
}
