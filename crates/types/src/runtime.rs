//! Runtime parallelism options shared by the storage, ingestion and query
//! layers.
//!
//! VStore's premise is saturating the hardware: ingestion transcodes one
//! stream into many storage formats under a CPU budget (§4.3) and queries
//! are retrieval-bound on decode bandwidth (§6.2). These options size the
//! sharded store and the worker pools that deliver that parallelism. Every
//! knob set to 1 reproduces the fully sequential behaviour, and all paths
//! produce *identical* reports regardless of the values — parallelism never
//! changes results, only wall-clock time.

use crate::{Result, VStoreError};
use serde::{Deserialize, Serialize};

/// Parallelism configuration for a VStore instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuntimeOptions {
    /// Number of independent segment-store shards. Each shard owns its own
    /// index, log-file set, roll-over and compaction; keys are routed by
    /// hash. 1 reproduces the original single-lock store.
    pub shards: usize,
    /// Worker threads fanning per-segment transcode work across the storage
    /// formats at ingestion. Capped further by the configuration's ingestion
    /// CPU budget when one is set.
    pub ingest_workers: usize,
    /// Segment lookahead of the query engine's prefetch/decode stage: how
    /// many segments are fetched and decoded in parallel ahead of the
    /// operator cascade. 1 disables prefetching.
    pub query_prefetch: usize,
}

/// Default shard count: enough to spread MB-sized segment appends across
/// locks without creating needless log files on small hosts.
pub const DEFAULT_SHARDS: usize = 8;

/// The host's available parallelism (1 when it cannot be determined).
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl RuntimeOptions {
    /// Fully sequential execution: one shard, one worker, no prefetch.
    /// This is byte-for-byte the behaviour of the original serial runtime.
    pub fn sequential() -> Self {
        RuntimeOptions {
            shards: 1,
            ingest_workers: 1,
            query_prefetch: 1,
        }
    }

    /// Clamp every knob to at least 1.
    pub fn normalized(self) -> Self {
        RuntimeOptions {
            shards: self.shards.max(1),
            ingest_workers: self.ingest_workers.max(1),
            query_prefetch: self.query_prefetch.max(1),
        }
    }

    /// Reject configurations with zeroed knobs. The service front door
    /// (`VStore::open`) calls this so a bad knob surfaces as a
    /// [`VStoreError::InvalidArgument`] at open time instead of panicking
    /// (or being silently rewritten) deep inside the store or a worker pool.
    pub fn validate(&self) -> Result<()> {
        let reject = |knob: &str| {
            Err(VStoreError::invalid_argument(format!(
                "RuntimeOptions::{knob} must be >= 1 (use RuntimeOptions::sequential() \
                 for the serial runtime)"
            )))
        };
        if self.shards == 0 {
            return reject("shards");
        }
        if self.ingest_workers == 0 {
            return reject("ingest_workers");
        }
        if self.query_prefetch == 0 {
            return reject("query_prefetch");
        }
        Ok(())
    }
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        let workers = available_workers();
        RuntimeOptions {
            shards: DEFAULT_SHARDS,
            ingest_workers: workers,
            query_prefetch: workers.max(2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_parallel() {
        let opts = RuntimeOptions::default();
        assert_eq!(opts.shards, DEFAULT_SHARDS);
        assert!(opts.ingest_workers >= 1);
        assert!(opts.query_prefetch >= 2);
    }

    #[test]
    fn sequential_means_all_ones() {
        assert_eq!(
            RuntimeOptions::sequential(),
            RuntimeOptions {
                shards: 1,
                ingest_workers: 1,
                query_prefetch: 1
            }
        );
    }

    #[test]
    fn validate_rejects_zeroed_knobs() {
        assert!(RuntimeOptions::default().validate().is_ok());
        assert!(RuntimeOptions::sequential().validate().is_ok());
        for (shards, ingest_workers, query_prefetch) in [(0, 1, 1), (1, 0, 1), (1, 1, 0), (0, 0, 0)]
        {
            let opts = RuntimeOptions {
                shards,
                ingest_workers,
                query_prefetch,
            };
            let err = opts.validate().unwrap_err();
            assert!(
                matches!(err, VStoreError::InvalidArgument(_)),
                "expected InvalidArgument, got {err}"
            );
        }
    }

    #[test]
    fn normalized_clamps_zeroes() {
        let opts = RuntimeOptions {
            shards: 0,
            ingest_workers: 0,
            query_prefetch: 0,
        }
        .normalized();
        assert_eq!(opts, RuntimeOptions::sequential());
    }
}
