//! # vstore-types
//!
//! Foundational types shared by every VStore crate: the video format *knobs*
//! (Table 1 of the paper), fidelity and coding options, the *richer-than*
//! partial order, consumption/storage formats, consumers, knob spaces, and
//! the configuration data model produced by backward derivation.
//!
//! The knob vocabulary follows Table 1 of the paper:
//!
//! | Fidelity knob | Values |
//! |---|---|
//! | Image quality | worst, bad, good, best (x264 CRF 50, 40, 23, 0) |
//! | Crop factor   | 50 %, 75 %, 100 % |
//! | Resolution    | 60×60 … 720p (10 values) |
//! | Frame sampling| 1/30, 1/6, 1/2, 2/3, 1 |
//!
//! | Coding knob | Values |
//! |---|---|
//! | Speed step        | slowest, slow, medium, fast, fastest |
//! | Keyframe interval | 5, 10, 50, 100, 250 |
//! | Bypass            | encoded or RAW frames |
//!
//! This gives `4 × 3 × 10 × 5 = 600` fidelity options and
//! `600 × (5 × 5) = 15 000` storage formats — the "15K possible combinations"
//! quoted by the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cast;
pub mod config;
pub mod consumer;
pub mod error;
pub mod fidelity;
pub mod format;
pub mod hist;
pub mod knobs;
pub mod live;
pub mod net;
pub mod runtime;
pub mod serve;
pub mod space;
pub mod units;

pub use config::{power_law_target, Configuration, ErosionPlan, ErosionStep, Subscription};
pub use consumer::{AccuracyLevel, Consumer, OperatorKind, DEFAULT_ACCURACY_LEVELS};
pub use error::{Result, VStoreError};
pub use fidelity::{Fidelity, Richness};
pub use format::{CodingOption, ConsumptionFormat, FormatId, StorageFormat};
pub use hist::{LatencyHistogram, HISTOGRAM_BUCKETS};
pub use knobs::{CropFactor, FrameSampling, ImageQuality, KeyframeInterval, Resolution, SpeedStep};
pub use live::{LiveIngestOptions, DEFAULT_MAX_LAG_SEGMENTS};
pub use net::{
    NetOptions, DEFAULT_BATCH_MAX_BYTES, DEFAULT_BATCH_MAX_DELAY_US, DEFAULT_MAX_CONNECTIONS,
    DEFAULT_MAX_FRAME_BYTES,
};
pub use runtime::{available_workers, RuntimeOptions, DEFAULT_SHARDS, MIN_CACHE_BYTES_PER_SHARD};
pub use serve::{QueueFullPolicy, ServeOptions, DEFAULT_QUEUE_DEPTH};
pub use space::{CodingSpace, FidelitySpace};
pub use units::{ByteSize, CoreSeconds, Fraction, Speed, VideoSeconds};
