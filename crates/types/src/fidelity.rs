//! Fidelity options and the *richer-than* partial order (§2.3 of the paper).

use crate::knobs::{CropFactor, FrameSampling, ImageQuality, Resolution};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A point in the 4-D fidelity space `F`:
/// image quality × crop factor × resolution × frame sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fidelity {
    /// Image (compression) quality.
    pub quality: ImageQuality,
    /// Crop factor — fraction of the frame area retained.
    pub crop: CropFactor,
    /// Output resolution.
    pub resolution: Resolution,
    /// Frame sampling rate.
    pub sampling: FrameSampling,
}

/// Result of comparing two fidelity options under the richer-than partial
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Richness {
    /// The two options are identical on every knob.
    Equal,
    /// The left option is richer (≥ on every knob, > on at least one).
    Richer,
    /// The left option is poorer.
    Poorer,
    /// The options are incomparable (each is richer on some knob).
    Incomparable,
}

impl Fidelity {
    /// The richest fidelity: best quality, full crop, 720p, every frame.
    /// This is also the ingestion fidelity of all paper datasets.
    pub const INGESTION: Fidelity = Fidelity {
        quality: ImageQuality::Best,
        crop: CropFactor::C100,
        resolution: Resolution::R720,
        sampling: FrameSampling::Full,
    };

    /// The poorest fidelity in the space.
    pub const POOREST: Fidelity = Fidelity {
        quality: ImageQuality::Worst,
        crop: CropFactor::C50,
        resolution: Resolution::R60,
        sampling: FrameSampling::S1_30,
    };

    /// Construct a fidelity option from its four knob values.
    pub fn new(
        quality: ImageQuality,
        crop: CropFactor,
        resolution: Resolution,
        sampling: FrameSampling,
    ) -> Self {
        Fidelity {
            quality,
            crop,
            resolution,
            sampling,
        }
    }

    /// Compare `self` against `other` under the richer-than partial order.
    pub fn compare(&self, other: &Fidelity) -> Richness {
        let cmps = [
            self.quality.rank().cmp(&other.quality.rank()),
            self.crop.rank().cmp(&other.crop.rank()),
            self.resolution.rank().cmp(&other.resolution.rank()),
            self.sampling.rank().cmp(&other.sampling.rank()),
        ];
        let any_gt = cmps.contains(&Ordering::Greater);
        let any_lt = cmps.contains(&Ordering::Less);
        match (any_gt, any_lt) {
            (false, false) => Richness::Equal,
            (true, false) => Richness::Richer,
            (false, true) => Richness::Poorer,
            (true, true) => Richness::Incomparable,
        }
    }

    /// `true` if `self` is richer than or equal to `other` on every knob.
    ///
    /// This is requirement **R1** (satisfiable fidelity): a storage format can
    /// serve a consumption format only if its fidelity is richer-or-equal.
    pub fn richer_or_equal(&self, other: &Fidelity) -> bool {
        matches!(self.compare(other), Richness::Equal | Richness::Richer)
    }

    /// `true` if `self` is strictly richer than `other`.
    pub fn strictly_richer(&self, other: &Fidelity) -> bool {
        self.compare(other) == Richness::Richer
    }

    /// Knob-wise maximum of two fidelity options — the least upper bound in
    /// the richer-than lattice. Used when coalescing storage formats (§4.3)
    /// and when constructing the golden format.
    pub fn join(&self, other: &Fidelity) -> Fidelity {
        fn pick<T: Copy>(a: T, b: T, ra: usize, rb: usize) -> T {
            if ra >= rb {
                a
            } else {
                b
            }
        }
        Fidelity {
            quality: pick(
                self.quality,
                other.quality,
                self.quality.rank(),
                other.quality.rank(),
            ),
            crop: pick(self.crop, other.crop, self.crop.rank(), other.crop.rank()),
            resolution: pick(
                self.resolution,
                other.resolution,
                self.resolution.rank(),
                other.resolution.rank(),
            ),
            sampling: pick(
                self.sampling,
                other.sampling,
                self.sampling.rank(),
                other.sampling.rank(),
            ),
        }
    }

    /// Knob-wise minimum of two fidelity options — the greatest lower bound.
    pub fn meet(&self, other: &Fidelity) -> Fidelity {
        fn pick<T: Copy>(a: T, b: T, ra: usize, rb: usize) -> T {
            if ra <= rb {
                a
            } else {
                b
            }
        }
        Fidelity {
            quality: pick(
                self.quality,
                other.quality,
                self.quality.rank(),
                other.quality.rank(),
            ),
            crop: pick(self.crop, other.crop, self.crop.rank(), other.crop.rank()),
            resolution: pick(
                self.resolution,
                other.resolution,
                self.resolution.rank(),
                other.resolution.rank(),
            ),
            sampling: pick(
                self.sampling,
                other.sampling,
                self.sampling.rank(),
                other.sampling.rank(),
            ),
        }
    }

    /// Knob-wise maximum over an iterator of fidelity options.
    ///
    /// Returns `None` for an empty iterator.
    pub fn join_all<'a, I: IntoIterator<Item = &'a Fidelity>>(iter: I) -> Option<Fidelity> {
        iter.into_iter().fold(None, |acc, f| match acc {
            None => Some(*f),
            Some(a) => Some(a.join(f)),
        })
    }

    /// Effective pixel count of one supplied frame: resolution × crop area.
    pub fn pixels_per_frame(&self) -> u64 {
        let full = self.resolution.pixels() as f64;
        (full * self.crop.fraction()).round() as u64
    }

    /// Effective pixels per second of video at a 30 fps source, accounting
    /// for frame sampling. This is the quantity of data an operator must
    /// consume per second of video — the main driver of consumption cost.
    pub fn pixels_per_video_second(&self) -> f64 {
        self.pixels_per_frame() as f64 * 30.0 * self.sampling.fraction()
    }

    /// A scalar "richness volume" in `(0, 1]`, the product of each knob's
    /// normalised value. Only used for ordering heuristics and diagnostics —
    /// never as a substitute for the partial order.
    pub fn richness_volume(&self) -> f64 {
        let q = self.quality.signal_retention();
        let c = self.crop.fraction();
        let r = self.resolution.pixels() as f64 / Resolution::R720.pixels() as f64;
        let s = self.sampling.fraction();
        q * c * r * s
    }

    /// Paper-style label: `quality-resolution-sampling-crop`,
    /// e.g. `good-540p-1/6-100%`.
    pub fn label(&self) -> String {
        format!(
            "{}-{}-{}-{}",
            self.quality.label(),
            self.resolution.label(),
            self.sampling.label(),
            self.crop.label()
        )
    }
}

impl fmt::Display for Fidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

impl Default for Fidelity {
    fn default() -> Self {
        Fidelity::INGESTION
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(
        quality: ImageQuality,
        crop: CropFactor,
        resolution: Resolution,
        sampling: FrameSampling,
    ) -> Fidelity {
        Fidelity::new(quality, crop, resolution, sampling)
    }

    #[test]
    fn ingestion_is_richest() {
        let other = f(
            ImageQuality::Good,
            CropFactor::C75,
            Resolution::R540,
            FrameSampling::S1_2,
        );
        assert!(Fidelity::INGESTION.richer_or_equal(&other));
        assert!(Fidelity::INGESTION.strictly_richer(&other));
        assert!(!other.richer_or_equal(&Fidelity::INGESTION));
        assert!(Fidelity::INGESTION.richer_or_equal(&Fidelity::INGESTION));
    }

    #[test]
    fn incomparable_pair_from_paper() {
        // good-50%-720p-1/2 vs bad-100%-540p-1 (§2.3).
        let a = f(
            ImageQuality::Good,
            CropFactor::C50,
            Resolution::R720,
            FrameSampling::S1_2,
        );
        let b = f(
            ImageQuality::Bad,
            CropFactor::C100,
            Resolution::R540,
            FrameSampling::Full,
        );
        assert_eq!(a.compare(&b), Richness::Incomparable);
        assert_eq!(b.compare(&a), Richness::Incomparable);
        assert!(!a.richer_or_equal(&b));
        assert!(!b.richer_or_equal(&a));
    }

    #[test]
    fn join_is_upper_bound() {
        let a = f(
            ImageQuality::Good,
            CropFactor::C50,
            Resolution::R720,
            FrameSampling::S1_2,
        );
        let b = f(
            ImageQuality::Bad,
            CropFactor::C100,
            Resolution::R540,
            FrameSampling::Full,
        );
        let j = a.join(&b);
        assert!(j.richer_or_equal(&a));
        assert!(j.richer_or_equal(&b));
        assert_eq!(j.quality, ImageQuality::Good);
        assert_eq!(j.crop, CropFactor::C100);
        assert_eq!(j.resolution, Resolution::R720);
        assert_eq!(j.sampling, FrameSampling::Full);
    }

    #[test]
    fn meet_is_lower_bound() {
        let a = f(
            ImageQuality::Good,
            CropFactor::C50,
            Resolution::R720,
            FrameSampling::S1_2,
        );
        let b = f(
            ImageQuality::Bad,
            CropFactor::C100,
            Resolution::R540,
            FrameSampling::Full,
        );
        let m = a.meet(&b);
        assert!(a.richer_or_equal(&m));
        assert!(b.richer_or_equal(&m));
    }

    #[test]
    fn join_all_of_empty_is_none() {
        assert_eq!(Fidelity::join_all([].iter()), None);
        let one = [Fidelity::POOREST];
        assert_eq!(Fidelity::join_all(one.iter()), Some(Fidelity::POOREST));
    }

    #[test]
    fn pixel_accounting() {
        let full = f(
            ImageQuality::Best,
            CropFactor::C100,
            Resolution::R720,
            FrameSampling::Full,
        );
        assert_eq!(full.pixels_per_frame(), 1280 * 720);
        assert!((full.pixels_per_video_second() - (1280.0 * 720.0 * 30.0)).abs() < 1e-6);
        let half = f(
            ImageQuality::Best,
            CropFactor::C50,
            Resolution::R720,
            FrameSampling::Full,
        );
        assert_eq!(half.pixels_per_frame(), (1280 * 720) / 2);
    }

    #[test]
    fn label_matches_paper_notation() {
        let c = f(
            ImageQuality::Good,
            CropFactor::C100,
            Resolution::R540,
            FrameSampling::S1_6,
        );
        assert_eq!(c.label(), "good-540p-1/6-100%");
    }

    #[test]
    fn richness_volume_monotone_in_each_knob() {
        let base = f(
            ImageQuality::Bad,
            CropFactor::C75,
            Resolution::R360,
            FrameSampling::S1_2,
        );
        let richer_q = f(
            ImageQuality::Good,
            CropFactor::C75,
            Resolution::R360,
            FrameSampling::S1_2,
        );
        let richer_r = f(
            ImageQuality::Bad,
            CropFactor::C75,
            Resolution::R540,
            FrameSampling::S1_2,
        );
        assert!(richer_q.richness_volume() > base.richness_volume());
        assert!(richer_r.richness_volume() > base.richness_volume());
    }
}
