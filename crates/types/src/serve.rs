//! Options of the connection-serving front end (`vstore-serve`).
//!
//! The serving layer accepts typed requests from many concurrent clients,
//! pushes them onto a **bounded queue**, and drains the queue with a
//! thread-per-core worker pool driving cloned `VStore` handles. These
//! options size that machinery and pick the back-pressure policy applied
//! when clients outrun the store. Like [`RuntimeOptions`](crate::RuntimeOptions),
//! they are validated at the front door — a zeroed knob is rejected with
//! [`VStoreError::InvalidArgument`] before a single thread spawns.

use crate::runtime::available_workers;
use crate::{Result, VStoreError};
use serde::{Deserialize, Serialize};

/// What the server does with a new request when its bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueFullPolicy {
    /// Shed the request: `submit` returns [`VStoreError::Busy`] immediately
    /// and the request is never executed. Memory use stays bounded no matter
    /// how fast clients submit — the load-shedding default.
    Reject,
    /// Block the submitting client until a slot frees up (or the server
    /// shuts down). Turns overload into client-side latency instead of
    /// errors; appropriate for trusted in-process clients.
    Block,
}

/// Options of one serving front end, passed to `VStore::serve`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeOptions {
    /// Worker threads draining the request queue, each driving its own
    /// cloned `VStore` handle. Defaults to the host's available cores
    /// (thread-per-core).
    pub workers: usize,
    /// Capacity of the bounded request queue shared by all clients. Requests
    /// beyond this depth are shed or block per [`on_full`](Self::on_full) —
    /// the queue can never grow without bound.
    pub queue_depth: usize,
    /// Back-pressure policy applied when the queue is full.
    pub on_full: QueueFullPolicy,
}

/// Default bounded-queue capacity: deep enough to absorb bursts from tens
/// of clients, shallow enough that shed requests see milliseconds of lag,
/// not seconds.
pub const DEFAULT_QUEUE_DEPTH: usize = 256;

impl ServeOptions {
    /// One worker, a queue of one, rejecting when full: the fully serial
    /// front end (useful for deterministic tests).
    pub fn sequential() -> Self {
        ServeOptions {
            workers: 1,
            queue_depth: 1,
            on_full: QueueFullPolicy::Reject,
        }
    }

    /// Replace the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Replace the queue capacity.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Replace the back-pressure policy.
    pub fn with_on_full(mut self, on_full: QueueFullPolicy) -> Self {
        self.on_full = on_full;
        self
    }

    /// Reject configurations with zeroed knobs, mirroring
    /// [`RuntimeOptions::validate`](crate::RuntimeOptions::validate): a bad
    /// knob surfaces as [`VStoreError::InvalidArgument`] at `serve` time
    /// instead of deadlocking an empty worker pool or a zero-slot queue.
    pub fn validate(&self) -> Result<()> {
        let reject = |knob: &str| {
            Err(VStoreError::invalid_argument(format!(
                "ServeOptions::{knob} must be >= 1 (use ServeOptions::sequential() \
                 for the serial front end)"
            )))
        };
        if self.workers == 0 {
            return reject("workers");
        }
        if self.queue_depth == 0 {
            return reject("queue_depth");
        }
        Ok(())
    }
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: available_workers(),
            queue_depth: DEFAULT_QUEUE_DEPTH,
            on_full: QueueFullPolicy::Reject,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_thread_per_core_and_load_shedding() {
        let opts = ServeOptions::default();
        assert!(opts.workers >= 1);
        assert_eq!(opts.queue_depth, DEFAULT_QUEUE_DEPTH);
        assert_eq!(opts.on_full, QueueFullPolicy::Reject);
        assert!(opts.validate().is_ok());
    }

    #[test]
    fn sequential_is_all_ones() {
        let opts = ServeOptions::sequential();
        assert_eq!(opts.workers, 1);
        assert_eq!(opts.queue_depth, 1);
        assert!(opts.validate().is_ok());
    }

    #[test]
    fn builders_replace_each_knob() {
        let opts = ServeOptions::default()
            .with_workers(3)
            .with_queue_depth(17)
            .with_on_full(QueueFullPolicy::Block);
        assert_eq!(opts.workers, 3);
        assert_eq!(opts.queue_depth, 17);
        assert_eq!(opts.on_full, QueueFullPolicy::Block);
    }

    #[test]
    fn validate_rejects_zeroed_knobs() {
        for (workers, queue_depth) in [(0, 1), (1, 0), (0, 0)] {
            let opts = ServeOptions {
                workers,
                queue_depth,
                on_full: QueueFullPolicy::Reject,
            };
            let err = opts.validate().unwrap_err();
            assert!(
                matches!(err, VStoreError::InvalidArgument(_)),
                "expected InvalidArgument, got {err}"
            );
        }
    }
}
