//! Consumers: `<operator, target accuracy>` tuples (§2.2, §4.1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The operator library supported by VStore (Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OperatorKind {
    /// Frame difference detector — filters out frames similar to their
    /// predecessor (NoScope's early filter).
    Diff,
    /// Specialised shallow NN that rapidly detects a specific object class.
    SpecializedNN,
    /// Generic full NN (YOLOv2 in the paper).
    FullNN,
    /// Motion detector using background subtraction (OpenALPR pipeline).
    Motion,
    /// Licence plate region detector.
    License,
    /// Optical character recognition over detected plate regions.
    Ocr,
    /// Optical flow for tracking object movements.
    OpticalFlow,
    /// Detector for contents of a specific colour.
    Color,
    /// Detector for contour boundaries.
    Contour,
}

impl OperatorKind {
    /// All operators, in the order of Table 2 (used by Figure 12's
    /// operator-scaling experiment).
    pub const ALL: [OperatorKind; 9] = [
        OperatorKind::Diff,
        OperatorKind::SpecializedNN,
        OperatorKind::FullNN,
        OperatorKind::Motion,
        OperatorKind::License,
        OperatorKind::Ocr,
        OperatorKind::OpticalFlow,
        OperatorKind::Color,
        OperatorKind::Contour,
    ];

    /// The six operators used by the paper's two end-to-end queries
    /// (query A: Diff, S-NN, NN; query B: Motion, License, OCR).
    pub const QUERY_OPS: [OperatorKind; 6] = [
        OperatorKind::Diff,
        OperatorKind::SpecializedNN,
        OperatorKind::FullNN,
        OperatorKind::Motion,
        OperatorKind::License,
        OperatorKind::Ocr,
    ];

    /// Short name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            OperatorKind::Diff => "Diff",
            OperatorKind::SpecializedNN => "S-NN",
            OperatorKind::FullNN => "NN",
            OperatorKind::Motion => "Motion",
            OperatorKind::License => "License",
            OperatorKind::Ocr => "OCR",
            OperatorKind::OpticalFlow => "Opflow",
            OperatorKind::Color => "Color",
            OperatorKind::Contour => "Contour",
        }
    }

    /// `true` if the paper runs this operator on the GPU (NoScope pipeline);
    /// `false` for the CPU-based OpenALPR/OpenCV operators.
    pub fn runs_on_gpu(&self) -> bool {
        matches!(
            self,
            OperatorKind::Diff | OperatorKind::SpecializedNN | OperatorKind::FullNN
        )
    }
}

impl fmt::Display for OperatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A target accuracy level, expressed as an F1 score in `(0, 1]`.
///
/// Stored in thousandths so the type is `Eq + Hash` and can key maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AccuracyLevel(u16);

/// The accuracy levels declared by the system admin in the paper's
/// evaluation: {0.95, 0.9, 0.8, 0.7}.
pub const DEFAULT_ACCURACY_LEVELS: [AccuracyLevel; 4] = [
    AccuracyLevel(950),
    AccuracyLevel(900),
    AccuracyLevel(800),
    AccuracyLevel(700),
];

impl AccuracyLevel {
    /// Construct from an F1 value in `(0, 1]`. Values are clamped into
    /// `[0.001, 1.0]` and rounded to the nearest thousandth.
    pub fn new(f1: f64) -> Self {
        let clamped = f1.clamp(0.001, 1.0);
        AccuracyLevel((clamped * 1000.0).round() as u16)
    }

    /// The target F1 value.
    pub fn value(&self) -> f64 {
        f64::from(self.0) / 1000.0
    }

    /// Exact accuracy (F1 = 1.0): consume the ingestion-fidelity video.
    pub const EXACT: AccuracyLevel = AccuracyLevel(1000);
}

impl fmt::Display for AccuracyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}", self.value())
    }
}

/// A video consumer: an operator executed at a target accuracy.
///
/// VStore tracks the whole set of `<operator, accuracy>` tuples as consumers
/// and derives one consumption format per consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Consumer {
    /// The operator.
    pub op: OperatorKind,
    /// The target accuracy (F1).
    pub accuracy: AccuracyLevel,
}

impl Consumer {
    /// Construct a consumer from an operator and a target F1 value.
    pub fn new(op: OperatorKind, f1: f64) -> Self {
        Consumer {
            op,
            accuracy: AccuracyLevel::new(f1),
        }
    }

    /// The full consumer set used in the paper's evaluation: the six query
    /// operators, each at the four default accuracy levels (24 consumers).
    pub fn evaluation_set() -> Vec<Consumer> {
        let mut out = Vec::with_capacity(24);
        for op in OperatorKind::QUERY_OPS {
            for acc in DEFAULT_ACCURACY_LEVELS {
                out.push(Consumer { op, accuracy: acc });
            }
        }
        out
    }
}

impl fmt::Display for Consumer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}⟩", self.op, self.accuracy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_library_matches_table2() {
        assert_eq!(OperatorKind::ALL.len(), 9);
        assert_eq!(OperatorKind::Diff.name(), "Diff");
        assert_eq!(OperatorKind::SpecializedNN.name(), "S-NN");
        assert!(OperatorKind::FullNN.runs_on_gpu());
        assert!(!OperatorKind::License.runs_on_gpu());
    }

    #[test]
    fn accuracy_level_round_trips() {
        let a = AccuracyLevel::new(0.95);
        assert!((a.value() - 0.95).abs() < 1e-9);
        assert_eq!(AccuracyLevel::new(1.5), AccuracyLevel::EXACT);
        assert!(AccuracyLevel::new(0.9) > AccuracyLevel::new(0.8));
    }

    #[test]
    fn evaluation_consumer_set_is_24() {
        let set = Consumer::evaluation_set();
        assert_eq!(set.len(), 24);
        // All distinct.
        let mut dedup = set.clone();
        dedup.sort_by_key(|c| (c.op, c.accuracy));
        dedup.dedup();
        assert_eq!(dedup.len(), 24);
    }

    #[test]
    fn consumer_display() {
        let c = Consumer::new(OperatorKind::Motion, 0.9);
        assert_eq!(c.to_string(), "⟨Motion, 0.90⟩");
    }
}
