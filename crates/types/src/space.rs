//! Enumerable knob spaces: the 4-D fidelity space `F` and the coding space
//! `C` (§2.3). The configuration engine searches these spaces; the profiler
//! and the benchmarks iterate over them.

use crate::fidelity::Fidelity;
use crate::format::CodingOption;
use crate::knobs::{
    CropFactor, FrameSampling, ImageQuality, KeyframeInterval, Resolution, SpeedStep,
};
use serde::{Deserialize, Serialize};

/// The 4-D fidelity space `F = quality × crop × resolution × sampling`.
///
/// A space may be restricted (e.g. profiling on a subset of resolutions) by
/// constructing it with explicit axis values; [`FidelitySpace::full`] is the
/// complete 600-option space of Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FidelitySpace {
    /// Admissible image-quality values, ascending richness.
    pub qualities: Vec<ImageQuality>,
    /// Admissible crop factors, ascending richness.
    pub crops: Vec<CropFactor>,
    /// Admissible resolutions, ascending richness.
    pub resolutions: Vec<Resolution>,
    /// Admissible sampling rates, ascending richness.
    pub samplings: Vec<FrameSampling>,
}

impl FidelitySpace {
    /// The full fidelity space of Table 1 (600 options).
    pub fn full() -> Self {
        FidelitySpace {
            qualities: ImageQuality::ALL.to_vec(),
            crops: CropFactor::ALL.to_vec(),
            resolutions: Resolution::ALL.to_vec(),
            samplings: FrameSampling::ALL.to_vec(),
        }
    }

    /// A reduced space used by unit tests and by the Figure 8 walkthrough:
    /// five resolutions, full sampling/crop/quality axes.
    pub fn figure8() -> Self {
        FidelitySpace {
            qualities: ImageQuality::ALL.to_vec(),
            crops: CropFactor::ALL.to_vec(),
            resolutions: vec![
                Resolution::R60,
                Resolution::R100,
                Resolution::R200,
                Resolution::R400,
                Resolution::R600,
            ],
            samplings: FrameSampling::ALL.to_vec(),
        }
    }

    /// A reduced space for fast tests and examples: six resolutions
    /// (including the 720p ingestion resolution, so accuracy 1.0 stays
    /// reachable) and the full quality/crop/sampling axes — 360 options.
    pub fn reduced() -> Self {
        FidelitySpace {
            qualities: ImageQuality::ALL.to_vec(),
            crops: CropFactor::ALL.to_vec(),
            resolutions: vec![
                Resolution::R60,
                Resolution::R100,
                Resolution::R200,
                Resolution::R400,
                Resolution::R600,
                Resolution::R720,
            ],
            samplings: FrameSampling::ALL.to_vec(),
        }
    }

    /// Total number of fidelity options in the space.
    pub fn len(&self) -> usize {
        self.qualities.len() * self.crops.len() * self.resolutions.len() * self.samplings.len()
    }

    /// `true` if any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The richest fidelity in the space (knob-wise maxima), or `None` when
    /// the space is empty.
    pub fn richest(&self) -> Option<Fidelity> {
        Some(Fidelity {
            quality: *self.qualities.last()?,
            crop: *self.crops.last()?,
            resolution: *self.resolutions.last()?,
            sampling: *self.samplings.last()?,
        })
    }

    /// Iterate over every fidelity option in the space.
    pub fn iter(&self) -> impl Iterator<Item = Fidelity> + '_ {
        self.qualities.iter().flat_map(move |&q| {
            self.crops.iter().flat_map(move |&c| {
                self.resolutions.iter().flat_map(move |&r| {
                    self.samplings.iter().map(move |&s| Fidelity {
                        quality: q,
                        crop: c,
                        resolution: r,
                        sampling: s,
                    })
                })
            })
        })
    }

    /// `true` if the fidelity lies within the space (every knob value is on
    /// the corresponding axis).
    pub fn contains(&self, f: &Fidelity) -> bool {
        self.qualities.contains(&f.quality)
            && self.crops.contains(&f.crop)
            && self.resolutions.contains(&f.resolution)
            && self.samplings.contains(&f.sampling)
    }
}

impl Default for FidelitySpace {
    fn default() -> Self {
        FidelitySpace::full()
    }
}

/// The coding space `C`: 25 encoded options plus the RAW bypass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodingSpace {
    /// Admissible keyframe intervals.
    pub keyframe_intervals: Vec<KeyframeInterval>,
    /// Admissible speed steps.
    pub speeds: Vec<SpeedStep>,
    /// Whether the RAW bypass is admissible.
    pub allow_raw: bool,
}

impl CodingSpace {
    /// The full coding space of Table 1.
    pub fn full() -> Self {
        CodingSpace {
            keyframe_intervals: KeyframeInterval::ALL.to_vec(),
            speeds: SpeedStep::ALL.to_vec(),
            allow_raw: true,
        }
    }

    /// Number of coding options (including RAW when admissible).
    pub fn len(&self) -> usize {
        self.keyframe_intervals.len() * self.speeds.len() + usize::from(self.allow_raw)
    }

    /// `true` when no option is admissible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over every coding option; RAW comes last when admissible.
    pub fn iter(&self) -> impl Iterator<Item = CodingOption> + '_ {
        let encoded = self.keyframe_intervals.iter().flat_map(move |&ki| {
            self.speeds.iter().map(move |&sp| CodingOption::Encoded {
                keyframe_interval: ki,
                speed: sp,
            })
        });
        encoded.chain(self.allow_raw.then_some(CodingOption::Raw))
    }
}

impl Default for CodingSpace {
    fn default() -> Self {
        CodingSpace::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_space_sizes_match_paper() {
        let f = FidelitySpace::full();
        assert_eq!(f.len(), 600);
        assert_eq!(f.iter().count(), 600);
        let c = CodingSpace::full();
        assert_eq!(c.len(), 26);
        assert_eq!(c.iter().count(), 26);
        // 600 fidelity × 25 encoded coding options = 15K storage formats.
        assert_eq!(f.len() * (c.len() - 1), 15_000);
    }

    #[test]
    fn richest_of_full_space_is_ingestion() {
        assert_eq!(FidelitySpace::full().richest(), Some(Fidelity::INGESTION));
    }

    #[test]
    fn contains_checks_every_axis() {
        let space = FidelitySpace::figure8();
        assert!(space.contains(&Fidelity::new(
            ImageQuality::Best,
            CropFactor::C100,
            Resolution::R600,
            FrameSampling::Full
        )));
        // 720p is not on the figure-8 resolution axis.
        assert!(!space.contains(&Fidelity::INGESTION));
    }

    #[test]
    fn iteration_yields_unique_options() {
        let space = FidelitySpace::figure8();
        let mut all: Vec<Fidelity> = space.iter().collect();
        let before = all.len();
        all.sort_by_key(|f| {
            (
                f.quality.rank(),
                f.crop.rank(),
                f.resolution.rank(),
                f.sampling.rank(),
            )
        });
        all.dedup();
        assert_eq!(all.len(), before);
        assert_eq!(before, space.len());
    }

    #[test]
    fn raw_can_be_excluded() {
        let mut c = CodingSpace::full();
        c.allow_raw = false;
        assert_eq!(c.len(), 25);
        assert!(c.iter().all(|opt| !opt.is_raw()));
    }
}
