//! Video format knobs and their value domains (Table 1 of the paper).
//!
//! Every knob exposes:
//! * `ALL` — the finite list of admissible values, in ascending *richness*
//!   (fidelity knobs) or ascending *thoroughness* (coding knobs);
//! * `rank()` — position in that order, used by the richer-than partial
//!   order and by distance-based coalescing;
//! * a human-readable label matching the paper's notation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Image quality, i.e. the quantisation aggressiveness of the encoder.
///
/// Maps to x264 CRF values 50 / 40 / 23 / 0 in the paper. Quality affects
/// accuracy and storage size but — observation **O2** — not the consumption
/// cost of operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ImageQuality {
    /// CRF 50 — heaviest quantisation, smallest output, worst visual quality.
    Worst,
    /// CRF 40.
    Bad,
    /// CRF 23 — the x264 default.
    Good,
    /// CRF 0 — visually lossless.
    Best,
}

impl ImageQuality {
    /// All values in ascending richness.
    pub const ALL: [ImageQuality; 4] = [
        ImageQuality::Worst,
        ImageQuality::Bad,
        ImageQuality::Good,
        ImageQuality::Best,
    ];

    /// Position in the richness order (0 = poorest).
    pub fn rank(self) -> usize {
        match self {
            ImageQuality::Worst => 0,
            ImageQuality::Bad => 1,
            ImageQuality::Good => 2,
            ImageQuality::Best => 3,
        }
    }

    /// The equivalent x264 constant-rate-factor value quoted by the paper.
    pub fn crf(self) -> u8 {
        match self {
            ImageQuality::Worst => 50,
            ImageQuality::Bad => 40,
            ImageQuality::Good => 23,
            ImageQuality::Best => 0,
        }
    }

    /// Fraction of visual signal retained after quantisation, in `(0, 1]`.
    ///
    /// Used by the synthetic codec and the operator detection models; chosen
    /// so that one quality step has the large accuracy impact reported in
    /// Figure 4(b).
    pub fn signal_retention(self) -> f64 {
        match self {
            ImageQuality::Worst => 0.35,
            ImageQuality::Bad => 0.62,
            ImageQuality::Good => 0.88,
            ImageQuality::Best => 1.0,
        }
    }

    /// Short label used in configuration tables (`best-720p-1-100%`).
    pub fn label(self) -> &'static str {
        match self {
            ImageQuality::Worst => "worst",
            ImageQuality::Bad => "bad",
            ImageQuality::Good => "good",
            ImageQuality::Best => "best",
        }
    }
}

impl fmt::Display for ImageQuality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Crop factor: the centred fraction of the frame area retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CropFactor {
    /// Keep the central 50 % of the frame.
    C50,
    /// Keep the central 75 % of the frame.
    C75,
    /// Keep the full frame.
    C100,
}

impl CropFactor {
    /// All values in ascending richness.
    pub const ALL: [CropFactor; 3] = [CropFactor::C50, CropFactor::C75, CropFactor::C100];

    /// Position in the richness order (0 = poorest).
    pub fn rank(self) -> usize {
        match self {
            CropFactor::C50 => 0,
            CropFactor::C75 => 1,
            CropFactor::C100 => 2,
        }
    }

    /// Retained fraction of the frame area, in `(0, 1]`.
    pub fn fraction(self) -> f64 {
        match self {
            CropFactor::C50 => 0.50,
            CropFactor::C75 => 0.75,
            CropFactor::C100 => 1.0,
        }
    }

    /// Retained fraction of each linear dimension, in `(0, 1]`.
    pub fn linear_fraction(self) -> f64 {
        self.fraction().sqrt()
    }

    /// Label such as `75%`.
    pub fn label(self) -> &'static str {
        match self {
            CropFactor::C50 => "50%",
            CropFactor::C75 => "75%",
            CropFactor::C100 => "100%",
        }
    }
}

impl fmt::Display for CropFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Output resolution. The paper uses ten values from 60×60 up to 720p.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Resolution {
    /// 60×60.
    R60,
    /// 100×100.
    R100,
    /// 144p (256×144).
    R144,
    /// 180p (320×180).
    R180,
    /// 200×200.
    R200,
    /// 360p (640×360).
    R360,
    /// 400×400.
    R400,
    /// 540p (960×540).
    R540,
    /// 600×600.
    R600,
    /// 720p (1280×720) — the ingestion resolution of all datasets.
    R720,
}

impl Resolution {
    /// All values in ascending richness (pixel count).
    ///
    /// Note that the square NoScope-style resolutions (200×200, 400×400,
    /// 600×600) interleave with the 16:9 "p" resolutions when ordered by
    /// pixel count: e.g. 180p (320×180 = 57.6 kpx) is richer than 200×200
    /// (40 kpx).
    pub const ALL: [Resolution; 10] = [
        Resolution::R60,
        Resolution::R100,
        Resolution::R144,
        Resolution::R200,
        Resolution::R180,
        Resolution::R400,
        Resolution::R360,
        Resolution::R600,
        Resolution::R540,
        Resolution::R720,
    ];

    /// Position in the richness order (0 = poorest).
    pub fn rank(self) -> usize {
        Resolution::ALL
            .iter()
            .position(|r| *r == self)
            .expect("resolution present in ALL") // vstore-lint: allow(no-unwrap) — ALL enumerates every variant
    }

    /// Frame width in pixels.
    pub fn width(self) -> u32 {
        match self {
            Resolution::R60 => 60,
            Resolution::R100 => 100,
            Resolution::R144 => 256,
            Resolution::R180 => 320,
            Resolution::R200 => 200,
            Resolution::R360 => 640,
            Resolution::R400 => 400,
            Resolution::R540 => 960,
            Resolution::R600 => 600,
            Resolution::R720 => 1280,
        }
    }

    /// Frame height in pixels.
    pub fn height(self) -> u32 {
        match self {
            Resolution::R60 => 60,
            Resolution::R100 => 100,
            Resolution::R144 => 144,
            Resolution::R180 => 180,
            Resolution::R200 => 200,
            Resolution::R360 => 360,
            Resolution::R400 => 400,
            Resolution::R540 => 540,
            Resolution::R600 => 600,
            Resolution::R720 => 720,
        }
    }

    /// Total pixel count of a full (uncropped) frame.
    pub fn pixels(self) -> u64 {
        u64::from(self.width()) * u64::from(self.height())
    }

    /// Label such as `540p` or `60x60`.
    pub fn label(self) -> &'static str {
        match self {
            Resolution::R60 => "60p",
            Resolution::R100 => "100p",
            Resolution::R144 => "144p",
            Resolution::R180 => "180p",
            Resolution::R200 => "200p",
            Resolution::R360 => "360p",
            Resolution::R400 => "400p",
            Resolution::R540 => "540p",
            Resolution::R600 => "600p",
            Resolution::R720 => "720p",
        }
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Frame sampling rate: the fraction of frames retained.
///
/// Table 1 lists `1/30, 1/5, 1/2, 2/3, 1`; the worked examples of the paper
/// (Figure 8 and Table 3) use `1/6` as the second value, which we follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FrameSampling {
    /// One frame out of every thirty (1 fps at a 30 fps source).
    S1_30,
    /// One frame out of every six (5 fps).
    S1_6,
    /// Every other frame (15 fps).
    S1_2,
    /// Two frames out of three (20 fps).
    S2_3,
    /// Every frame (30 fps).
    Full,
}

impl FrameSampling {
    /// All values in ascending richness.
    pub const ALL: [FrameSampling; 5] = [
        FrameSampling::S1_30,
        FrameSampling::S1_6,
        FrameSampling::S1_2,
        FrameSampling::S2_3,
        FrameSampling::Full,
    ];

    /// Position in the richness order (0 = poorest).
    pub fn rank(self) -> usize {
        match self {
            FrameSampling::S1_30 => 0,
            FrameSampling::S1_6 => 1,
            FrameSampling::S1_2 => 2,
            FrameSampling::S2_3 => 3,
            FrameSampling::Full => 4,
        }
    }

    /// Retained fraction of frames, in `(0, 1]`.
    pub fn fraction(self) -> f64 {
        match self {
            FrameSampling::S1_30 => 1.0 / 30.0,
            FrameSampling::S1_6 => 1.0 / 6.0,
            FrameSampling::S1_2 => 0.5,
            FrameSampling::S2_3 => 2.0 / 3.0,
            FrameSampling::Full => 1.0,
        }
    }

    /// The sampling interval in frames (inverse of [`fraction`](Self::fraction)),
    /// rounded to the nearest integer; `1` means every frame.
    pub fn interval(self) -> u32 {
        match self {
            FrameSampling::S1_30 => 30,
            FrameSampling::S1_6 => 6,
            FrameSampling::S1_2 => 2,
            // 2/3 keeps two frames out of three; the effective stride is 1.5
            // but the decoder still has to touch every other frame at worst.
            FrameSampling::S2_3 => 1,
            FrameSampling::Full => 1,
        }
    }

    /// Label such as `1/6`.
    pub fn label(self) -> &'static str {
        match self {
            FrameSampling::S1_30 => "1/30",
            FrameSampling::S1_6 => "1/6",
            FrameSampling::S1_2 => "1/2",
            FrameSampling::S2_3 => "2/3",
            FrameSampling::Full => "1",
        }
    }
}

impl fmt::Display for FrameSampling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Encoder/decoder speed step — analogous to the x264 `preset` knob.
///
/// Slower steps spend more cycles searching for redundancy and therefore
/// produce smaller files; faster steps trade size for throughput
/// (Figure 3(a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SpeedStep {
    /// x264 `veryslow`: smallest output, slowest encode.
    Slowest,
    /// x264 `medium`.
    Slow,
    /// x264 `veryfast`.
    Medium,
    /// x264 `superfast`.
    Fast,
    /// x264 `ultrafast`: largest output, fastest encode.
    Fastest,
}

impl SpeedStep {
    /// All values, from the most thorough (slowest) to the fastest.
    pub const ALL: [SpeedStep; 5] = [
        SpeedStep::Slowest,
        SpeedStep::Slow,
        SpeedStep::Medium,
        SpeedStep::Fast,
        SpeedStep::Fastest,
    ];

    /// Position in the order (0 = slowest / most thorough).
    pub fn rank(self) -> usize {
        match self {
            SpeedStep::Slowest => 0,
            SpeedStep::Slow => 1,
            SpeedStep::Medium => 2,
            SpeedStep::Fast => 3,
            SpeedStep::Fastest => 4,
        }
    }

    /// The x264 preset name quoted by the paper.
    pub fn preset(self) -> &'static str {
        match self {
            SpeedStep::Slowest => "veryslow",
            SpeedStep::Slow => "medium",
            SpeedStep::Medium => "veryfast",
            SpeedStep::Fast => "superfast",
            SpeedStep::Fastest => "ultrafast",
        }
    }

    /// Label such as `slowest`.
    pub fn label(self) -> &'static str {
        match self {
            SpeedStep::Slowest => "slowest",
            SpeedStep::Slow => "slow",
            SpeedStep::Medium => "med",
            SpeedStep::Fast => "fast",
            SpeedStep::Fastest => "fastest",
        }
    }
}

impl fmt::Display for SpeedStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Keyframe (GOP) interval in frames.
///
/// Smaller intervals let a sparsely-sampling consumer skip whole chunks while
/// decoding (Figure 3(b)) at the expense of a larger encoded size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum KeyframeInterval {
    /// A keyframe every 5 frames.
    K5,
    /// A keyframe every 10 frames.
    K10,
    /// A keyframe every 50 frames.
    K50,
    /// A keyframe every 100 frames.
    K100,
    /// A keyframe every 250 frames (the x264 default).
    K250,
}

impl KeyframeInterval {
    /// All values, ascending.
    pub const ALL: [KeyframeInterval; 5] = [
        KeyframeInterval::K5,
        KeyframeInterval::K10,
        KeyframeInterval::K50,
        KeyframeInterval::K100,
        KeyframeInterval::K250,
    ];

    /// Position in the order (0 = shortest interval).
    pub fn rank(self) -> usize {
        match self {
            KeyframeInterval::K5 => 0,
            KeyframeInterval::K10 => 1,
            KeyframeInterval::K50 => 2,
            KeyframeInterval::K100 => 3,
            KeyframeInterval::K250 => 4,
        }
    }

    /// Interval length in frames.
    pub fn frames(self) -> u32 {
        match self {
            KeyframeInterval::K5 => 5,
            KeyframeInterval::K10 => 10,
            KeyframeInterval::K50 => 50,
            KeyframeInterval::K100 => 100,
            KeyframeInterval::K250 => 250,
        }
    }

    /// Label such as `250`.
    pub fn label(self) -> &'static str {
        match self {
            KeyframeInterval::K5 => "5",
            KeyframeInterval::K10 => "10",
            KeyframeInterval::K50 => "50",
            KeyframeInterval::K100 => "100",
            KeyframeInterval::K250 => "250",
        }
    }
}

impl fmt::Display for KeyframeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_order_and_crf() {
        assert!(ImageQuality::Worst < ImageQuality::Bad);
        assert!(ImageQuality::Bad < ImageQuality::Good);
        assert!(ImageQuality::Good < ImageQuality::Best);
        assert_eq!(ImageQuality::Good.crf(), 23);
        assert_eq!(ImageQuality::Best.signal_retention(), 1.0);
        for pair in ImageQuality::ALL.windows(2) {
            assert!(pair[0].rank() < pair[1].rank());
            assert!(pair[0].signal_retention() < pair[1].signal_retention());
        }
    }

    #[test]
    fn crop_fractions() {
        assert_eq!(CropFactor::C100.fraction(), 1.0);
        assert!(CropFactor::C50.fraction() < CropFactor::C75.fraction());
        assert!((CropFactor::C50.linear_fraction() - 0.5_f64.sqrt()).abs() < 1e-12);
        for pair in CropFactor::ALL.windows(2) {
            assert!(pair[0].rank() < pair[1].rank());
        }
    }

    #[test]
    fn resolution_count_and_order() {
        assert_eq!(Resolution::ALL.len(), 10);
        for pair in Resolution::ALL.windows(2) {
            assert!(
                pair[0].pixels() < pair[1].pixels(),
                "{:?} !< {:?}",
                pair[0],
                pair[1]
            );
            assert!(pair[0].rank() < pair[1].rank());
        }
        assert_eq!(Resolution::R720.width(), 1280);
        assert_eq!(Resolution::R720.height(), 720);
    }

    #[test]
    fn sampling_fractions() {
        assert_eq!(FrameSampling::Full.fraction(), 1.0);
        for pair in FrameSampling::ALL.windows(2) {
            assert!(pair[0].fraction() < pair[1].fraction());
            assert!(pair[0].rank() < pair[1].rank());
        }
        assert_eq!(FrameSampling::S1_30.interval(), 30);
        assert_eq!(FrameSampling::Full.interval(), 1);
    }

    #[test]
    fn speed_steps_and_keyframe_intervals() {
        assert_eq!(SpeedStep::ALL.len(), 5);
        assert_eq!(SpeedStep::Slowest.preset(), "veryslow");
        assert_eq!(KeyframeInterval::ALL.len(), 5);
        for pair in KeyframeInterval::ALL.windows(2) {
            assert!(pair[0].frames() < pair[1].frames());
        }
    }

    #[test]
    fn knob_space_size_matches_paper() {
        let fidelity = ImageQuality::ALL.len()
            * CropFactor::ALL.len()
            * Resolution::ALL.len()
            * FrameSampling::ALL.len();
        assert_eq!(fidelity, 600);
        let coding = SpeedStep::ALL.len() * KeyframeInterval::ALL.len();
        assert_eq!(fidelity * coding, 15_000);
    }

    #[test]
    fn labels_round_trip_display() {
        assert_eq!(ImageQuality::Best.to_string(), "best");
        assert_eq!(CropFactor::C75.to_string(), "75%");
        assert_eq!(Resolution::R540.to_string(), "540p");
        assert_eq!(FrameSampling::S1_6.to_string(), "1/6");
        assert_eq!(SpeedStep::Medium.to_string(), "med");
        assert_eq!(KeyframeInterval::K250.to_string(), "250");
    }
}
