//! The configuration data model produced by backward derivation (§4):
//! consumption formats, storage formats, subscriptions, and the data
//! erosion plan.

use crate::consumer::Consumer;
use crate::error::{Result, VStoreError};
use crate::fidelity::Fidelity;
use crate::format::{ConsumptionFormat, FormatId, StorageFormat};
use crate::units::{Fraction, Speed};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The binding of one consumer to its consumption format and, downstream,
/// to the storage format the consumption format subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Subscription {
    /// The consumer this subscription serves.
    pub consumer: Consumer,
    /// The consumption format derived for the consumer (§4.2).
    pub consumption: ConsumptionFormat,
    /// Expected consumption speed of the consumer on that format.
    pub consumption_speed: Speed,
    /// Expected accuracy (F1) achieved on that format.
    pub expected_accuracy: f64,
    /// The storage format the consumption format subscribes to (§4.3).
    pub storage: FormatId,
    /// Retrieval speed of that storage format when serving *this* consumer
    /// (its sampling rate determines how much GOP skipping applies).
    /// Requirement R2 demands this is at least `consumption_speed`.
    pub retrieval_speed: Speed,
}

/// One age step of the erosion plan: for a given video age (in days), the
/// cumulative fraction of segments deleted from each storage format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErosionStep {
    /// Video age in days (1 = youngest full day).
    pub age_days: u32,
    /// Cumulative deleted fraction per storage format.
    pub deleted: BTreeMap<FormatId, Fraction>,
    /// The overall (max-min fair) relative consumer speed at this age.
    pub overall_relative_speed: f64,
}

impl ErosionStep {
    /// Deleted fraction of the given format at this age (zero if absent).
    pub fn deleted_fraction(&self, id: FormatId) -> Fraction {
        self.deleted.get(&id).copied().unwrap_or(Fraction::ZERO)
    }
}

/// The age-based data erosion plan (§4.4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErosionPlan {
    /// The decay factor `k` of the power-law target
    /// `P(x) = (1 − Pmin)·x^(−k) + Pmin`.
    pub decay_factor: f64,
    /// The minimum overall relative speed (all non-golden formats deleted).
    pub p_min: f64,
    /// Video lifespan in days.
    pub lifespan_days: u32,
    /// One step per age, ordered by age.
    pub steps: Vec<ErosionStep>,
}

impl ErosionPlan {
    /// A plan that never deletes anything (decay factor 0).
    pub fn no_erosion(lifespan_days: u32, p_min: f64) -> Self {
        let steps = (1..=lifespan_days)
            .map(|age_days| ErosionStep {
                age_days,
                deleted: BTreeMap::new(),
                overall_relative_speed: 1.0,
            })
            .collect();
        ErosionPlan {
            decay_factor: 0.0,
            p_min,
            lifespan_days,
            steps,
        }
    }

    /// The power-law speed target for a given age.
    pub fn speed_target(&self, age_days: u32) -> f64 {
        power_law_target(self.decay_factor, self.p_min, age_days)
    }

    /// The plan step for a given age, if within the lifespan.
    pub fn step(&self, age_days: u32) -> Option<&ErosionStep> {
        self.steps.iter().find(|s| s.age_days == age_days)
    }

    /// `true` if the plan never deletes any segment.
    pub fn is_no_op(&self) -> bool {
        self.steps
            .iter()
            .all(|s| s.deleted.values().all(|f| f.value() == 0.0))
    }
}

/// The power-law overall-speed target `P(x) = (1 − Pmin)·x^(−k) + Pmin`
/// used to schedule erosion over video ages (§4.4).
pub fn power_law_target(decay_factor: f64, p_min: f64, age_days: u32) -> f64 {
    let x = f64::from(age_days.max(1));
    (1.0 - p_min) * x.powf(-decay_factor) + p_min
}

/// A complete VStore configuration: the global set of video formats plus the
/// per-consumer subscriptions and the erosion plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Configuration {
    /// All storage formats, keyed by id. Always contains
    /// [`FormatId::GOLDEN`].
    pub storage_formats: BTreeMap<FormatId, StorageFormat>,
    /// Sequential retrieval (decode) speed of each storage format, as
    /// profiled at configuration time — the per-format figure of Table 3(b).
    pub retrieval_speeds: BTreeMap<FormatId, Speed>,
    /// One subscription per consumer.
    pub subscriptions: Vec<Subscription>,
    /// The erosion plan (may be a no-op when storage is under budget).
    pub erosion: ErosionPlan,
}

impl Configuration {
    /// The golden storage format (richest fidelity, never eroded).
    pub fn golden(&self) -> Option<&StorageFormat> {
        self.storage_formats.get(&FormatId::GOLDEN)
    }

    /// Number of *unique* consumption formats across all subscriptions.
    pub fn unique_consumption_formats(&self) -> usize {
        let mut fids: Vec<Fidelity> = self
            .subscriptions
            .iter()
            .map(|s| s.consumption.fidelity)
            .collect();
        fids.sort_by_key(|f| {
            (
                f.quality.rank(),
                f.crop.rank(),
                f.resolution.rank(),
                f.sampling.rank(),
            )
        });
        fids.dedup();
        fids.len()
    }

    /// Total number of knob values across all unique consumption formats
    /// (4 each) and storage formats (4 fidelity + up to 2 coding each). The
    /// paper quotes 109 knobs for its sample configuration.
    pub fn knob_count(&self) -> usize {
        let cf_knobs = self.unique_consumption_formats() * 4;
        let sf_knobs: usize = self
            .storage_formats
            .values()
            .map(|sf| 4 + if sf.coding.is_raw() { 1 } else { 2 })
            .sum();
        cf_knobs + sf_knobs
    }

    /// The subscription of a given consumer, if present.
    pub fn subscription(&self, consumer: &Consumer) -> Option<&Subscription> {
        self.subscriptions.iter().find(|s| s.consumer == *consumer)
    }

    /// Validate the configuration invariants (requirements R1–R3):
    ///
    /// * every subscription references an existing storage format;
    /// * each storage format's fidelity is richer-or-equal to that of every
    ///   consumption format subscribing to it (R1);
    /// * each storage format's retrieval speed is at least the consumption
    ///   speed of every downstream consumer (R2);
    /// * the golden format exists and is richer-or-equal to every stored
    ///   format and every consumption format.
    pub fn validate(&self) -> Result<()> {
        let golden = self.golden().ok_or_else(|| {
            VStoreError::InvalidState("configuration lacks a golden format".into())
        })?;
        for (id, sf) in &self.storage_formats {
            if !golden.fidelity.richer_or_equal(&sf.fidelity) {
                return Err(VStoreError::InvalidState(format!(
                    "golden format {} is not richer than {} ({})",
                    golden.fidelity, id, sf.fidelity
                )));
            }
        }
        for sub in &self.subscriptions {
            let sf = self.storage_formats.get(&sub.storage).ok_or_else(|| {
                VStoreError::InvalidState(format!(
                    "subscription of {} references missing {}",
                    sub.consumer, sub.storage
                ))
            })?;
            if !sf.satisfies(&sub.consumption) {
                return Err(VStoreError::FidelityUnsatisfiable(format!(
                    "{} (fidelity {}) cannot serve consumer {} needing {}",
                    sub.storage, sf.fidelity, sub.consumer, sub.consumption.fidelity
                )));
            }
            // Requirement R2: retrieval must not bottleneck consumption. A
            // small tolerance absorbs profiling noise.
            if sub.retrieval_speed.factor() < sub.consumption_speed.factor() * 0.999 {
                return Err(VStoreError::InvalidState(format!(
                    "retrieval of {} ({}) slower than consumer {} ({})",
                    sub.storage, sub.retrieval_speed, sub.consumer, sub.consumption_speed
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Configuration: {} consumers, {} unique CFs, {} SFs, {} knobs",
            self.subscriptions.len(),
            self.unique_consumption_formats(),
            self.storage_formats.len(),
            self.knob_count()
        )?;
        for (id, sf) in &self.storage_formats {
            let speed = self
                .retrieval_speeds
                .get(id)
                .map(|s| s.to_string())
                .unwrap_or_else(|| "?".into());
            writeln!(f, "  {id}: {} (retrieval {speed})", sf.label())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consumer::OperatorKind;
    use crate::format::CodingOption;
    use crate::knobs::{CropFactor, FrameSampling, ImageQuality, Resolution};

    fn sample_config() -> Configuration {
        let golden = StorageFormat::new(Fidelity::INGESTION, CodingOption::SMALLEST);
        let low = Fidelity::new(
            ImageQuality::Bad,
            CropFactor::C100,
            Resolution::R100,
            FrameSampling::S1_30,
        );
        let sf1 = StorageFormat::new(
            Fidelity::new(
                ImageQuality::Best,
                CropFactor::C100,
                Resolution::R200,
                FrameSampling::Full,
            ),
            CodingOption::Raw,
        );
        let mut storage_formats = BTreeMap::new();
        storage_formats.insert(FormatId::GOLDEN, golden);
        storage_formats.insert(FormatId(1), sf1);
        let mut retrieval_speeds = BTreeMap::new();
        retrieval_speeds.insert(FormatId::GOLDEN, Speed(23.0));
        retrieval_speeds.insert(FormatId(1), Speed(2000.0));
        let subscriptions = vec![
            Subscription {
                consumer: Consumer::new(OperatorKind::FullNN, 0.95),
                consumption: ConsumptionFormat::new(Fidelity::new(
                    ImageQuality::Good,
                    CropFactor::C100,
                    Resolution::R600,
                    FrameSampling::S2_3,
                )),
                consumption_speed: Speed(4.0),
                expected_accuracy: 0.96,
                storage: FormatId::GOLDEN,
                retrieval_speed: Speed(23.0),
            },
            Subscription {
                consumer: Consumer::new(OperatorKind::Motion, 0.9),
                consumption: ConsumptionFormat::new(low),
                consumption_speed: Speed(1500.0),
                expected_accuracy: 0.93,
                storage: FormatId(1),
                retrieval_speed: Speed(2000.0),
            },
        ];
        Configuration {
            storage_formats,
            retrieval_speeds,
            subscriptions,
            erosion: ErosionPlan::no_erosion(10, 0.1),
        }
    }

    #[test]
    fn valid_configuration_passes() {
        let cfg = sample_config();
        cfg.validate()
            .expect("sample configuration should be valid");
        assert_eq!(cfg.unique_consumption_formats(), 2);
        assert!(cfg.knob_count() > 0);
        assert!(cfg.golden().is_some());
        assert!(cfg.to_string().contains("SFg"));
    }

    #[test]
    fn unsatisfiable_fidelity_is_rejected() {
        let mut cfg = sample_config();
        // Make the Motion consumer demand a fidelity richer than SF1 offers.
        cfg.subscriptions[1].consumption = ConsumptionFormat::new(Fidelity::INGESTION);
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, VStoreError::FidelityUnsatisfiable(_)));
    }

    #[test]
    fn slow_retrieval_is_rejected() {
        let mut cfg = sample_config();
        cfg.subscriptions[1].retrieval_speed = Speed(10.0);
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, VStoreError::InvalidState(_)));
    }

    #[test]
    fn missing_golden_is_rejected() {
        let mut cfg = sample_config();
        cfg.storage_formats.remove(&FormatId::GOLDEN);
        // Repoint the NN subscription at SF1 so the only violation left is
        // the missing golden format.
        cfg.subscriptions[0].storage = FormatId(1);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn power_law_targets_decay() {
        let p1 = power_law_target(1.0, 0.1, 1);
        let p5 = power_law_target(1.0, 0.1, 5);
        let p10 = power_law_target(1.0, 0.1, 10);
        assert!((p1 - 1.0).abs() < 1e-12);
        assert!(p5 < p1 && p10 < p5);
        assert!(p10 >= 0.1);
        // Higher k decays faster.
        assert!(power_law_target(3.0, 0.1, 5) < power_law_target(1.0, 0.1, 5));
        // k = 0 never decays.
        assert_eq!(power_law_target(0.0, 0.1, 7), 1.0);
    }

    #[test]
    fn no_erosion_plan_is_no_op() {
        let plan = ErosionPlan::no_erosion(10, 0.05);
        assert!(plan.is_no_op());
        assert_eq!(plan.steps.len(), 10);
        assert_eq!(plan.speed_target(10), 1.0);
        assert_eq!(
            plan.step(3).unwrap().deleted_fraction(FormatId(1)),
            Fraction::ZERO
        );
    }
}
