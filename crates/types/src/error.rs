//! The error type shared by all VStore crates.

use std::fmt;
use std::io;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, VStoreError>;

/// Errors surfaced by VStore components.
#[derive(Debug)]
pub enum VStoreError {
    /// An I/O error from the storage backend or the ingestion pipeline.
    Io(io::Error),
    /// A stored record failed its integrity check (CRC mismatch, truncated
    /// record, bad magic).
    Corruption(String),
    /// A requested key (stream, format, segment) does not exist.
    NotFound(String),
    /// The requested video format cannot be produced from the available
    /// source (e.g. requesting a fidelity richer than the stored one).
    FidelityUnsatisfiable(String),
    /// The configuration engine could not satisfy a resource budget.
    BudgetUnsatisfiable(String),
    /// A consumer's target accuracy cannot be met by any fidelity option.
    AccuracyUnreachable(String),
    /// An argument violated an interface contract.
    InvalidArgument(String),
    /// The store or a component is in a state that does not permit the
    /// requested operation (e.g. querying before any configuration exists).
    InvalidState(String),
    /// The serving layer shed the request because its bounded queue is full
    /// (back-pressure). The request was not executed; retrying later is
    /// safe.
    Busy(String),
    /// A wire frame declared a protocol version this build does not speak.
    /// Distinguished from [`Corruption`](VStoreError::Corruption) so peers
    /// can tell a well-formed-but-newer frame from a damaged one.
    UnsupportedVersion {
        /// The version byte found in the frame.
        got: u8,
        /// The newest version this build understands.
        expected: u8,
    },
}

impl VStoreError {
    /// Build an [`VStoreError::InvalidArgument`] from anything displayable.
    pub fn invalid_argument(msg: impl fmt::Display) -> Self {
        VStoreError::InvalidArgument(msg.to_string())
    }

    /// Build an [`VStoreError::NotFound`] from anything displayable.
    pub fn not_found(msg: impl fmt::Display) -> Self {
        VStoreError::NotFound(msg.to_string())
    }

    /// Build an [`VStoreError::Corruption`] from anything displayable.
    pub fn corruption(msg: impl fmt::Display) -> Self {
        VStoreError::Corruption(msg.to_string())
    }

    /// Build an [`VStoreError::Busy`] from anything displayable.
    pub fn busy(msg: impl fmt::Display) -> Self {
        VStoreError::Busy(msg.to_string())
    }

    /// `true` if the error indicates a missing key rather than a failure.
    pub fn is_not_found(&self) -> bool {
        matches!(self, VStoreError::NotFound(_))
    }

    /// `true` if the error is back-pressure from a full serving queue: the
    /// request was shed, not failed, and retrying later is safe.
    pub fn is_busy(&self) -> bool {
        matches!(self, VStoreError::Busy(_))
    }

    /// Build an [`VStoreError::UnsupportedVersion`].
    pub fn unsupported_version(got: u8, expected: u8) -> Self {
        VStoreError::UnsupportedVersion { got, expected }
    }

    /// `true` if the error is a wire-protocol version mismatch.
    pub fn is_unsupported_version(&self) -> bool {
        matches!(self, VStoreError::UnsupportedVersion { .. })
    }
}

impl fmt::Display for VStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VStoreError::Io(e) => write!(f, "I/O error: {e}"),
            VStoreError::Corruption(m) => write!(f, "data corruption: {m}"),
            VStoreError::NotFound(m) => write!(f, "not found: {m}"),
            VStoreError::FidelityUnsatisfiable(m) => write!(f, "fidelity unsatisfiable: {m}"),
            VStoreError::BudgetUnsatisfiable(m) => write!(f, "budget unsatisfiable: {m}"),
            VStoreError::AccuracyUnreachable(m) => write!(f, "accuracy unreachable: {m}"),
            VStoreError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            VStoreError::InvalidState(m) => write!(f, "invalid state: {m}"),
            VStoreError::Busy(m) => write!(f, "busy: {m}"),
            VStoreError::UnsupportedVersion { got, expected } => {
                write!(f, "unsupported wire version {got} (expected {expected})")
            }
        }
    }
}

impl std::error::Error for VStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VStoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for VStoreError {
    fn from(e: io::Error) -> Self {
        VStoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = VStoreError::not_found("segment 42");
        assert_eq!(e.to_string(), "not found: segment 42");
        assert!(e.is_not_found());
        let e = VStoreError::invalid_argument("empty consumer set");
        assert!(e.to_string().contains("invalid argument"));
        assert!(!e.is_not_found());
    }

    #[test]
    fn busy_is_distinguishable_back_pressure() {
        let e = VStoreError::busy("serve queue full (depth 256)");
        assert!(e.is_busy());
        assert!(!e.is_not_found());
        assert_eq!(e.to_string(), "busy: serve queue full (depth 256)");
        assert!(!VStoreError::invalid_argument("x").is_busy());
    }

    #[test]
    fn unsupported_version_carries_both_versions() {
        let e = VStoreError::unsupported_version(7, 4);
        assert!(e.is_unsupported_version());
        assert!(!e.is_busy());
        assert_eq!(e.to_string(), "unsupported wire version 7 (expected 4)");
        assert!(matches!(
            e,
            VStoreError::UnsupportedVersion {
                got: 7,
                expected: 4
            }
        ));
        assert!(!VStoreError::corruption("bad crc").is_unsupported_version());
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error;
        let io_err = io::Error::other("disk on fire");
        let e: VStoreError = io_err.into();
        assert!(e.to_string().contains("disk on fire"));
        assert!(e.source().is_some());
        assert!(VStoreError::corruption("bad crc").source().is_none());
    }
}
