//! Consumption and storage formats (§3.1 of the paper).

use crate::fidelity::Fidelity;
use crate::knobs::{KeyframeInterval, SpeedStep};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A coding option `c`: either a real encode (speed step + keyframe
/// interval) or the *coding bypass* that stores raw frames on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodingOption {
    /// Store raw (uncompressed) frames; extremely cheap to retrieve, very
    /// expensive to store.
    Raw,
    /// Store an encoded bitstream.
    Encoded {
        /// GOP length in frames.
        keyframe_interval: KeyframeInterval,
        /// Encoder thoroughness.
        speed: SpeedStep,
    },
}

impl CodingOption {
    /// The coding option with the smallest output size (and the most
    /// expensive encode): slowest speed step, longest GOP.
    pub const SMALLEST: CodingOption = CodingOption::Encoded {
        keyframe_interval: KeyframeInterval::K250,
        speed: SpeedStep::Slowest,
    };

    /// The encoded option that is cheapest to decode sequentially: fastest
    /// speed step, longest GOP (fewer keyframes to reconstruct).
    pub const CHEAPEST_DECODE: CodingOption = CodingOption::Encoded {
        keyframe_interval: KeyframeInterval::K250,
        speed: SpeedStep::Fastest,
    };

    /// `true` if this option bypasses coding and stores raw frames.
    pub fn is_raw(&self) -> bool {
        matches!(self, CodingOption::Raw)
    }

    /// All encoded coding options (25 of them), ordered by
    /// (keyframe interval, speed step) rank. Excludes [`CodingOption::Raw`].
    pub fn all_encoded() -> Vec<CodingOption> {
        let mut out = Vec::with_capacity(25);
        for ki in KeyframeInterval::ALL {
            for sp in SpeedStep::ALL {
                out.push(CodingOption::Encoded {
                    keyframe_interval: ki,
                    speed: sp,
                });
            }
        }
        out
    }

    /// Paper-style label: `250-slowest`, or `RAW`.
    pub fn label(&self) -> String {
        match self {
            CodingOption::Raw => "RAW".to_owned(),
            CodingOption::Encoded {
                keyframe_interval,
                speed,
            } => {
                format!("{}-{}", keyframe_interval.label(), speed.label())
            }
        }
    }
}

impl fmt::Display for CodingOption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A consumption format `CF⟨f⟩`: the fidelity of the raw frame sequence
/// supplied to a consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConsumptionFormat {
    /// Fidelity of the supplied frames.
    pub fidelity: Fidelity,
}

impl ConsumptionFormat {
    /// Wrap a fidelity option as a consumption format.
    pub fn new(fidelity: Fidelity) -> Self {
        ConsumptionFormat { fidelity }
    }
}

impl fmt::Display for ConsumptionFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CF⟨{}⟩", self.fidelity)
    }
}

/// A storage format `SF⟨f, c⟩`: the fidelity and coding of an on-disk video
/// version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StorageFormat {
    /// Fidelity of the stored video version.
    pub fidelity: Fidelity,
    /// Coding of the stored video version.
    pub coding: CodingOption,
}

impl StorageFormat {
    /// Construct a storage format.
    pub fn new(fidelity: Fidelity, coding: CodingOption) -> Self {
        StorageFormat { fidelity, coding }
    }

    /// `true` if this storage format can serve the given consumption format
    /// (requirement **R1**: satisfiable fidelity).
    pub fn satisfies(&self, cf: &ConsumptionFormat) -> bool {
        self.fidelity.richer_or_equal(&cf.fidelity)
    }

    /// Paper-style label: `best-720p-1-100% / 250-slowest`.
    pub fn label(&self) -> String {
        format!("{} / {}", self.fidelity.label(), self.coding.label())
    }
}

impl fmt::Display for StorageFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SF⟨{}, {}⟩", self.fidelity, self.coding)
    }
}

/// Identifier of a storage format within one configuration.
///
/// `FormatId(0)` is reserved for the *golden* format by convention
/// ([`FormatId::GOLDEN`]); derived formats are numbered from 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FormatId(pub u32);

impl FormatId {
    /// The id conventionally used for the golden (never-eroded) format.
    pub const GOLDEN: FormatId = FormatId(0);

    /// `true` if this is the golden format id.
    pub fn is_golden(&self) -> bool {
        *self == FormatId::GOLDEN
    }
}

impl fmt::Display for FormatId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_golden() {
            write!(f, "SFg")
        } else {
            write!(f, "SF{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knobs::{CropFactor, FrameSampling, ImageQuality, Resolution};

    #[test]
    fn coding_option_labels() {
        assert_eq!(CodingOption::Raw.label(), "RAW");
        assert_eq!(CodingOption::SMALLEST.label(), "250-slowest");
        assert!(CodingOption::Raw.is_raw());
        assert!(!CodingOption::SMALLEST.is_raw());
    }

    #[test]
    fn all_encoded_has_25_options() {
        let all = CodingOption::all_encoded();
        assert_eq!(all.len(), 25);
        assert!(all.iter().all(|c| !c.is_raw()));
        // No duplicates.
        let mut dedup = all.clone();
        dedup.sort_by_key(|c| c.label());
        dedup.dedup();
        assert_eq!(dedup.len(), 25);
    }

    #[test]
    fn storage_format_satisfies_consumption_format() {
        let rich = Fidelity::INGESTION;
        let poor = Fidelity::new(
            ImageQuality::Bad,
            CropFactor::C75,
            Resolution::R180,
            FrameSampling::S1_30,
        );
        let sf = StorageFormat::new(rich, CodingOption::SMALLEST);
        assert!(sf.satisfies(&ConsumptionFormat::new(poor)));
        let sf_poor = StorageFormat::new(poor, CodingOption::Raw);
        assert!(!sf_poor.satisfies(&ConsumptionFormat::new(rich)));
        // Satisfiability is reflexive in fidelity.
        assert!(sf_poor.satisfies(&ConsumptionFormat::new(poor)));
    }

    #[test]
    fn format_id_display() {
        assert_eq!(FormatId::GOLDEN.to_string(), "SFg");
        assert_eq!(FormatId(3).to_string(), "SF3");
        assert!(FormatId::GOLDEN.is_golden());
        assert!(!FormatId(1).is_golden());
    }
}
