//! Checked integer conversions for the storage and read paths.
//!
//! The log format stores lengths as `u32`/`u64` while Rust indexes memory
//! with `usize`, so every boundary crossing is a potential silent
//! truncation: a >4 GiB value's length wraps when written as `u32`, and a
//! large on-disk length wraps on a 32-bit host when used as a buffer size.
//! These helpers make each crossing explicit and turn an out-of-range value
//! into a typed [`VStoreError`] instead of corrupt framing or a bogus
//! allocation.

use crate::{Result, VStoreError};

/// Convert a `u64` (wire/on-disk length or count) into a `usize`
/// (in-memory length).
///
/// Fails with [`VStoreError::InvalidArgument`] when the value does not fit
/// the platform's address width (only possible on 32-bit hosts). `what`
/// names the quantity, unit included when one applies — it is used for
/// byte lengths and element counts alike.
pub fn usize_from_u64(value: u64, what: &str) -> Result<usize> {
    usize::try_from(value).map_err(|_| {
        VStoreError::invalid_argument(format!(
            "{what} ({value}) exceeds this platform's addressable range"
        ))
    })
}

/// Convert a `usize` (in-memory length) into a `u32` (log-record length
/// field).
///
/// Fails with [`VStoreError::InvalidArgument`] when the value exceeds
/// `u32::MAX` — writing it unchecked would silently truncate the record's
/// framing and corrupt the log.
pub fn u32_from_usize(value: usize, what: &str) -> Result<u32> {
    u32::try_from(value).map_err(|_| {
        VStoreError::invalid_argument(format!(
            "{what} ({value}) exceeds the u32 record-length limit"
        ))
    })
}

/// Convert a `u64` (wire/on-disk field) into a `u32` (narrow framing
/// field), failing with [`VStoreError::InvalidArgument`] on overflow.
pub fn u32_from_u64(value: u64, what: &str) -> Result<u32> {
    u32::try_from(value).map_err(|_| {
        VStoreError::invalid_argument(format!("{what} ({value}) exceeds the u32 limit"))
    })
}

/// Convert a `usize` into a `u16` (e.g. a container dimension field),
/// failing with [`VStoreError::InvalidArgument`] on overflow.
pub fn u16_from_usize(value: usize, what: &str) -> Result<u16> {
    u16::try_from(value).map_err(|_| {
        VStoreError::invalid_argument(format!("{what} ({value}) exceeds the u16 limit"))
    })
}

/// Convert a `usize` into a `u8` (e.g. an enum rank tag), failing with
/// [`VStoreError::InvalidArgument`] on overflow.
pub fn u8_from_usize(value: usize, what: &str) -> Result<u8> {
    u8::try_from(value).map_err(|_| {
        VStoreError::invalid_argument(format!("{what} ({value}) exceeds the u8 limit"))
    })
}

/// Widen a `u32` (on-disk length or count) into a `usize`. Infallible on
/// every target this workspace supports (`usize` is at least 32 bits), so
/// unlike the narrowing helpers it returns the value directly.
pub fn usize_from_u32(value: u32) -> usize {
    // This crate is the one sanctioned home for raw integer casts; the
    // checked-cast analysis rule scopes storage/codec/serve, not types.
    value as usize
}

/// Round a non-negative `f64` (a scaled dimension) to `u32`, saturating at
/// the type bounds. `as` on floats saturates by definition since Rust
/// 1.45; the named helper keeps that intent visible at call sites.
pub fn u32_saturating_from_f64(value: f64) -> u32 {
    value.round() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_convert() {
        assert_eq!(usize_from_u64(0, "len").unwrap(), 0);
        assert_eq!(usize_from_u64(4096, "len").unwrap(), 4096);
        assert_eq!(u32_from_usize(0, "key").unwrap(), 0);
        assert_eq!(u32_from_usize(123_456, "key").unwrap(), 123_456);
        assert_eq!(u32_from_u64(7, "tag").unwrap(), 7);
        assert_eq!(u16_from_usize(65_535, "w").unwrap(), 65_535);
        assert_eq!(u8_from_usize(255, "rank").unwrap(), 255);
        assert_eq!(usize_from_u32(u32::MAX), u32::MAX as usize);
    }

    #[test]
    fn narrow_helpers_reject_overflow() {
        assert!(u32_from_u64(u64::from(u32::MAX) + 1, "tag").is_err());
        assert!(u16_from_usize(65_536, "w").is_err());
        assert!(u8_from_usize(256, "rank").is_err());
    }

    #[test]
    fn float_rounding_saturates() {
        assert_eq!(u32_saturating_from_f64(0.4), 0);
        assert_eq!(u32_saturating_from_f64(1.5), 2);
        assert_eq!(u32_saturating_from_f64(f64::from(u32::MAX) * 2.0), u32::MAX);
        assert_eq!(u32_saturating_from_f64(-3.0), 0);
    }

    #[test]
    fn oversized_usize_is_rejected_not_truncated() {
        #[cfg(target_pointer_width = "64")]
        {
            let too_big = u32::MAX as usize + 1;
            let err = u32_from_usize(too_big, "segment value").unwrap_err();
            assert!(matches!(err, VStoreError::InvalidArgument(_)), "{err}");
            assert!(err.to_string().contains("segment value"), "{err}");
        }
        // The largest representable value still converts.
        assert_eq!(u32_from_usize(u32::MAX as usize, "edge").unwrap(), u32::MAX);
    }

    #[test]
    #[cfg(target_pointer_width = "32")]
    fn oversized_u64_is_rejected_on_32_bit() {
        let err = usize_from_u64(u64::from(u32::MAX) + 1, "record").unwrap_err();
        assert!(matches!(err, VStoreError::InvalidArgument(_)));
    }
}
