//! Options of the live streaming ingest subsystem (`vstore-ingest`'s
//! `LiveIngestor`).
//!
//! Live ingest accepts an endless stream of camera segments, pushes them
//! onto a **bounded queue**, and drains the queue with background transcode
//! workers driving the offline ingestion pipeline. These options size that
//! machinery, pick the back-pressure policy applied when cameras outrun the
//! transcode budget, and set the lag threshold at which the degradation
//! ladder starts trading fidelity for throughput. Like
//! [`ServeOptions`](crate::ServeOptions), they are validated at the front
//! door — a zeroed knob is rejected with
//! [`VStoreError::InvalidArgument`] before a single thread spawns.

use crate::runtime::available_workers;
use crate::serve::{QueueFullPolicy, DEFAULT_QUEUE_DEPTH};
use crate::{Result, VStoreError};
use serde::{Deserialize, Serialize};

/// Queue depth (in segments) per degradation step: with the default the
/// ladder steps one level down for every 8 segments of backlog, so a camera
/// 8 segments behind is already being sampled coarser.
pub const DEFAULT_MAX_LAG_SEGMENTS: usize = 8;

/// Options of one live ingestor, passed to `VStore::live_ingest`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LiveIngestOptions {
    /// Background transcode workers draining the segment queue through the
    /// ingestion pipeline. Defaults to the host's available cores.
    pub workers: usize,
    /// Capacity of the bounded live segment queue. Segments beyond this
    /// depth are shed or block per [`on_full`](Self::on_full) — the camera
    /// backlog can never grow without bound.
    pub queue_depth: usize,
    /// Back-pressure policy applied to the offering source when the queue
    /// is full: [`QueueFullPolicy::Reject`] sheds the segment (counted in
    /// `LiveStats::shed`), [`QueueFullPolicy::Block`] stalls the source.
    pub on_full: QueueFullPolicy,
    /// Backlog (queued segments) per degradation-ladder step: a queue
    /// `k * max_lag_segments` deep runs at degradation level `k`. Fidelity
    /// is restored level by level as the backlog drains.
    pub max_lag_segments: usize,
}

impl LiveIngestOptions {
    /// One worker, a queue of one, rejecting when full, degrading after one
    /// queued segment: the fully serial ingestor (useful for deterministic
    /// tests).
    pub fn sequential() -> Self {
        LiveIngestOptions {
            workers: 1,
            queue_depth: 1,
            on_full: QueueFullPolicy::Reject,
            max_lag_segments: 1,
        }
    }

    /// Replace the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Replace the queue capacity.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Replace the back-pressure policy.
    pub fn with_on_full(mut self, on_full: QueueFullPolicy) -> Self {
        self.on_full = on_full;
        self
    }

    /// Replace the per-step lag threshold.
    pub fn with_max_lag_segments(mut self, max_lag_segments: usize) -> Self {
        self.max_lag_segments = max_lag_segments;
        self
    }

    /// Reject configurations with zeroed knobs, mirroring
    /// [`ServeOptions::validate`](crate::ServeOptions::validate): a bad knob
    /// surfaces as [`VStoreError::InvalidArgument`] at `live_ingest` time
    /// instead of deadlocking an empty worker pool, a zero-slot queue, or a
    /// divide-by-zero lag controller.
    pub fn validate(&self) -> Result<()> {
        let reject = |knob: &str| {
            Err(VStoreError::invalid_argument(format!(
                "LiveIngestOptions::{knob} must be >= 1 (use \
                 LiveIngestOptions::sequential() for the serial ingestor)"
            )))
        };
        if self.workers == 0 {
            return reject("workers");
        }
        if self.queue_depth == 0 {
            return reject("queue_depth");
        }
        if self.max_lag_segments == 0 {
            return reject("max_lag_segments");
        }
        Ok(())
    }
}

impl Default for LiveIngestOptions {
    fn default() -> Self {
        LiveIngestOptions {
            workers: available_workers(),
            queue_depth: DEFAULT_QUEUE_DEPTH,
            on_full: QueueFullPolicy::Reject,
            max_lag_segments: DEFAULT_MAX_LAG_SEGMENTS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_thread_per_core_and_load_shedding() {
        let opts = LiveIngestOptions::default();
        assert!(opts.workers >= 1);
        assert_eq!(opts.queue_depth, DEFAULT_QUEUE_DEPTH);
        assert_eq!(opts.on_full, QueueFullPolicy::Reject);
        assert_eq!(opts.max_lag_segments, DEFAULT_MAX_LAG_SEGMENTS);
        assert!(opts.validate().is_ok());
    }

    #[test]
    fn sequential_is_all_ones() {
        let opts = LiveIngestOptions::sequential();
        assert_eq!(opts.workers, 1);
        assert_eq!(opts.queue_depth, 1);
        assert_eq!(opts.max_lag_segments, 1);
        assert!(opts.validate().is_ok());
    }

    #[test]
    fn builders_replace_each_knob() {
        let opts = LiveIngestOptions::default()
            .with_workers(3)
            .with_queue_depth(17)
            .with_on_full(QueueFullPolicy::Block)
            .with_max_lag_segments(5);
        assert_eq!(opts.workers, 3);
        assert_eq!(opts.queue_depth, 17);
        assert_eq!(opts.on_full, QueueFullPolicy::Block);
        assert_eq!(opts.max_lag_segments, 5);
    }

    #[test]
    fn validate_rejects_zeroed_knobs() {
        for (workers, queue_depth, max_lag) in [(0, 1, 1), (1, 0, 1), (1, 1, 0), (0, 0, 0)] {
            let opts = LiveIngestOptions {
                workers,
                queue_depth,
                on_full: QueueFullPolicy::Reject,
                max_lag_segments: max_lag,
            };
            let err = opts.validate().unwrap_err();
            assert!(
                matches!(err, VStoreError::InvalidArgument(_)),
                "expected InvalidArgument, got {err}"
            );
        }
    }
}
