//! Options of the socket front end (`vstore-serve`'s `NetServer`).
//!
//! The network acceptor binds a TCP listener and drives a small set of
//! event-loop threads, each multiplexing many non-blocking connections:
//! length-prefixed request frames are decoded into the bounded serve queue
//! and completed responses are coalesced into batched vectored writes.
//! These options size that machinery. Like
//! [`ServeOptions`](crate::ServeOptions) they are validated at the front
//! door — a zeroed knob is rejected with
//! [`VStoreError::InvalidArgument`] before the listener binds.

use crate::runtime::available_workers;
use crate::{Result, VStoreError};
use serde::{Deserialize, Serialize};

/// Default cap on a declared frame length. Large enough for any response
/// the store produces today (the biggest payload is a query result's
/// positive-frame list), small enough that a hostile length prefix cannot
/// ask for gigabytes.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 4 * 1024 * 1024;

/// Default batching threshold: flush a connection's pending responses once
/// they exceed this many bytes.
pub const DEFAULT_BATCH_MAX_BYTES: usize = 64 * 1024;

/// Default batching latency bound in microseconds: pending responses are
/// flushed no later than this, even while more are still completing.
pub const DEFAULT_BATCH_MAX_DELAY_US: u64 = 200;

/// Default cap on concurrently served connections; accepts beyond it are
/// refused (closed immediately) and counted.
pub const DEFAULT_MAX_CONNECTIONS: usize = 1024;

/// Options of one socket front end, passed to `VStore::serve_net`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetOptions {
    /// Event-loop threads multiplexing the accepted connections. Each loop
    /// owns its connections outright (no cross-loop locking on the hot
    /// path). Defaults to the host's available cores, capped at 4 — event
    /// loops shuffle bytes; the serve workers do the actual work.
    pub event_loops: usize,
    /// Upper bound on a frame's declared length. A frame claiming more is
    /// rejected **at header-parse time, before any buffer grows** — a
    /// hostile length prefix never drives an allocation.
    pub max_frame_bytes: usize,
    /// Flush a connection's batched responses once the pending bytes reach
    /// this threshold.
    pub batch_max_bytes: usize,
    /// Flush a connection's batched responses no later than this many
    /// microseconds after the oldest pending response was queued. `0`
    /// disables coalescing-by-time (every loop iteration flushes).
    pub batch_max_delay_us: u64,
    /// Maximum concurrently served connections; accepts beyond it are
    /// refused and counted in `NetStats`.
    pub max_connections: usize,
    /// How long an event loop sleeps when none of its connections made
    /// progress, in microseconds. Lower is snappier under trickle load;
    /// higher burns less CPU while idle.
    pub poll_wait_us: u64,
}

impl NetOptions {
    /// Replace the event-loop count.
    pub fn with_event_loops(mut self, event_loops: usize) -> Self {
        self.event_loops = event_loops;
        self
    }

    /// Replace the frame-length cap.
    pub fn with_max_frame_bytes(mut self, max_frame_bytes: usize) -> Self {
        self.max_frame_bytes = max_frame_bytes;
        self
    }

    /// Replace the batch size threshold.
    pub fn with_batch_max_bytes(mut self, batch_max_bytes: usize) -> Self {
        self.batch_max_bytes = batch_max_bytes;
        self
    }

    /// Replace the batch latency bound.
    pub fn with_batch_max_delay_us(mut self, batch_max_delay_us: u64) -> Self {
        self.batch_max_delay_us = batch_max_delay_us;
        self
    }

    /// Replace the connection cap.
    pub fn with_max_connections(mut self, max_connections: usize) -> Self {
        self.max_connections = max_connections;
        self
    }

    /// Replace the idle poll wait.
    pub fn with_poll_wait_us(mut self, poll_wait_us: u64) -> Self {
        self.poll_wait_us = poll_wait_us;
        self
    }

    /// Reject configurations that cannot serve, mirroring
    /// [`ServeOptions::validate`](crate::ServeOptions::validate).
    pub fn validate(&self) -> Result<()> {
        let reject = |knob: &str, minimum: usize| {
            Err(VStoreError::invalid_argument(format!(
                "NetOptions::{knob} must be >= {minimum}"
            )))
        };
        if self.event_loops == 0 {
            return reject("event_loops", 1);
        }
        // A frame is at least the 8-byte correlation id plus the 5-byte
        // payload header (magic + version); anything smaller can never
        // carry a request.
        if self.max_frame_bytes < 64 {
            return reject("max_frame_bytes", 64);
        }
        if self.batch_max_bytes == 0 {
            return reject("batch_max_bytes", 1);
        }
        if self.max_connections == 0 {
            return reject("max_connections", 1);
        }
        Ok(())
    }
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            event_loops: available_workers().min(4),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            batch_max_bytes: DEFAULT_BATCH_MAX_BYTES,
            batch_max_delay_us: DEFAULT_BATCH_MAX_DELAY_US,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            poll_wait_us: 100,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        let opts = NetOptions::default();
        assert!(opts.event_loops >= 1);
        assert_eq!(opts.max_frame_bytes, DEFAULT_MAX_FRAME_BYTES);
        assert_eq!(opts.batch_max_bytes, DEFAULT_BATCH_MAX_BYTES);
        assert_eq!(opts.batch_max_delay_us, DEFAULT_BATCH_MAX_DELAY_US);
        assert_eq!(opts.max_connections, DEFAULT_MAX_CONNECTIONS);
        assert!(opts.validate().is_ok());
    }

    #[test]
    fn builders_replace_each_knob() {
        let opts = NetOptions::default()
            .with_event_loops(2)
            .with_max_frame_bytes(1 << 16)
            .with_batch_max_bytes(512)
            .with_batch_max_delay_us(50)
            .with_max_connections(8)
            .with_poll_wait_us(250);
        assert_eq!(opts.event_loops, 2);
        assert_eq!(opts.max_frame_bytes, 1 << 16);
        assert_eq!(opts.batch_max_bytes, 512);
        assert_eq!(opts.batch_max_delay_us, 50);
        assert_eq!(opts.max_connections, 8);
        assert_eq!(opts.poll_wait_us, 250);
        assert!(opts.validate().is_ok());
    }

    #[test]
    fn validate_rejects_unservable_knobs() {
        for opts in [
            NetOptions::default().with_event_loops(0),
            NetOptions::default().with_max_frame_bytes(8),
            NetOptions::default().with_batch_max_bytes(0),
            NetOptions::default().with_max_connections(0),
        ] {
            let err = opts.validate().unwrap_err();
            assert!(
                matches!(err, VStoreError::InvalidArgument(_)),
                "expected InvalidArgument, got {err}"
            );
        }
    }
}
