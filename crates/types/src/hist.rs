//! A fixed-size power-of-two latency histogram, shared by the serving
//! front end (queue wait / per-kind execution latency) and the storage
//! tiering subsystem (cold-hit latency).
//!
//! All rate math follows the workspace stats conventions: additions
//! saturate (a pinned counter degrades, never panics), and every derived
//! quantity renders 0 when nothing has been recorded — an idle component's
//! report contains no NaN.

use std::fmt;

/// Number of power-of-two latency buckets.
///
/// Bucket boundaries, precisely:
///
/// * bucket `0` holds only `0 µs` samples;
/// * bucket `i` for `1 ≤ i ≤ 30` holds samples in `[2^(i-1), 2^i)` µs —
///   so the bucket's reported upper bound `2^i` is exclusive;
/// * bucket `31` collects everything `≥ 2^30 µs` (≈ 17.9 minutes), and
///   its reported bound `2^31 µs` (≈ 35.8 minutes) understates samples
///   beyond it — [`LatencyHistogram::max_us`] keeps the true maximum.
pub const HISTOGRAM_BUCKETS: usize = 32;
const BUCKETS: usize = HISTOGRAM_BUCKETS;

/// A fixed-size power-of-two latency histogram over microseconds.
///
/// Recording is O(1), merging is element-wise, and percentiles are answered
/// as the upper bound of the bucket containing the requested rank — exact
/// enough for an operator report, with no allocation anywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    total_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            total_us: 0,
            max_us: 0,
        }
    }
}

impl LatencyHistogram {
    /// Record one sample in microseconds.
    pub fn record(&mut self, micros: u64) {
        let bucket = (64 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket] = self.buckets[bucket].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.total_us = self.total_us.saturating_add(micros);
        self.max_us = self.max_us.max(micros);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean latency in microseconds (0 when empty — never NaN).
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }

    /// Largest recorded sample in microseconds.
    #[must_use]
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Upper bound (µs) of the bucket holding the `p`-quantile sample
    /// (`p` in `[0, 1]`, values outside are clamped). 0 when empty.
    ///
    /// Edge cases, pinned by tests: `p = 0.0` ranks at the **first**
    /// sample (the smallest bucket's bound — not 0 unless a 0 µs sample
    /// exists); `p = 1.0` ranks at the last sample, answering the
    /// largest populated bucket's bound (see [`HISTOGRAM_BUCKETS`] for
    /// the exact boundaries). When every sample shares one bucket, all
    /// quantiles answer that bucket's bound.
    #[must_use]
    pub fn quantile_us(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * p.clamp(0.0, 1.0)).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                // Bucket i holds samples < 2^i µs (i == 0 holds 0 µs).
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max_us
    }

    /// The raw parts `(buckets, count, total_us, max_us)` — what a wire
    /// codec serialises. Reassemble with [`from_parts`](Self::from_parts).
    #[must_use]
    pub fn to_parts(&self) -> ([u64; HISTOGRAM_BUCKETS], u64, u64, u64) {
        (self.buckets, self.count, self.total_us, self.max_us)
    }

    /// Rebuild a histogram from the raw parts produced by
    /// [`to_parts`](Self::to_parts).
    #[must_use]
    pub fn from_parts(
        buckets: [u64; HISTOGRAM_BUCKETS],
        count: u64,
        total_us: u64,
        max_us: u64,
    ) -> Self {
        LatencyHistogram {
            buckets,
            count,
            total_us,
            max_us,
        }
    }

    /// Merge another histogram into this one (element-wise, saturating).
    pub fn accumulate(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.total_us = self.total_us.saturating_add(other.total_us);
        self.max_us = self.max_us.max(other.max_us);
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "idle");
        }
        write!(
            f,
            "n={}, mean {:.0} µs, p50 <{} µs, p99 <{} µs, max {} µs",
            self.count,
            self.mean_us(),
            self.quantile_us(0.50),
            self.quantile_us(0.99),
            self.max_us,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_and_answers_quantiles() {
        let mut h = LatencyHistogram::default();
        assert!(h.is_empty());
        assert_eq!(h.quantile_us(0.99), 0);
        for us in [1u64, 2, 3, 100, 1000, 100_000] {
            h.record(us);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max_us(), 100_000);
        assert!(h.mean_us() > 0.0);
        // p50 falls in a small bucket, p99 near the top sample.
        assert!(h.quantile_us(0.5) <= 128);
        assert!(h.quantile_us(0.99) >= 100_000 / 2);
        assert!(h.quantile_us(1.0) >= h.quantile_us(0.5));
    }

    #[test]
    fn histogram_merge_is_element_wise_and_saturating() {
        let mut a = LatencyHistogram::default();
        a.record(10);
        let mut b = LatencyHistogram::default();
        b.record(1000);
        b.count = u64::MAX; // pinned counter must not wrap the merge
        a.accumulate(&b);
        assert_eq!(a.count, u64::MAX);
        assert_eq!(a.max_us(), 1000);
    }

    #[test]
    fn raw_parts_round_trip() {
        let mut h = LatencyHistogram::default();
        for us in [0u64, 7, 4096, u64::MAX] {
            h.record(us);
        }
        let (buckets, count, total, max) = h.to_parts();
        assert_eq!(LatencyHistogram::from_parts(buckets, count, total, max), h);
    }

    /// The quantile edge cases the doc comment promises: p = 0.0 ranks at
    /// the first sample, p = 1.0 at the last, both clamped from outside
    /// `[0, 1]`, and an empty histogram answers 0 everywhere.
    #[test]
    fn quantile_extremes_rank_at_first_and_last_sample() {
        let empty = LatencyHistogram::default();
        assert_eq!(empty.quantile_us(0.0), 0);
        assert_eq!(empty.quantile_us(1.0), 0);

        let mut h = LatencyHistogram::default();
        h.record(3); // bucket 2, bound 4
        h.record(1000); // bucket 10, bound 1024
                        // p = 0.0 clamps the rank to the first sample: the smallest
                        // populated bucket's bound, not 0.
        assert_eq!(h.quantile_us(0.0), 4);
        assert_eq!(h.quantile_us(-1.0), 4);
        // p = 1.0 ranks at the last sample: the largest populated bound.
        assert_eq!(h.quantile_us(1.0), 1024);
        assert_eq!(h.quantile_us(2.0), 1024);
        // A recorded 0 µs sample makes the 0-quantile genuinely 0.
        h.record(0);
        assert_eq!(h.quantile_us(0.0), 0);
    }

    /// With every sample in one bucket, all quantiles collapse to that
    /// bucket's (exclusive) upper bound.
    #[test]
    fn single_bucket_answers_every_quantile_with_its_bound() {
        let mut h = LatencyHistogram::default();
        for _ in 0..5 {
            h.record(700); // bucket 10: [512, 1024)
        }
        for p in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_us(p), 1024, "p={p}");
        }
        assert_eq!(h.max_us(), 700);
    }

    /// Saturated accumulate: merging pinned counters and totals degrades
    /// to the ceiling instead of wrapping, and quantiles stay answerable.
    #[test]
    fn saturated_accumulate_pins_without_wrapping() {
        let mut a = LatencyHistogram::default();
        a.record(u64::MAX); // pins total_us and lands in the top bucket
        let mut b = LatencyHistogram::default();
        b.record(u64::MAX);
        b.record(1);
        a.accumulate(&b);
        let (_, count, total, max) = a.to_parts();
        assert_eq!(count, 3);
        assert_eq!(total, u64::MAX);
        assert_eq!(max, u64::MAX);
        // Two of three samples sit in the overflow bucket; p99 answers
        // its bound, and repeated self-merges saturate bucket counts.
        assert!(a.quantile_us(0.99) >= 1u64 << 31);
        let clone = a.clone();
        for _ in 0..3 {
            a.accumulate(&clone.clone());
        }
        assert!(a.count() > 3);
    }

    #[test]
    fn empty_histogram_renders_idle_without_nan() {
        let h = LatencyHistogram::default();
        assert_eq!(h.mean_us(), 0.0);
        let rendered = h.to_string();
        assert_eq!(rendered, "idle");
        assert!(!rendered.contains("NaN"));
    }
}
