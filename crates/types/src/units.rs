//! Measurement units used throughout VStore.
//!
//! The paper quantifies operator and retrieval performance as a multiple of
//! *video realtime* ("a 1-second video processed in 1 ms is 1000× realtime"),
//! storage as bytes (or GB/day per stream), and ingestion as CPU cores (or
//! CPU-core-seconds per video-second).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Processing speed expressed as a multiple of video realtime.
///
/// `Speed(362.0)` means one second of video is processed in `1/362` seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Speed(pub f64);

impl Speed {
    /// Exactly video realtime (1×).
    pub const REALTIME: Speed = Speed(1.0);

    /// Construct a speed from a video duration and the processing time spent
    /// on it. Returns an effectively infinite speed when `processing_seconds`
    /// is zero (e.g. zero frames touched).
    pub fn from_durations(video_seconds: f64, processing_seconds: f64) -> Speed {
        if processing_seconds <= 0.0 {
            Speed(f64::INFINITY)
        } else {
            Speed(video_seconds / processing_seconds)
        }
    }

    /// The ×realtime factor.
    pub fn factor(&self) -> f64 {
        self.0
    }

    /// Seconds of processing time needed per second of video.
    pub fn seconds_per_video_second(&self) -> f64 {
        if self.0 <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.0
        }
    }

    /// The smaller of two speeds — a pipeline runs at the speed of its
    /// slowest stage ("the operator runs at the speed of retrieval or
    /// consumption, whichever is lower").
    pub fn min(self, other: Speed) -> Speed {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two speeds.
    pub fn max(self, other: Speed) -> Speed {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Speed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_infinite() {
            write!(f, "∞x")
        } else if self.0 >= 100.0 {
            write!(f, "{:.0}x", self.0)
        } else {
            write!(f, "{:.1}x", self.0)
        }
    }
}

/// A byte count (storage cost).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Construct from a number of kibibytes.
    pub fn from_kib(kib: f64) -> ByteSize {
        ByteSize((kib * 1024.0).round() as u64)
    }

    /// Construct from a number of mebibytes.
    pub fn from_mib(mib: f64) -> ByteSize {
        ByteSize((mib * 1024.0 * 1024.0).round() as u64)
    }

    /// Construct from a number of gibibytes.
    pub fn from_gib(gib: f64) -> ByteSize {
        ByteSize((gib * 1024.0 * 1024.0 * 1024.0).round() as u64)
    }

    /// Construct from a number of tebibytes.
    pub fn from_tib(tib: f64) -> ByteSize {
        ByteSize((tib * 1024.0 * 1024.0 * 1024.0 * 1024.0).round() as u64)
    }

    /// The raw byte count.
    pub fn bytes(&self) -> u64 {
        self.0
    }

    /// The size in kibibytes.
    pub fn kib(&self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// The size in mebibytes.
    pub fn mib(&self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// The size in gibibytes.
    pub fn gib(&self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }

    /// Scale by a unitless factor (e.g. a retained fraction), rounding to the
    /// nearest byte.
    pub fn scale(self, factor: f64) -> ByteSize {
        ByteSize((self.0 as f64 * factor.max(0.0)).round() as u64)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if b >= 1024.0 * 1024.0 * 1024.0 * 1024.0 {
            write!(f, "{:.2} TiB", b / (1024.0_f64.powi(4)))
        } else if b >= 1024.0 * 1024.0 * 1024.0 {
            write!(f, "{:.2} GiB", b / (1024.0_f64.powi(3)))
        } else if b >= 1024.0 * 1024.0 {
            write!(f, "{:.2} MiB", b / (1024.0 * 1024.0))
        } else if b >= 1024.0 {
            write!(f, "{:.1} KiB", b / 1024.0)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// CPU-core-seconds: one core busy for one second.
///
/// Dividing by the wall-clock duration gives the number of busy cores
/// (the paper's "CPU utilisation %": 100 % = one core).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct CoreSeconds(pub f64);

impl CoreSeconds {
    /// Zero work.
    pub const ZERO: CoreSeconds = CoreSeconds(0.0);

    /// The number of cores kept busy if this work is spread over
    /// `wall_seconds` of wall-clock time.
    pub fn cores_over(&self, wall_seconds: f64) -> f64 {
        if wall_seconds <= 0.0 {
            f64::INFINITY
        } else {
            self.0 / wall_seconds
        }
    }
}

impl Add for CoreSeconds {
    type Output = CoreSeconds;
    fn add(self, rhs: CoreSeconds) -> CoreSeconds {
        CoreSeconds(self.0 + rhs.0)
    }
}

impl AddAssign for CoreSeconds {
    fn add_assign(&mut self, rhs: CoreSeconds) {
        self.0 += rhs.0;
    }
}

impl Sub for CoreSeconds {
    type Output = CoreSeconds;
    fn sub(self, rhs: CoreSeconds) -> CoreSeconds {
        CoreSeconds((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for CoreSeconds {
    type Output = CoreSeconds;
    fn mul(self, rhs: f64) -> CoreSeconds {
        CoreSeconds(self.0 * rhs)
    }
}

impl Div<f64> for CoreSeconds {
    type Output = CoreSeconds;
    fn div(self, rhs: f64) -> CoreSeconds {
        CoreSeconds(self.0 / rhs)
    }
}

impl Sum for CoreSeconds {
    fn sum<I: Iterator<Item = CoreSeconds>>(iter: I) -> CoreSeconds {
        iter.fold(CoreSeconds::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for CoreSeconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} core·s", self.0)
    }
}

/// A duration of video content in seconds (as opposed to wall-clock time).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct VideoSeconds(pub f64);

impl VideoSeconds {
    /// Zero duration.
    pub const ZERO: VideoSeconds = VideoSeconds(0.0);

    /// The duration in seconds.
    pub fn seconds(&self) -> f64 {
        self.0
    }

    /// The number of frames at the ingestion frame rate (30 fps).
    pub fn frames_at_30fps(&self) -> u64 {
        (self.0 * 30.0).round() as u64
    }
}

impl Add for VideoSeconds {
    type Output = VideoSeconds;
    fn add(self, rhs: VideoSeconds) -> VideoSeconds {
        VideoSeconds(self.0 + rhs.0)
    }
}

impl AddAssign for VideoSeconds {
    fn add_assign(&mut self, rhs: VideoSeconds) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for VideoSeconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} s", self.0)
    }
}

/// A fraction in `[0, 1]`, used for erosion plans and selectivities.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Fraction(f64);

impl Fraction {
    /// Zero.
    pub const ZERO: Fraction = Fraction(0.0);
    /// One.
    pub const ONE: Fraction = Fraction(1.0);

    /// Construct a fraction, clamping into `[0, 1]`.
    pub fn new(value: f64) -> Fraction {
        Fraction(value.clamp(0.0, 1.0))
    }

    /// The underlying value.
    pub fn value(&self) -> f64 {
        self.0
    }

    /// The complement `1 - self`.
    pub fn complement(&self) -> Fraction {
        Fraction(1.0 - self.0)
    }
}

impl fmt::Display for Fraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.0 * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_from_durations() {
        let s = Speed::from_durations(1.0, 0.001);
        assert!((s.factor() - 1000.0).abs() < 1e-9);
        assert!(Speed::from_durations(1.0, 0.0).factor().is_infinite());
        assert_eq!(Speed(10.0).min(Speed(5.0)).factor(), 5.0);
        assert_eq!(Speed(10.0).max(Speed(5.0)).factor(), 10.0);
        assert!((Speed(4.0).seconds_per_video_second() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn speed_display() {
        assert_eq!(Speed(362.0).to_string(), "362x");
        assert_eq!(Speed(1.5).to_string(), "1.5x");
    }

    #[test]
    fn byte_size_conversions() {
        let one_gib = ByteSize::from_gib(1.0);
        assert_eq!(one_gib.bytes(), 1024 * 1024 * 1024);
        assert!((one_gib.mib() - 1024.0).abs() < 1e-9);
        assert_eq!(ByteSize(100) + ByteSize(28), ByteSize(128));
        assert_eq!(ByteSize(100).saturating_sub(ByteSize(200)), ByteSize::ZERO);
        assert_eq!(ByteSize(1000).scale(0.5), ByteSize(500));
        let total: ByteSize = [ByteSize(1), ByteSize(2), ByteSize(3)].into_iter().sum();
        assert_eq!(total, ByteSize(6));
    }

    #[test]
    fn byte_size_display_units() {
        assert_eq!(ByteSize(512).to_string(), "512 B");
        assert_eq!(ByteSize::from_kib(2.0).to_string(), "2.0 KiB");
        assert_eq!(ByteSize::from_gib(2.5).to_string(), "2.50 GiB");
    }

    #[test]
    fn core_seconds_accounting() {
        let w = CoreSeconds(90.0);
        assert!((w.cores_over(10.0) - 9.0).abs() < 1e-12);
        assert!((w * 2.0).0 > w.0);
        let total: CoreSeconds = [CoreSeconds(1.0), CoreSeconds(2.0)].into_iter().sum();
        assert!((total.0 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn video_seconds_frames() {
        assert_eq!(VideoSeconds(8.0).frames_at_30fps(), 240);
        assert_eq!(VideoSeconds(0.5).frames_at_30fps(), 15);
    }

    #[test]
    fn fraction_clamps() {
        assert_eq!(Fraction::new(1.5).value(), 1.0);
        assert_eq!(Fraction::new(-0.5).value(), 0.0);
        assert!((Fraction::new(0.25).complement().value() - 0.75).abs() < 1e-12);
    }
}
