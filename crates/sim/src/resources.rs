//! Resource usage accounting and the virtual clock.
//!
//! All costs in the paper are expressed relative to video time (×realtime,
//! cores to keep up with a 30 fps stream, GB/day per stream). To report
//! those figures independently of the host machine, the substrate charges
//! work to a [`ResourceUsage`] ledger and advances a [`VirtualClock`] instead
//! of measuring wall-clock time.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use vstore_types::{ByteSize, CoreSeconds, Speed, VideoSeconds};

/// The resource types tracked by the ledger (Figure 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// CPU seconds spent transcoding at ingestion.
    TranscodeCpu,
    /// Decoder seconds spent in retrieval.
    Decode,
    /// Bytes read from disk in retrieval.
    DiskRead,
    /// Bytes served from the in-memory segment cache in retrieval (reads
    /// that would have been [`DiskRead`](ResourceKind::DiskRead) had the
    /// cache missed).
    MemRead,
    /// Bytes fetched from the cold storage tier in retrieval (reads of
    /// segments that erosion demoted instead of deleting).
    ColdRead,
    /// Bytes written to disk at ingestion.
    DiskWrite,
    /// Disk space currently occupied.
    DiskSpace,
    /// GPU seconds spent by consuming operators.
    GpuCompute,
    /// CPU seconds spent by consuming operators.
    OperatorCpu,
}

impl ResourceKind {
    /// All tracked resource kinds.
    pub const ALL: [ResourceKind; 9] = [
        ResourceKind::TranscodeCpu,
        ResourceKind::Decode,
        ResourceKind::DiskRead,
        ResourceKind::MemRead,
        ResourceKind::ColdRead,
        ResourceKind::DiskWrite,
        ResourceKind::DiskSpace,
        ResourceKind::GpuCompute,
        ResourceKind::OperatorCpu,
    ];
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ResourceKind::TranscodeCpu => "transcode-cpu",
            ResourceKind::Decode => "decode",
            ResourceKind::DiskRead => "disk-read",
            ResourceKind::MemRead => "mem-read",
            ResourceKind::ColdRead => "cold-read",
            ResourceKind::DiskWrite => "disk-write",
            ResourceKind::DiskSpace => "disk-space",
            ResourceKind::GpuCompute => "gpu",
            ResourceKind::OperatorCpu => "operator-cpu",
        };
        f.write_str(name)
    }
}

/// An immutable snapshot of accumulated resource usage.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceUsage {
    seconds: BTreeMap<ResourceKind, f64>,
    bytes: BTreeMap<ResourceKind, u64>,
}

impl ResourceUsage {
    /// An empty ledger snapshot.
    pub fn new() -> Self {
        ResourceUsage::default()
    }

    /// Add compute time (seconds) for a resource kind.
    pub fn add_seconds(&mut self, kind: ResourceKind, seconds: f64) {
        *self.seconds.entry(kind).or_insert(0.0) += seconds.max(0.0);
    }

    /// Add a byte count for a resource kind.
    pub fn add_bytes(&mut self, kind: ResourceKind, bytes: u64) {
        *self.bytes.entry(kind).or_insert(0) += bytes;
    }

    /// Accumulated seconds for a kind.
    pub fn seconds(&self, kind: ResourceKind) -> f64 {
        self.seconds.get(&kind).copied().unwrap_or(0.0)
    }

    /// Accumulated bytes for a kind.
    pub fn bytes(&self, kind: ResourceKind) -> ByteSize {
        ByteSize(self.bytes.get(&kind).copied().unwrap_or(0))
    }

    /// CPU work spent transcoding, as core-seconds.
    pub fn transcode_work(&self) -> CoreSeconds {
        CoreSeconds(self.seconds(ResourceKind::TranscodeCpu))
    }

    /// Total compute seconds across operator CPU and GPU.
    pub fn consumption_seconds(&self) -> f64 {
        self.seconds(ResourceKind::OperatorCpu) + self.seconds(ResourceKind::GpuCompute)
    }

    /// Merge another snapshot into this one.
    pub fn merge(&mut self, other: &ResourceUsage) {
        for (k, v) in &other.seconds {
            *self.seconds.entry(*k).or_insert(0.0) += v;
        }
        for (k, v) in &other.bytes {
            *self.bytes.entry(*k).or_insert(0) += v;
        }
    }

    /// `true` if nothing has been charged.
    pub fn is_empty(&self) -> bool {
        self.seconds.values().all(|v| *v == 0.0) && self.bytes.values().all(|v| *v == 0)
    }
}

impl fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for kind in ResourceKind::ALL {
            let s = self.seconds(kind);
            let b = self.bytes(kind);
            if s > 0.0 || b.bytes() > 0 {
                write!(f, "[{kind}: {s:.3}s {b}] ")?;
            }
        }
        Ok(())
    }
}

/// A shared, thread-safe virtual clock plus resource ledger.
///
/// Pipelines (ingestion, retrieval, queries) charge simulated processing time
/// to the clock; experiments then read off speeds as
/// `video duration / charged time`, matching the paper's metric.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    inner: Arc<Mutex<ClockInner>>,
}

#[derive(Debug, Default)]
struct ClockInner {
    /// Virtual wall-clock seconds elapsed.
    now: f64,
    /// Video seconds that have flowed through the component being timed.
    video_processed: f64,
    usage: ResourceUsage,
}

impl VirtualClock {
    /// A fresh clock at time zero with an empty ledger.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.inner.lock().now
    }

    /// Advance virtual time by `seconds` (clamped to non-negative).
    pub fn advance(&self, seconds: f64) {
        self.inner.lock().now += seconds.max(0.0);
    }

    /// Record that `video` seconds of content were fully processed.
    pub fn add_video_processed(&self, video: VideoSeconds) {
        self.inner.lock().video_processed += video.seconds();
    }

    /// Charge compute seconds of the given kind and advance the clock by the
    /// same amount (single-threaded component model).
    pub fn charge_seconds(&self, kind: ResourceKind, seconds: f64) {
        let mut inner = self.inner.lock();
        inner.usage.add_seconds(kind, seconds);
        inner.now += seconds.max(0.0);
    }

    /// Charge compute seconds without advancing the clock (work that happens
    /// on a resource running in parallel with the timed path).
    pub fn charge_background_seconds(&self, kind: ResourceKind, seconds: f64) {
        self.inner.lock().usage.add_seconds(kind, seconds);
    }

    /// Charge a byte count (disk traffic, disk space).
    pub fn charge_bytes(&self, kind: ResourceKind, bytes: ByteSize) {
        self.inner.lock().usage.add_bytes(kind, bytes.bytes());
    }

    /// Snapshot of the accumulated usage.
    pub fn usage(&self) -> ResourceUsage {
        self.inner.lock().usage.clone()
    }

    /// Overall processing speed: video seconds processed per virtual second.
    pub fn speed(&self) -> Speed {
        let inner = self.inner.lock();
        Speed::from_durations(inner.video_processed, inner.now)
    }

    /// Video seconds recorded as processed.
    pub fn video_processed(&self) -> VideoSeconds {
        VideoSeconds(self.inner.lock().video_processed)
    }

    /// Reset time, ledger and processed-video counters.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        *inner = ClockInner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates_and_merges() {
        let mut a = ResourceUsage::new();
        a.add_seconds(ResourceKind::Decode, 1.5);
        a.add_bytes(ResourceKind::DiskRead, 1000);
        let mut b = ResourceUsage::new();
        b.add_seconds(ResourceKind::Decode, 0.5);
        b.add_bytes(ResourceKind::DiskRead, 24);
        a.merge(&b);
        assert!((a.seconds(ResourceKind::Decode) - 2.0).abs() < 1e-12);
        assert_eq!(a.bytes(ResourceKind::DiskRead), ByteSize(1024));
        assert!(!a.is_empty());
        assert!(ResourceUsage::new().is_empty());
    }

    #[test]
    fn negative_charges_are_clamped() {
        let mut u = ResourceUsage::new();
        u.add_seconds(ResourceKind::GpuCompute, -5.0);
        assert_eq!(u.seconds(ResourceKind::GpuCompute), 0.0);
    }

    #[test]
    fn clock_speed_is_video_over_time() {
        let clock = VirtualClock::new();
        clock.charge_seconds(ResourceKind::Decode, 0.25);
        clock.add_video_processed(VideoSeconds(10.0));
        assert!((clock.speed().factor() - 40.0).abs() < 1e-9);
        assert!((clock.now() - 0.25).abs() < 1e-12);
        clock.reset();
        assert_eq!(clock.now(), 0.0);
        assert!(clock.usage().is_empty());
    }

    #[test]
    fn background_charges_do_not_advance_time() {
        let clock = VirtualClock::new();
        clock.charge_background_seconds(ResourceKind::TranscodeCpu, 3.0);
        assert_eq!(clock.now(), 0.0);
        assert!((clock.usage().transcode_work().0 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn clock_is_shared_between_clones() {
        let clock = VirtualClock::new();
        let clone = clock.clone();
        clone.advance(2.0);
        assert!((clock.now() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn usage_display_mentions_active_kinds() {
        let mut u = ResourceUsage::new();
        u.add_seconds(ResourceKind::Decode, 1.0);
        let s = u.to_string();
        assert!(s.contains("decode"));
        assert!(!s.contains("gpu"));
    }
}
