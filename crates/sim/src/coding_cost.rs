//! Calibrated coding cost model: encoded size, encode speed/cost, decode and
//! retrieval speed as functions of fidelity, coding option and content
//! motion.
//!
//! The block codec in `vstore-codec` really compresses the synthetic frames,
//! but its absolute throughput on this host says nothing about x264/NVDEC on
//! the paper's testbed. All speeds and sizes reported by experiments
//! therefore come from this model, calibrated against the figures the paper
//! publishes:
//!
//! * Figure 3(a): the speed step spans roughly a 40× range in encoding speed
//!   and up to 2.5× in encoded size;
//! * Figure 3(b): shrinking the keyframe interval from 250 to 5 grows the
//!   video by ~4× and speeds up sparse-sampling decode by up to ~6×;
//! * Table 3(b): the golden `best-720p-1-100% / 250-slowest` format costs
//!   ~1.4 MB per video-second and retrieves at ~23×; RAW 200×200 frames cost
//!   ~1.8 MB/s and retrieve at 1137×–34132× depending on consumer sampling;
//! * §6.2: around 9 cores transcode one stream into the four derived storage
//!   formats in real time.

use crate::machine::MachineSpec;
use serde::{Deserialize, Serialize};
use vstore_types::{
    ByteSize, CodingOption, Fidelity, FrameSampling, ImageQuality, KeyframeInterval, Speed,
    SpeedStep, StorageFormat,
};

/// Bytes per pixel of a raw YUV420 frame.
pub const RAW_BYTES_PER_PIXEL: f64 = 1.5;

/// The calibrated coding cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodingCostModel {
    /// The machine whose decoder/disk figures bound retrieval.
    pub machine: MachineSpec,
    /// Number of encoder threads an FFmpeg-style transcoder instance uses
    /// when reporting *encode speed* (Figure 3(a) is measured on a
    /// multi-threaded encoder; ingestion *cost* is still charged per core).
    pub encoder_threads: u32,
}

impl CodingCostModel {
    /// Model for the paper's testbed.
    pub fn paper_testbed() -> Self {
        CodingCostModel {
            machine: MachineSpec::paper_testbed(),
            encoder_threads: 10,
        }
    }

    /// Model for a given machine.
    pub fn new(machine: MachineSpec) -> Self {
        CodingCostModel {
            machine,
            encoder_threads: 10,
        }
    }

    // ------------------------------------------------------------------
    // Size model
    // ------------------------------------------------------------------

    /// Intra-frame (keyframe) bits per pixel for a quality level.
    fn intra_bits_per_pixel(quality: ImageQuality) -> f64 {
        match quality {
            ImageQuality::Worst => 0.28,
            ImageQuality::Bad => 0.60,
            ImageQuality::Good => 1.30,
            ImageQuality::Best => 3.00,
        }
    }

    /// Size multiplier of the encoder speed step (Figure 3(a): up to ~2.5×).
    fn speed_size_factor(speed: SpeedStep) -> f64 {
        match speed {
            SpeedStep::Slowest => 1.00,
            SpeedStep::Slow => 1.18,
            SpeedStep::Medium => 1.45,
            SpeedStep::Fast => 1.85,
            SpeedStep::Fastest => 2.50,
        }
    }

    /// Effective inter-frame motion given the content's motion intensity and
    /// the stored sampling stride: sampling every 30th frame makes adjacent
    /// stored frames far less similar, pushing inter frames towards intra
    /// cost.
    fn effective_motion(motion: f64, sampling: FrameSampling) -> f64 {
        let stride = 1.0 / sampling.fraction();
        (motion.clamp(0.0, 1.0) * stride.sqrt()).min(1.0)
    }

    /// Average bits per pixel of an encoded stream.
    fn bits_per_pixel(
        quality: ImageQuality,
        speed: SpeedStep,
        keyframe_interval: KeyframeInterval,
        sampling: FrameSampling,
        motion: f64,
    ) -> f64 {
        let intra = Self::intra_bits_per_pixel(quality);
        let m = Self::effective_motion(motion, sampling);
        // Inter frames cost a small floor plus a motion-proportional share of
        // the intra cost.
        let inter = intra * (0.03 + 0.55 * m);
        let gop = f64::from(keyframe_interval.frames());
        let key_share = 1.0 / gop;
        let blended = key_share * intra + (1.0 - key_share) * inter;
        blended * Self::speed_size_factor(speed)
    }

    /// Pixels of stored video per second of content, after resolution, crop
    /// and the *stored* sampling rate are applied.
    fn stored_pixels_per_video_second(fidelity: &Fidelity) -> f64 {
        fidelity.pixels_per_video_second()
    }

    /// Size of one video-second stored as raw YUV420 frames.
    pub fn raw_bytes_per_video_second(&self, fidelity: &Fidelity) -> ByteSize {
        let px = Self::stored_pixels_per_video_second(fidelity);
        ByteSize((px * RAW_BYTES_PER_PIXEL).round() as u64)
    }

    /// Size of one video-second in the given storage format for content with
    /// the given motion intensity (`0.0` = static scene, `1.0` = dash-cam).
    pub fn bytes_per_video_second(&self, format: &StorageFormat, motion: f64) -> ByteSize {
        match format.coding {
            CodingOption::Raw => self.raw_bytes_per_video_second(&format.fidelity),
            CodingOption::Encoded {
                keyframe_interval,
                speed,
            } => {
                let px = Self::stored_pixels_per_video_second(&format.fidelity);
                let bpp = Self::bits_per_pixel(
                    format.fidelity.quality,
                    speed,
                    keyframe_interval,
                    format.fidelity.sampling,
                    motion,
                );
                ByteSize((px * bpp / 8.0).round().max(1.0) as u64)
            }
        }
    }

    /// Storage cost in GB per day of continuously stored video.
    pub fn gb_per_day(&self, format: &StorageFormat, motion: f64) -> f64 {
        self.bytes_per_video_second(format, motion).bytes() as f64 * 86_400.0 / 1e9
    }

    // ------------------------------------------------------------------
    // Encode model
    // ------------------------------------------------------------------

    /// Encoder throughput per core in pixels/second for a speed step
    /// (x264-style: `veryslow` ≈ 4.5 Mpx/s, `ultrafast` ≈ 180 Mpx/s).
    fn encode_pixels_per_core_second(speed: SpeedStep) -> f64 {
        match speed {
            SpeedStep::Slowest => 4.5e6,
            SpeedStep::Slow => 12.0e6,
            SpeedStep::Medium => 30.0e6,
            SpeedStep::Fast => 80.0e6,
            SpeedStep::Fastest => 180.0e6,
        }
    }

    /// CPU cores required to transcode one ingested stream into this storage
    /// format in real time. RAW storage still pays a small resize/copy cost.
    pub fn encode_cores_for_realtime(&self, format: &StorageFormat, motion: f64) -> f64 {
        let px = Self::stored_pixels_per_video_second(&format.fidelity);
        match format.coding {
            CodingOption::Raw => px / 600.0e6,
            CodingOption::Encoded {
                speed,
                keyframe_interval,
            } => {
                // Shorter GOPs insert more (cheap-to-choose, expensive-to-code)
                // keyframes; the paper observes encoding speed is mostly
                // unaffected, so the factor stays small.
                let gop_penalty = 1.0 + 2.0 / f64::from(keyframe_interval.frames());
                let m = 0.85 + 0.35 * motion.clamp(0.0, 1.0);
                px * gop_penalty * m / Self::encode_pixels_per_core_second(speed)
            }
        }
    }

    /// Encoding speed (×realtime) of one multi-threaded transcoder instance
    /// for this format — the quantity plotted in Figure 3(a).
    pub fn encode_speed(&self, format: &StorageFormat, motion: f64) -> Speed {
        let cores = self.encode_cores_for_realtime(format, motion);
        if cores <= 0.0 {
            return Speed(f64::INFINITY);
        }
        Speed(f64::from(self.encoder_threads) / cores)
    }

    // ------------------------------------------------------------------
    // Decode / retrieval model
    // ------------------------------------------------------------------

    /// Decoder pixel throughput for inter frames at a quality level. Heavier
    /// bitstreams (richer quality) decode slower per pixel.
    fn decode_pixels_per_second(&self, quality: ImageQuality) -> f64 {
        let base = self.machine.decoder_pixel_rate;
        match quality {
            ImageQuality::Worst => base * 1.35,
            ImageQuality::Bad => base * 1.25,
            ImageQuality::Good => base * 1.10,
            ImageQuality::Best => base,
        }
    }

    /// Seconds to decode a single stored frame.
    fn decode_seconds_per_frame(&self, fidelity: &Fidelity, is_keyframe: bool) -> f64 {
        let px = fidelity.pixels_per_frame() as f64;
        let rate = self.decode_pixels_per_second(fidelity.quality);
        let key_factor = if is_keyframe { 2.2 } else { 1.0 };
        px * key_factor / rate + self.machine.decoder_frame_overhead
    }

    /// Number of stored frames per second of video for a fidelity.
    fn stored_frames_per_video_second(fidelity: &Fidelity) -> f64 {
        30.0 * fidelity.sampling.fraction()
    }

    /// Sequential decode speed (×realtime) of an encoded storage format when
    /// the consumer touches *every* stored frame.
    pub fn sequential_decode_speed(&self, format: &StorageFormat, motion: f64) -> Speed {
        self.decode_speed(format, motion, None)
    }

    /// Decode/retrieval speed (×realtime) of a storage format for a consumer
    /// that samples frames at `consumer_sampling` *of the original 30 fps
    /// stream* (pass `None` for a consumer touching every stored frame).
    ///
    /// For encoded formats, when the consumer's sampling interval exceeds the
    /// keyframe interval, whole GOPs are skipped (Figure 3(b)); the decoder
    /// still has to decode from the nearest keyframe up to each sampled
    /// frame. For RAW formats, frames are fetched individually from disk, so
    /// retrieval speed scales directly with the consumer's sampling rate.
    /// Either way the result is capped by disk read bandwidth.
    pub fn decode_speed(
        &self,
        format: &StorageFormat,
        motion: f64,
        consumer_sampling: Option<FrameSampling>,
    ) -> Speed {
        let stored_fps = Self::stored_frames_per_video_second(&format.fidelity);
        if stored_fps <= 0.0 {
            return Speed(f64::INFINITY);
        }
        let speed = match format.coding {
            CodingOption::Raw => {
                let bytes_full = self.raw_bytes_per_video_second(&format.fidelity).bytes() as f64;
                // Individual frames can be read directly, so only the frames
                // the consumer touches cross the disk interface.
                let touch_fraction = match consumer_sampling {
                    Some(s) => (s.fraction() / format.fidelity.sampling.fraction()).min(1.0),
                    None => 1.0,
                };
                let bytes = bytes_full * touch_fraction;
                if bytes <= 0.0 {
                    Speed(f64::INFINITY)
                } else {
                    Speed(self.machine.disk_read_bw as f64 / bytes)
                }
            }
            CodingOption::Encoded {
                keyframe_interval, ..
            } => {
                let gop = f64::from(keyframe_interval.frames());
                // Consumer sampling interval measured in *stored* frames.
                let consumer_stride = match consumer_sampling {
                    Some(s) => (s.fraction() / format.fidelity.sampling.fraction())
                        .recip()
                        .max(1.0),
                    None => 1.0,
                };
                let decoded_per_video_second;
                let keyframes_per_video_second;
                if consumer_stride > gop {
                    // GOP skipping: for each sampled frame, decode the
                    // containing GOP's keyframe plus on average half a GOP of
                    // predecessors.
                    let sampled_per_second = stored_fps / consumer_stride;
                    let frames_per_sample = 1.0 + (gop - 1.0) / 2.0;
                    decoded_per_video_second = sampled_per_second * frames_per_sample;
                    keyframes_per_video_second = sampled_per_second;
                } else {
                    // Sequential decode: every stored frame is reconstructed.
                    decoded_per_video_second = stored_fps;
                    keyframes_per_video_second = stored_fps / gop;
                }
                let inter_per_video_second =
                    (decoded_per_video_second - keyframes_per_video_second).max(0.0);
                let seconds = keyframes_per_video_second
                    * self.decode_seconds_per_frame(&format.fidelity, true)
                    + inter_per_video_second
                        * self.decode_seconds_per_frame(&format.fidelity, false);
                if seconds <= 0.0 {
                    Speed(f64::INFINITY)
                } else {
                    Speed(1.0 / seconds)
                }
            }
        };
        // Disk bandwidth caps everything (it only matters for RAW in
        // practice, exactly as §2.2 observes).
        let bytes_per_second = self.bytes_per_video_second(format, motion).bytes() as f64;
        if bytes_per_second > 0.0 {
            let disk_cap = Speed(self.machine.disk_read_bw as f64 / bytes_per_second);
            if format.coding.is_raw() {
                // Already disk-bound above; avoid double capping below the
                // sampled-read speed.
                speed
            } else {
                speed.min(disk_cap)
            }
        } else {
            speed
        }
    }

    /// The retrieval speed used when checking requirement **R2** for a
    /// storage format serving a consumer with the given sampling rate.
    pub fn retrieval_speed(
        &self,
        format: &StorageFormat,
        motion: f64,
        consumer_sampling: FrameSampling,
    ) -> Speed {
        self.decode_speed(format, motion, Some(consumer_sampling))
    }
}

impl Default for CodingCostModel {
    fn default() -> Self {
        CodingCostModel::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstore_types::{CropFactor, Resolution};

    fn golden() -> StorageFormat {
        StorageFormat::new(Fidelity::INGESTION, CodingOption::SMALLEST)
    }

    fn model() -> CodingCostModel {
        CodingCostModel::paper_testbed()
    }

    const JACKSON_MOTION: f64 = 0.30;
    const DASHCAM_MOTION: f64 = 0.85;

    #[test]
    fn golden_format_size_near_paper() {
        // Table 3(b): 1393 KB per second. Accept the right order of magnitude.
        let kb = model()
            .bytes_per_video_second(&golden(), JACKSON_MOTION)
            .kib();
        assert!(kb > 500.0 && kb < 3000.0, "golden size {kb} KB/s");
    }

    #[test]
    fn raw_200p_size_matches_yuv420() {
        let f = Fidelity::new(
            ImageQuality::Best,
            CropFactor::C100,
            Resolution::R200,
            FrameSampling::Full,
        );
        let sf = StorageFormat::new(f, CodingOption::Raw);
        let kb = model().bytes_per_video_second(&sf, JACKSON_MOTION).kib();
        // 200×200 × 1.5 B × 30 fps = 1758 KiB (the paper rounds to 1843 KB).
        assert!((kb - 1757.8).abs() < 5.0, "raw size {kb}");
    }

    #[test]
    fn speed_step_spans_large_encode_speed_range_and_modest_size_range() {
        let m = model();
        let slow = StorageFormat::new(
            Fidelity::INGESTION,
            CodingOption::Encoded {
                keyframe_interval: KeyframeInterval::K250,
                speed: SpeedStep::Slowest,
            },
        );
        let fast = StorageFormat::new(
            Fidelity::INGESTION,
            CodingOption::Encoded {
                keyframe_interval: KeyframeInterval::K250,
                speed: SpeedStep::Fastest,
            },
        );
        let speed_ratio = m.encode_speed(&fast, JACKSON_MOTION).factor()
            / m.encode_speed(&slow, JACKSON_MOTION).factor();
        assert!(
            speed_ratio > 20.0 && speed_ratio < 60.0,
            "speed ratio {speed_ratio}"
        );
        let size_ratio = m.bytes_per_video_second(&fast, JACKSON_MOTION).bytes() as f64
            / m.bytes_per_video_second(&slow, JACKSON_MOTION).bytes() as f64;
        assert!(
            size_ratio > 1.5 && size_ratio <= 2.6,
            "size ratio {size_ratio}"
        );
    }

    #[test]
    fn keyframe_interval_trades_size_for_sparse_decode_speed() {
        let m = model();
        let ki250 = StorageFormat::new(
            Fidelity::INGESTION,
            CodingOption::Encoded {
                keyframe_interval: KeyframeInterval::K250,
                speed: SpeedStep::Medium,
            },
        );
        let ki5 = StorageFormat::new(
            Fidelity::INGESTION,
            CodingOption::Encoded {
                keyframe_interval: KeyframeInterval::K5,
                speed: SpeedStep::Medium,
            },
        );
        // Size grows when keyframes are dense.
        let size_ratio = m.bytes_per_video_second(&ki5, JACKSON_MOTION).bytes() as f64
            / m.bytes_per_video_second(&ki250, JACKSON_MOTION).bytes() as f64;
        assert!(size_ratio > 1.5, "size ratio {size_ratio}");
        // A consumer sampling 1/30 decodes much faster from short GOPs.
        let sparse250 = m.decode_speed(&ki250, JACKSON_MOTION, Some(FrameSampling::S1_30));
        let sparse5 = m.decode_speed(&ki5, JACKSON_MOTION, Some(FrameSampling::S1_30));
        assert!(
            sparse5.factor() / sparse250.factor() > 3.0,
            "sparse decode {sparse5} vs {sparse250}"
        );
        // But sequential decode is mostly unaffected (within 30 %).
        let seq250 = m.sequential_decode_speed(&ki250, JACKSON_MOTION).factor();
        let seq5 = m.sequential_decode_speed(&ki5, JACKSON_MOTION).factor();
        assert!((seq5 / seq250 - 1.0).abs() < 0.35, "seq {seq5} vs {seq250}");
    }

    #[test]
    fn golden_decode_speed_near_23x() {
        let s = model()
            .sequential_decode_speed(&golden(), JACKSON_MOTION)
            .factor();
        assert!(s > 10.0 && s < 45.0, "golden decode speed {s}");
    }

    #[test]
    fn raw_retrieval_speed_scales_with_consumer_sampling() {
        let f = Fidelity::new(
            ImageQuality::Best,
            CropFactor::C100,
            Resolution::R200,
            FrameSampling::Full,
        );
        let sf = StorageFormat::new(f, CodingOption::Raw);
        let m = model();
        let full = m
            .retrieval_speed(&sf, JACKSON_MOTION, FrameSampling::Full)
            .factor();
        let sparse = m
            .retrieval_speed(&sf, JACKSON_MOTION, FrameSampling::S1_30)
            .factor();
        // Table 3(b): 1137×–34132×.
        assert!(full > 600.0 && full < 2500.0, "raw full retrieval {full}");
        assert!(
            (sparse / full - 30.0).abs() < 1.0,
            "sparse/full ratio {}",
            sparse / full
        );
    }

    #[test]
    fn dashcam_motion_inflates_size() {
        let m = model();
        let calm = m.bytes_per_video_second(&golden(), 0.05).bytes();
        let busy = m.bytes_per_video_second(&golden(), DASHCAM_MOTION).bytes();
        assert!(busy as f64 / calm as f64 > 1.5);
    }

    #[test]
    fn four_sf_ingest_cost_is_several_cores() {
        // Approximate Table 3(b)'s four storage formats and check the total
        // transcode cost lands in the "around 9 cores" ballpark (§6.2).
        let m = model();
        let sf1 = StorageFormat::new(
            Fidelity::new(
                ImageQuality::Good,
                CropFactor::C100,
                Resolution::R540,
                FrameSampling::S1_6,
            ),
            CodingOption::SMALLEST,
        );
        let sf2 = StorageFormat::new(
            Fidelity::new(
                ImageQuality::Best,
                CropFactor::C100,
                Resolution::R540,
                FrameSampling::S1_30,
            ),
            CodingOption::Encoded {
                keyframe_interval: KeyframeInterval::K10,
                speed: SpeedStep::Fast,
            },
        );
        let sf3 = StorageFormat::new(
            Fidelity::new(
                ImageQuality::Best,
                CropFactor::C100,
                Resolution::R200,
                FrameSampling::Full,
            ),
            CodingOption::Raw,
        );
        let total: f64 = [golden(), sf1, sf2, sf3]
            .iter()
            .map(|sf| m.encode_cores_for_realtime(sf, JACKSON_MOTION))
            .sum();
        assert!(total > 3.0 && total < 15.0, "total ingest cores {total}");
    }

    #[test]
    fn gb_per_day_consistency() {
        let m = model();
        let per_sec = m.bytes_per_video_second(&golden(), JACKSON_MOTION).bytes() as f64;
        let per_day = m.gb_per_day(&golden(), JACKSON_MOTION);
        assert!((per_day - per_sec * 86_400.0 / 1e9).abs() < 1e-9);
    }

    #[test]
    fn decode_speed_monotone_in_resolution() {
        let m = model();
        let mut prev = f64::INFINITY;
        for res in [
            Resolution::R720,
            Resolution::R540,
            Resolution::R200,
            Resolution::R100,
        ] {
            let sf = StorageFormat::new(
                Fidelity::new(
                    ImageQuality::Good,
                    CropFactor::C100,
                    res,
                    FrameSampling::Full,
                ),
                CodingOption::SMALLEST,
            );
            let s = m.sequential_decode_speed(&sf, JACKSON_MOTION).factor();
            assert!(
                s >= prev * 0.999 || prev == f64::INFINITY,
                "decode speed not monotone"
            );
            if prev != f64::INFINITY {
                assert!(s > prev, "smaller resolution should decode faster");
            }
            prev = s;
        }
    }
}
