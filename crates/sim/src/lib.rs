//! # vstore-sim
//!
//! The simulation substrate that stands in for the paper's hardware:
//!
//! * [`hash`] — deterministic splittable hashing used wherever the synthetic
//!   substrate needs reproducible pseudo-randomness (content generation,
//!   detection draws) without threading RNG state everywhere;
//! * [`machine`] — the machine model (CPU cores, decoder, disk bandwidth)
//!   mirroring the paper's evaluation platform;
//! * [`resources`] — resource usage accounting (CPU-core-seconds, decoder
//!   seconds, disk bytes) and a virtual clock, so experiments report costs in
//!   the paper's units (×realtime, cores, GB/day) independent of the host;
//! * [`coding_cost`] — the calibrated encode/decode/size model for the block
//!   codec, shaped on Figure 3 and Table 3(b) of the paper;
//! * [`pool`] — a scoped worker pool (order-preserving parallel map) backing
//!   the sharded store's compaction, the ingest fan-out and the query
//!   prefetch stage;
//! * [`queue`] — the bounded, closeable job queue behind every
//!   back-pressured subsystem (serve requests, tier migrations, live
//!   ingest).
//!
//! See `DESIGN.md` ("Substitutions") for why each model exists and how it was
//! calibrated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coding_cost;
pub mod hash;
pub mod machine;
pub mod pool;
pub mod queue;
pub mod resources;
pub mod sync;

pub use coding_cost::CodingCostModel;
pub use hash::DeterministicHasher;
pub use machine::MachineSpec;
pub use pool::{catch_panic, panic_message, scoped_map, scoped_map_static, PanicPayload};
pub use queue::{BoundedQueue, PushError};
pub use resources::{ResourceKind, ResourceUsage, VirtualClock};
