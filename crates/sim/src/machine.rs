//! The machine model.
//!
//! The paper evaluates on a 56-core Xeon E7-4830v4, 260 GB DRAM, a 4×1 TB
//! 10K-RPM HDD RAID-5 array, and an NVIDIA Quadro P6000. VStore's
//! configuration decisions only depend on a few aggregate figures of that
//! platform — transcoding bandwidth, decode bandwidth, disk bandwidth, core
//! count — so the machine model captures exactly those.

use serde::{Deserialize, Serialize};

/// Aggregate hardware capabilities used by cost models and budget checks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Number of physical CPU cores available to VStore.
    pub cpu_cores: u32,
    /// Cores the query executor may use (the paper limits ALPR to 40).
    pub query_cpu_cores: u32,
    /// Sequential disk read bandwidth in bytes per second.
    pub disk_read_bw: u64,
    /// Sequential disk write bandwidth in bytes per second.
    pub disk_write_bw: u64,
    /// Sustained decoder pixel throughput (pixels/second) for inter-coded
    /// frames at the richest quality; the coding cost model derives
    /// per-format decode speeds from this.
    pub decoder_pixel_rate: f64,
    /// Per-frame decoder overhead in seconds (bitstream parsing, setup).
    pub decoder_frame_overhead: f64,
    /// GPU inference throughput normaliser: work units per second, where one
    /// work unit is defined by the operator cost model.
    pub gpu_work_rate: f64,
    /// Per-core CPU work rate for CPU-bound operators, in work units/second.
    pub cpu_work_rate: f64,
}

impl MachineSpec {
    /// The paper's evaluation platform (§6.1).
    pub fn paper_testbed() -> Self {
        MachineSpec {
            cpu_cores: 56,
            query_cpu_cores: 40,
            // 4-disk RAID array: ~2 GB/s effective sequential read (consistent
            // with Table 3(b): RAW 200p at 1843 KB/s retrieved at ~1137×).
            disk_read_bw: 2_000_000_000,
            disk_write_bw: 1_000_000_000,
            // NVDEC-class decoder: ~1.2 Gpx/s on inter frames plus a fixed
            // per-frame overhead, which together reproduce the ~23× retrieval
            // speed of the golden 720p format.
            decoder_pixel_rate: 1.22e9,
            decoder_frame_overhead: 0.0007,
            gpu_work_rate: 1.0,
            cpu_work_rate: 1.0,
        }
    }

    /// A deliberately small machine for tests (fewer cores, slower disk).
    pub fn small() -> Self {
        MachineSpec {
            cpu_cores: 8,
            query_cpu_cores: 6,
            disk_read_bw: 200_000_000,
            disk_write_bw: 120_000_000,
            decoder_pixel_rate: 3.0e8,
            decoder_frame_overhead: 0.001,
            gpu_work_rate: 0.25,
            cpu_work_rate: 0.5,
        }
    }

    /// Transcoding bandwidth budget in CPU cores available to ingest one
    /// stream, given how many streams the machine ingests concurrently.
    pub fn ingest_cores_per_stream(&self, concurrent_streams: u32) -> f64 {
        if concurrent_streams == 0 {
            f64::from(self.cpu_cores)
        } else {
            f64::from(self.cpu_cores) / f64::from(concurrent_streams)
        }
    }
}

impl Default for MachineSpec {
    fn default() -> Self {
        MachineSpec::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_figures() {
        let m = MachineSpec::paper_testbed();
        assert_eq!(m.cpu_cores, 56);
        assert_eq!(m.query_cpu_cores, 40);
        assert!(m.disk_read_bw >= 1_000_000_000);
    }

    #[test]
    fn ingest_cores_split() {
        let m = MachineSpec::paper_testbed();
        assert!((m.ingest_cores_per_stream(56) - 1.0).abs() < 1e-9);
        assert!((m.ingest_cores_per_stream(0) - 56.0).abs() < 1e-9);
        assert!(m.ingest_cores_per_stream(8) > m.ingest_cores_per_stream(16));
    }

    #[test]
    fn small_machine_is_weaker() {
        let small = MachineSpec::small();
        let big = MachineSpec::paper_testbed();
        assert!(small.cpu_cores < big.cpu_cores);
        assert!(small.disk_read_bw < big.disk_read_bw);
        assert!(small.decoder_pixel_rate < big.decoder_pixel_rate);
    }
}
