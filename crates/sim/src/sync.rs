//! Poison-recovery helpers for `std::sync` primitives.
//!
//! Most of the workspace uses the `parking_lot` stub, whose guards recover
//! from poisoning transparently. The handful of places that need a
//! `Condvar` (bounded queues, tier migration, live ingest, serve
//! shutdown) are on `std::sync::Mutex` and used to carry a
//! `.lock().expect("... poisoned")` at every call site. These helpers
//! centralize the same recover-from-poison policy — a panic while holding
//! one of these locks never leaves partially-applied state that a waiter
//! could misread; continuing with the inner guard matches what the
//! parking_lot stub does everywhere else — so the call sites stay free of
//! `expect` and the `no-unwrap` analysis rule holds by construction.

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Lock `mutex`, recovering the guard if a previous holder panicked.
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// Wait on `condvar`, recovering the guard if a holder panicked while we
/// were parked.
pub fn wait_unpoisoned<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(|e| e.into_inner())
}

/// Wait on `condvar` with a timeout, recovering the guard on poison.
/// Returns the guard and whether the wait timed out.
pub fn wait_timeout_unpoisoned<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, bool) {
    let (guard, result) = condvar
        .wait_timeout(guard, timeout)
        .unwrap_or_else(|e| e.into_inner());
    (guard, result.timed_out())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Condvar, Mutex};

    #[test]
    fn lock_recovers_from_poison() {
        let mutex = Arc::new(Mutex::new(7_u32));
        let poisoner = Arc::clone(&mutex);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(mutex.is_poisoned());
        assert_eq!(*lock_unpoisoned(&mutex), 7);
    }

    #[test]
    fn wait_timeout_reports_timeout() {
        let mutex = Mutex::new(());
        let condvar = Condvar::new();
        let guard = lock_unpoisoned(&mutex);
        let (_guard, timed_out) =
            wait_timeout_unpoisoned(&condvar, guard, Duration::from_millis(1));
        assert!(timed_out);
    }
}
