//! A bounded, closeable MPMC job queue — the back-pressure primitive shared
//! by the serving front end's request queue, the tier engine's migration
//! queue, and the live ingest queue.
//!
//! ```text
//!  producers ──push(item, policy)──► [ VecDeque ≤ capacity ] ──pop()──► workers
//!                │                                                │
//!                └─ Reject: Err(Full)   Block: wait for a slot    └─ None once
//!                   Closed: Err(Closed)                              closed + drained
//! ```
//!
//! The queue never grows past `capacity`. A full queue either sheds the
//! pushed item back to the caller ([`QueueFullPolicy::Reject`]) or blocks
//! the caller until a worker frees a slot ([`QueueFullPolicy::Block`]).
//! [`close`](BoundedQueue::close) refuses new pushes while letting workers
//! drain everything already accepted: [`pop`](BoundedQueue::pop) keeps
//! returning items until the queue is both closed *and* empty, and only then
//! returns `None` — the graceful worker exit.

use crate::sync::{lock_unpoisoned, wait_unpoisoned};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use vstore_types::QueueFullPolicy;

/// Why a [`BoundedQueue::push`] did not enqueue; the rejected item rides
/// back to the caller in the error so nothing is silently dropped.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue was at capacity under [`QueueFullPolicy::Reject`].
    Full(T),
    /// The queue was closed.
    Closed {
        /// The item that was not enqueued.
        item: T,
        /// `true` when the close happened while this push was blocked
        /// awaiting a slot under [`QueueFullPolicy::Block`] (as opposed to
        /// the queue already being closed on entry).
        while_waiting: bool,
    },
}

impl<T> PushError<T> {
    /// Recover the item that was not enqueued.
    pub fn into_item(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed { item, .. } => item,
        }
    }
}

struct QueueState<T> {
    items: VecDeque<T>,
    /// `false` once [`BoundedQueue::close`] ran: pushes are refused, pops
    /// drain what remains and then return `None`.
    open: bool,
    peak_depth: usize,
}

/// A bounded multi-producer multi-consumer queue with blocking pop,
/// configurable full-queue policy, and graceful close-and-drain. See the
/// module docs for the protocol.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    /// Signalled when an item is pushed (poppers wait) or the queue closes.
    not_empty: Condvar,
    /// Signalled when an item is popped (blocked pushers wait) or the queue
    /// closes.
    not_full: Condvar,
    capacity: usize,
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("open", &self.is_open())
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// An open queue holding at most `capacity` items.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                open: true,
                peak_depth: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// The capacity the queue was created with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueue `item`, applying `policy` when the queue is full. On success
    /// one waiting popper is woken; on failure the item is returned inside
    /// the [`PushError`].
    pub fn push(&self, item: T, policy: QueueFullPolicy) -> Result<(), PushError<T>> {
        let mut state = lock_unpoisoned(&self.state);
        if !state.open {
            return Err(PushError::Closed {
                item,
                while_waiting: false,
            });
        }
        if state.items.len() >= self.capacity {
            match policy {
                QueueFullPolicy::Reject => return Err(PushError::Full(item)),
                QueueFullPolicy::Block => {
                    while state.items.len() >= self.capacity && state.open {
                        state = wait_unpoisoned(&self.not_full, state);
                    }
                    if !state.open {
                        return Err(PushError::Closed {
                            item,
                            while_waiting: true,
                        });
                    }
                }
            }
        }
        state.items.push_back(item);
        state.peak_depth = state.peak_depth.max(state.items.len());
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue the oldest item, blocking while the queue is empty but open.
    /// Returns `None` only once the queue is closed *and* drained — the
    /// graceful exit signal for worker loops. A successful pop wakes one
    /// pusher blocked on a full queue.
    pub fn pop(&self) -> Option<T> {
        let item = {
            let mut state = lock_unpoisoned(&self.state);
            loop {
                if let Some(item) = state.items.pop_front() {
                    break item;
                }
                if !state.open {
                    return None; // closed and drained
                }
                state = wait_unpoisoned(&self.not_empty, state);
            }
        };
        self.not_full.notify_one();
        Some(item)
    }

    /// Close the queue: refuse new pushes (including pushes currently
    /// blocked on a full queue), wake every waiting pusher and popper, and
    /// let poppers drain what was already accepted.
    pub fn close(&self) {
        {
            let mut state = lock_unpoisoned(&self.state);
            state.open = false;
        }
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// `true` until [`close`](Self::close) runs.
    #[must_use]
    pub fn is_open(&self) -> bool {
        lock_unpoisoned(&self.state).open
    }

    /// Items currently waiting in the queue.
    #[must_use]
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.state).items.len()
    }

    /// `true` when no items are waiting.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The deepest the queue has ever been.
    #[must_use]
    pub fn peak_depth(&self) -> usize {
        lock_unpoisoned(&self.state).peak_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_peak_tracking() {
        let queue = BoundedQueue::new(4);
        for i in 0..3 {
            queue.push(i, QueueFullPolicy::Reject).unwrap();
        }
        assert_eq!(queue.len(), 3);
        assert_eq!(queue.peak_depth(), 3);
        assert_eq!(queue.pop(), Some(0));
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), Some(2));
        assert_eq!(queue.peak_depth(), 3, "peak survives the drain");
        assert!(queue.is_empty());
    }

    #[test]
    fn reject_policy_sheds_at_capacity() {
        let queue = BoundedQueue::new(1);
        queue.push("a", QueueFullPolicy::Reject).unwrap();
        match queue.push("b", QueueFullPolicy::Reject) {
            Err(PushError::Full(item)) => assert_eq!(item, "b"),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(queue.len(), 1, "shed push left the queue untouched");
    }

    #[test]
    fn block_policy_waits_for_a_slot() {
        let queue = Arc::new(BoundedQueue::new(1));
        queue.push(0u32, QueueFullPolicy::Block).unwrap();
        let pusher = std::thread::spawn({
            let queue = Arc::clone(&queue);
            move || queue.push(1u32, QueueFullPolicy::Block)
        });
        // The pusher is blocked on the full queue; popping frees the slot.
        assert_eq!(queue.pop(), Some(0));
        pusher.join().unwrap().unwrap();
        assert_eq!(queue.pop(), Some(1));
    }

    #[test]
    fn close_refuses_pushes_but_drains_pops() {
        let queue = BoundedQueue::new(4);
        queue.push(1, QueueFullPolicy::Reject).unwrap();
        queue.close();
        match queue.push(2, QueueFullPolicy::Reject) {
            Err(PushError::Closed {
                item,
                while_waiting,
            }) => {
                assert_eq!(item, 2);
                assert!(!while_waiting);
            }
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(queue.pop(), Some(1), "accepted items drain after close");
        assert_eq!(queue.pop(), None, "closed and drained");
        assert!(!queue.is_open());
    }

    #[test]
    fn close_wakes_a_blocked_pusher() {
        let queue = Arc::new(BoundedQueue::new(1));
        queue.push(0u32, QueueFullPolicy::Block).unwrap();
        let pusher = std::thread::spawn({
            let queue = Arc::clone(&queue);
            move || queue.push(1u32, QueueFullPolicy::Block)
        });
        // Give the pusher time to park on the full queue, then close.
        while !pusher.is_finished() {
            queue.close();
            std::thread::yield_now();
        }
        match pusher.join().unwrap() {
            Err(PushError::Closed { while_waiting, .. }) => {
                // Either the close won the race before the push entered
                // (while_waiting == false) or it interrupted the wait; both
                // refuse the item.
                let _ = while_waiting;
            }
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn pop_blocks_until_a_push_arrives() {
        let queue = Arc::new(BoundedQueue::new(4));
        let popper = std::thread::spawn({
            let queue = Arc::clone(&queue);
            move || queue.pop()
        });
        queue.push(42u64, QueueFullPolicy::Reject).unwrap();
        assert_eq!(popper.join().unwrap(), Some(42));
    }
}
