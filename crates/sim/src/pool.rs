//! A minimal scoped worker pool: parallel map with deterministic output
//! order.
//!
//! The ingest fan-out, the query prefetch stage and parallel shard
//! compaction all need the same shape of parallelism: apply a function to
//! every item of a batch on up to `workers` threads and get the results back
//! *in input order*, so downstream accounting is identical to the sequential
//! path. `scoped_map` provides exactly that on `std::thread::scope` — no
//! executor, no channels, no external dependency.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Apply `f` to every item, using up to `workers` threads, returning the
/// results in input order.
///
/// With `workers <= 1` (or fewer than two items) the items are processed on
/// the calling thread in order — the exact sequential path. Panics in `f`
/// propagate to the caller.
pub fn scoped_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.min(n).max(1);
    if workers <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    // Work-stealing by atomic cursor: each worker claims the next unclaimed
    // index, so long and short items balance across threads.
    let tasks: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = tasks[i].lock().take().expect("task claimed twice");
                let result = f(i, item);
                *results[i].lock() = Some(result);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("worker died before finishing task")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = scoped_map(items, 4, |_, x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..50).collect();
        let seq = scoped_map(items.clone(), 1, |i, x| x.wrapping_mul(31) ^ i as u64);
        let par = scoped_map(items, 8, |i, x| x.wrapping_mul(31) ^ i as u64);
        assert_eq!(seq, par);
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let calls = AtomicUsize::new(0);
        let results = scoped_map((0..37).collect::<Vec<i32>>(), 5, |_, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(results.len(), 37);
        assert_eq!(calls.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn empty_and_single_item_batches() {
        assert_eq!(scoped_map(Vec::<u8>::new(), 4, |_, x| x), Vec::<u8>::new());
        assert_eq!(scoped_map(vec![9], 4, |_, x| x + 1), vec![10]);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panics_propagate() {
        scoped_map(vec![1, 2, 3, 4], 2, |_, x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn index_is_passed_through() {
        let out = scoped_map(vec!["a", "b", "c"], 2, |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }
}
