//! A minimal scoped worker pool: parallel map with deterministic output
//! order.
//!
//! The ingest fan-out, the query prefetch stage, parallel shard compaction
//! and the serving front end's executor all need the same shape of
//! parallelism: apply a function to every item of a batch on up to
//! `workers` threads and get the results back *in input order*, so
//! downstream accounting is identical to the sequential path. `scoped_map`
//! provides exactly that on `std::thread::scope` — no executor, no
//! channels, no external dependency.
//!
//! ## Panic safety
//!
//! A panicking task must never take the rest of the batch down with it
//! half-processed: every worker wraps the task body in [`catch_panic`], so
//! a panic in `f` stops only that task — the panicking worker and its
//! peers keep draining the remaining items, and only once the whole batch
//! has been processed does `scoped_map` resume the unwind with the
//! **original payload** (the caller sees `panic!("boom")`, not a generic
//! "a scoped thread panicked"). Long-running executors (the serve worker
//! pool) reuse [`catch_panic`] directly to convert a per-request panic
//! into an error response instead of a dead worker.

use parking_lot::Mutex;
use std::collections::VecDeque;

/// The payload of a caught panic, as produced by
/// [`std::panic::catch_unwind`].
pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Run `f`, capturing a panic as an `Err(payload)` instead of unwinding
/// the caller.
///
/// The closure is wrapped in `AssertUnwindSafe`: callers hand in work whose
/// partial effects are either discarded on panic (`scoped_map` publishes a
/// result slot only on success) or confined to the failing request (the
/// serve executor answers that request with an error and moves on), so
/// observing interrupted state is not possible through this function.
pub fn catch_panic<R>(f: impl FnOnce() -> R) -> std::result::Result<R, PanicPayload> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
}

/// Best-effort human-readable message of a caught panic payload
/// (`panic!("…")` string literals and `format!`-style messages).
pub fn panic_message(payload: &PanicPayload) -> &str {
    if let Some(msg) = payload.downcast_ref::<&'static str>() {
        msg
    } else if let Some(msg) = payload.downcast_ref::<String>() {
        msg
    } else {
        "<non-string panic payload>"
    }
}

/// Apply `f` to every item, using up to `workers` threads, returning the
/// results in input order.
///
/// With `workers <= 1` (or fewer than two items) the items are processed on
/// the calling thread in order — the exact sequential path. A panic in `f`
/// propagates to the caller with its original payload, but only after the
/// remaining items have been drained by the surviving workers (see the
/// [module docs](self)).
pub fn scoped_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.min(n).max(1);
    if workers <= 1 || n <= 1 {
        // Same drain-then-unwind contract as the parallel path below, so a
        // panicking task leaves identical side effects at every worker
        // count (the repo's sequential == parallel parity invariant).
        let mut results = Vec::with_capacity(n);
        let mut first_panic: Option<PanicPayload> = None;
        for (i, item) in items.into_iter().enumerate() {
            match catch_panic(|| f(i, item)) {
                Ok(result) => results.push(result),
                Err(payload) => {
                    first_panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        return results;
    }
    // Work-stealing deque pool: every worker owns a deque seeded with a
    // contiguous block of indices. Owners pop their own front (cache-warm,
    // in-order, no contention on a shared cursor); a worker whose deque
    // runs dry steals from the *back* of a peer's deque, so long and short
    // items balance across threads instead of convoying on the slowest
    // chunk. The task set is fixed — tasks never spawn tasks — so
    // every-deque-empty means the batch is fully claimed and a worker that
    // finds no work anywhere can exit.
    let tasks: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w * n / workers..(w + 1) * n / workers).collect()))
        .collect();
    // First panic payload caught by any worker; the workers themselves never
    // unwind, so the scope always joins cleanly and every non-panicking item
    // is processed exactly once.
    let first_panic: Mutex<Option<PanicPayload>> = Mutex::new(None);
    // The next index for worker `w`: its own front, else a steal from the
    // back of the first non-empty peer deque (scanned round-robin from
    // `w + 1` to spread steal pressure).
    let next_task = |w: usize| -> Option<usize> {
        if let Some(i) = queues[w].lock().pop_front() {
            return Some(i);
        }
        for offset in 1..workers {
            if let Some(i) = queues[(w + offset) % workers].lock().pop_back() {
                return Some(i);
            }
        }
        None
    };
    std::thread::scope(|scope| {
        for w in 0..workers {
            let next_task = &next_task;
            let tasks = &tasks;
            let results = &results;
            let first_panic = &first_panic;
            let f = &f;
            scope.spawn(move || {
                while let Some(i) = next_task(w) {
                    // vstore-lint: allow(no-unwrap) — next_task hands out each index once
                    let item = tasks[i].lock().take().expect("task claimed twice");
                    match catch_panic(|| f(i, item)) {
                        Ok(result) => *results[i].lock() = Some(result),
                        Err(payload) => {
                            let mut slot = first_panic.lock();
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                        }
                    }
                }
            });
        }
    });
    if let Some(payload) = first_panic.into_inner() {
        std::panic::resume_unwind(payload);
    }
    results
        .into_iter()
        .map(|slot| {
            // Scoped workers fill every slot or propagate their panic.
            slot.into_inner()
                .expect("worker died before finishing task") // vstore-lint: allow(no-unwrap)
        })
        .collect()
}

/// [`scoped_map`] with **static contiguous chunking** and no stealing:
/// worker `w` processes exactly the items `[w·n/W, (w+1)·n/W)` to
/// completion, however imbalanced their costs turn out to be.
///
/// This is the classic parallel-map layout `scoped_map` used to reduce to
/// under perfectly uniform items — kept as the baseline the pool-scaling
/// benchmark compares the work-stealing pool against (an imbalanced item
/// mix convoys on the slowest chunk here, while `scoped_map` redistributes
/// it). Same contracts as `scoped_map`: input-order results, identical
/// results at every worker count, and drain-then-unwind panic propagation.
pub fn scoped_map_static<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.min(n).max(1);
    if workers <= 1 || n <= 1 {
        return scoped_map(items, 1, f);
    }
    let tasks: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let first_panic: Mutex<Option<PanicPayload>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let tasks = &tasks;
            let results = &results;
            let first_panic = &first_panic;
            let f = &f;
            scope.spawn(move || {
                for i in w * n / workers..(w + 1) * n / workers {
                    // vstore-lint: allow(no-unwrap) — the static ranges partition 0..n
                    let item = tasks[i].lock().take().expect("task claimed twice");
                    match catch_panic(|| f(i, item)) {
                        Ok(result) => *results[i].lock() = Some(result),
                        Err(payload) => {
                            let mut slot = first_panic.lock();
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                        }
                    }
                }
            });
        }
    });
    if let Some(payload) = first_panic.into_inner() {
        std::panic::resume_unwind(payload);
    }
    results
        .into_iter()
        .map(|slot| {
            // Scoped workers fill every slot or propagate their panic.
            slot.into_inner()
                .expect("worker died before finishing task") // vstore-lint: allow(no-unwrap)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = scoped_map(items, 4, |_, x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..50).collect();
        let seq = scoped_map(items.clone(), 1, |i, x| x.wrapping_mul(31) ^ i as u64);
        let par = scoped_map(items, 8, |i, x| x.wrapping_mul(31) ^ i as u64);
        assert_eq!(seq, par);
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let calls = AtomicUsize::new(0);
        let results = scoped_map((0..37).collect::<Vec<i32>>(), 5, |_, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(results.len(), 37);
        assert_eq!(calls.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn empty_and_single_item_batches() {
        assert_eq!(scoped_map(Vec::<u8>::new(), 4, |_, x| x), Vec::<u8>::new());
        assert_eq!(scoped_map(vec![9], 4, |_, x| x + 1), vec![10]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate_with_their_original_payload() {
        scoped_map(vec![1, 2, 3, 4], 2, |_, x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }

    /// Regression (panic safety): a panicking task must not deadlock the
    /// pool or silently drop the other workers' results — every
    /// non-panicking item is still processed before the unwind resumes,
    /// identically at every worker count (sequential == parallel parity
    /// extends to the panic path).
    #[test]
    fn panicking_task_lets_remaining_workers_drain() {
        const ITEMS: usize = 64;
        for workers in [1, 4] {
            let processed = AtomicUsize::new(0);
            let outcome = catch_panic(|| {
                scoped_map((0..ITEMS).collect::<Vec<usize>>(), workers, |_, x| {
                    if x == 5 {
                        panic!("boom at {x}");
                    }
                    processed.fetch_add(1, Ordering::Relaxed);
                    x
                })
            });
            let payload = outcome.expect_err("the batch panic must propagate");
            assert_eq!(panic_message(&payload), "boom at 5");
            // Every item except the panicking one ran to completion: no
            // worker died early, no task was abandoned in the queue.
            assert_eq!(
                processed.load(Ordering::Relaxed),
                ITEMS - 1,
                "workers={workers}"
            );
        }
    }

    /// Several panicking tasks still drain the batch and resume exactly one
    /// unwind (the first payload caught) — never a deadlock or an abort.
    #[test]
    fn multiple_panics_resume_a_single_unwind() {
        let processed = AtomicUsize::new(0);
        let outcome = catch_panic(|| {
            scoped_map((0..32).collect::<Vec<usize>>(), 4, |_, x| {
                if x % 8 == 0 {
                    panic!("boom at {x}");
                }
                processed.fetch_add(1, Ordering::Relaxed);
                x
            })
        });
        let payload = outcome.expect_err("the batch panic must propagate");
        assert!(panic_message(&payload).starts_with("boom at"));
        assert_eq!(processed.load(Ordering::Relaxed), 32 - 4);
    }

    #[test]
    fn catch_panic_round_trips_success_and_payloads() {
        assert_eq!(catch_panic(|| 41 + 1).unwrap(), 42);
        let payload = catch_panic(|| -> u32 { panic!("kaput") }).unwrap_err();
        assert_eq!(panic_message(&payload), "kaput");
        let payload = catch_panic(|| -> u32 { panic!("{}-{}", "a", 7) }).unwrap_err();
        assert_eq!(panic_message(&payload), "a-7");
    }

    #[test]
    fn index_is_passed_through() {
        let out = scoped_map(vec!["a", "b", "c"], 2, |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    /// The static baseline obeys the same contracts as the stealing pool:
    /// input-order results, every item exactly once, identical output at
    /// every worker count.
    #[test]
    fn static_chunking_matches_stealing_pool() {
        let items: Vec<u64> = (0..97).collect();
        let stealing = scoped_map(items.clone(), 4, |i, x| x.wrapping_mul(31) ^ i as u64);
        for workers in [1, 3, 4, 16] {
            let calls = AtomicUsize::new(0);
            let chunked = scoped_map_static(items.clone(), workers, |i, x| {
                calls.fetch_add(1, Ordering::Relaxed);
                x.wrapping_mul(31) ^ i as u64
            });
            assert_eq!(chunked, stealing, "workers={workers}");
            assert_eq!(calls.load(Ordering::Relaxed), items.len());
        }
    }

    /// Drain-then-unwind extends to the static baseline too.
    #[test]
    fn static_chunking_drains_on_panic() {
        let processed = AtomicUsize::new(0);
        let outcome = catch_panic(|| {
            scoped_map_static((0..16).collect::<Vec<usize>>(), 4, |_, x| {
                if x == 9 {
                    panic!("boom at {x}");
                }
                processed.fetch_add(1, Ordering::Relaxed);
                x
            })
        });
        let payload = outcome.expect_err("the batch panic must propagate");
        assert_eq!(panic_message(&payload), "boom at 9");
        assert_eq!(processed.load(Ordering::Relaxed), 15);
    }

    /// Work stealing actually redistributes an imbalanced batch: when one
    /// worker's seeded block is blocked on a single long task, its
    /// remaining items must be stolen and finished by the other workers —
    /// the batch never waits for the slow worker to drain its own chunk.
    #[test]
    fn imbalanced_items_are_stolen_from_the_busy_worker() {
        use std::sync::atomic::AtomicBool;
        const ITEMS: usize = 16;
        const WORKERS: usize = 4;
        // Worker 0 owns indices 0..4. Item 0 spins until every *other* item
        // of worker 0's block (1..4) has been completed by someone. Under
        // static chunking this deadlocks (worker 0 would have to finish
        // item 0 before touching 1..4); with stealing, peers drain them.
        let done: Vec<AtomicBool> = (0..ITEMS).map(|_| AtomicBool::new(false)).collect();
        let results = scoped_map((0..ITEMS).collect::<Vec<usize>>(), WORKERS, |i, x| {
            if i == 0 {
                while !(1..ITEMS / WORKERS).all(|j| done[j].load(Ordering::Acquire)) {
                    std::thread::yield_now();
                }
            }
            done[i].store(true, Ordering::Release);
            x * 10
        });
        assert_eq!(results, (0..ITEMS).map(|x| x * 10).collect::<Vec<_>>());
    }
}
