//! A minimal scoped worker pool: parallel map with deterministic output
//! order.
//!
//! The ingest fan-out, the query prefetch stage, parallel shard compaction
//! and the serving front end's executor all need the same shape of
//! parallelism: apply a function to every item of a batch on up to
//! `workers` threads and get the results back *in input order*, so
//! downstream accounting is identical to the sequential path. `scoped_map`
//! provides exactly that on `std::thread::scope` — no executor, no
//! channels, no external dependency.
//!
//! ## Panic safety
//!
//! A panicking task must never take the rest of the batch down with it
//! half-processed: every worker wraps the task body in [`catch_panic`], so
//! a panic in `f` stops only that task — the panicking worker and its
//! peers keep draining the remaining items, and only once the whole batch
//! has been processed does `scoped_map` resume the unwind with the
//! **original payload** (the caller sees `panic!("boom")`, not a generic
//! "a scoped thread panicked"). Long-running executors (the serve worker
//! pool) reuse [`catch_panic`] directly to convert a per-request panic
//! into an error response instead of a dead worker.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The payload of a caught panic, as produced by
/// [`std::panic::catch_unwind`].
pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Run `f`, capturing a panic as an `Err(payload)` instead of unwinding
/// the caller.
///
/// The closure is wrapped in `AssertUnwindSafe`: callers hand in work whose
/// partial effects are either discarded on panic (`scoped_map` publishes a
/// result slot only on success) or confined to the failing request (the
/// serve executor answers that request with an error and moves on), so
/// observing interrupted state is not possible through this function.
pub fn catch_panic<R>(f: impl FnOnce() -> R) -> std::result::Result<R, PanicPayload> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
}

/// Best-effort human-readable message of a caught panic payload
/// (`panic!("…")` string literals and `format!`-style messages).
pub fn panic_message(payload: &PanicPayload) -> &str {
    if let Some(msg) = payload.downcast_ref::<&'static str>() {
        msg
    } else if let Some(msg) = payload.downcast_ref::<String>() {
        msg
    } else {
        "<non-string panic payload>"
    }
}

/// Apply `f` to every item, using up to `workers` threads, returning the
/// results in input order.
///
/// With `workers <= 1` (or fewer than two items) the items are processed on
/// the calling thread in order — the exact sequential path. A panic in `f`
/// propagates to the caller with its original payload, but only after the
/// remaining items have been drained by the surviving workers (see the
/// [module docs](self)).
pub fn scoped_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.min(n).max(1);
    if workers <= 1 || n <= 1 {
        // Same drain-then-unwind contract as the parallel path below, so a
        // panicking task leaves identical side effects at every worker
        // count (the repo's sequential == parallel parity invariant).
        let mut results = Vec::with_capacity(n);
        let mut first_panic: Option<PanicPayload> = None;
        for (i, item) in items.into_iter().enumerate() {
            match catch_panic(|| f(i, item)) {
                Ok(result) => results.push(result),
                Err(payload) => {
                    first_panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        return results;
    }
    // Work-stealing by atomic cursor: each worker claims the next unclaimed
    // index, so long and short items balance across threads.
    let tasks: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    // First panic payload caught by any worker; the workers themselves never
    // unwind, so the scope always joins cleanly and every non-panicking item
    // is processed exactly once.
    let first_panic: Mutex<Option<PanicPayload>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = tasks[i].lock().take().expect("task claimed twice");
                match catch_panic(|| f(i, item)) {
                    Ok(result) => *results[i].lock() = Some(result),
                    Err(payload) => {
                        let mut slot = first_panic.lock();
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                    }
                }
            });
        }
    });
    if let Some(payload) = first_panic.into_inner() {
        std::panic::resume_unwind(payload);
    }
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("worker died before finishing task")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = scoped_map(items, 4, |_, x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..50).collect();
        let seq = scoped_map(items.clone(), 1, |i, x| x.wrapping_mul(31) ^ i as u64);
        let par = scoped_map(items, 8, |i, x| x.wrapping_mul(31) ^ i as u64);
        assert_eq!(seq, par);
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let calls = AtomicUsize::new(0);
        let results = scoped_map((0..37).collect::<Vec<i32>>(), 5, |_, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(results.len(), 37);
        assert_eq!(calls.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn empty_and_single_item_batches() {
        assert_eq!(scoped_map(Vec::<u8>::new(), 4, |_, x| x), Vec::<u8>::new());
        assert_eq!(scoped_map(vec![9], 4, |_, x| x + 1), vec![10]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate_with_their_original_payload() {
        scoped_map(vec![1, 2, 3, 4], 2, |_, x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }

    /// Regression (panic safety): a panicking task must not deadlock the
    /// pool or silently drop the other workers' results — every
    /// non-panicking item is still processed before the unwind resumes,
    /// identically at every worker count (sequential == parallel parity
    /// extends to the panic path).
    #[test]
    fn panicking_task_lets_remaining_workers_drain() {
        const ITEMS: usize = 64;
        for workers in [1, 4] {
            let processed = AtomicUsize::new(0);
            let outcome = catch_panic(|| {
                scoped_map((0..ITEMS).collect::<Vec<usize>>(), workers, |_, x| {
                    if x == 5 {
                        panic!("boom at {x}");
                    }
                    processed.fetch_add(1, Ordering::Relaxed);
                    x
                })
            });
            let payload = outcome.expect_err("the batch panic must propagate");
            assert_eq!(panic_message(&payload), "boom at 5");
            // Every item except the panicking one ran to completion: no
            // worker died early, no task was abandoned in the queue.
            assert_eq!(
                processed.load(Ordering::Relaxed),
                ITEMS - 1,
                "workers={workers}"
            );
        }
    }

    /// Several panicking tasks still drain the batch and resume exactly one
    /// unwind (the first payload caught) — never a deadlock or an abort.
    #[test]
    fn multiple_panics_resume_a_single_unwind() {
        let processed = AtomicUsize::new(0);
        let outcome = catch_panic(|| {
            scoped_map((0..32).collect::<Vec<usize>>(), 4, |_, x| {
                if x % 8 == 0 {
                    panic!("boom at {x}");
                }
                processed.fetch_add(1, Ordering::Relaxed);
                x
            })
        });
        let payload = outcome.expect_err("the batch panic must propagate");
        assert!(panic_message(&payload).starts_with("boom at"));
        assert_eq!(processed.load(Ordering::Relaxed), 32 - 4);
    }

    #[test]
    fn catch_panic_round_trips_success_and_payloads() {
        assert_eq!(catch_panic(|| 41 + 1).unwrap(), 42);
        let payload = catch_panic(|| -> u32 { panic!("kaput") }).unwrap_err();
        assert_eq!(panic_message(&payload), "kaput");
        let payload = catch_panic(|| -> u32 { panic!("{}-{}", "a", 7) }).unwrap_err();
        assert_eq!(panic_message(&payload), "a-7");
    }

    #[test]
    fn index_is_passed_through() {
        let out = scoped_map(vec!["a", "b", "c"], 2, |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }
}
