//! Deterministic, splittable hashing.
//!
//! The synthetic substrate (content generation, operator detection draws)
//! needs reproducible pseudo-randomness that is a pure function of stable
//! identifiers — the same `(stream, frame, object, knob)` tuple must always
//! produce the same draw, across runs and regardless of evaluation order.
//! Threading an RNG through every code path would make results depend on
//! iteration order, so we hash instead.
//!
//! The mixer is SplitMix64, which passes BigCrush and is more than good
//! enough for workload synthesis.

/// A deterministic hasher: fold in integers, then extract uniform values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeterministicHasher {
    state: u64,
}

/// SplitMix64 finalizer: one round of strong mixing.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DeterministicHasher {
    /// Create a hasher from a seed.
    pub fn new(seed: u64) -> Self {
        DeterministicHasher {
            state: splitmix64(seed ^ 0xA076_1D64_78BD_642F),
        }
    }

    /// Fold another value into the state, returning a new hasher.
    #[must_use]
    pub fn mix(self, value: u64) -> Self {
        DeterministicHasher {
            state: splitmix64(self.state ^ value.rotate_left(17)),
        }
    }

    /// Fold a string into the state, returning a new hasher.
    #[must_use]
    pub fn mix_str(self, s: &str) -> Self {
        let mut h = self;
        for chunk in s.as_bytes().chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            h = h.mix(u64::from_le_bytes(buf));
        }
        h.mix(s.len() as u64)
    }

    /// The current 64-bit hash value.
    pub fn value(&self) -> u64 {
        self.state
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit(&self) -> f64 {
        // Use the top 53 bits for a uniformly distributed double.
        (self.state >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform draw in `[lo, hi)`.
    pub fn uniform(&self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    /// A uniform integer draw in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            // Multiplicative range reduction avoids modulo bias for the
            // magnitudes used here.
            ((u128::from(self.state) * u128::from(n)) >> 64) as u64
        }
    }

    /// A Bernoulli draw with probability `p`.
    pub fn bernoulli(&self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// An approximately standard-normal draw (sum of uniforms, Irwin–Hall
    /// with 4 terms — adequate for content jitter).
    pub fn gaussian(&self) -> f64 {
        let a = self.unit();
        let b = self.mix(0x5bd1_e995).unit();
        let c = self.mix(0x9747_b28c).unit();
        let d = self.mix(0x1656_67b1).unit();
        ((a + b + c + d) - 2.0) * (12.0f64 / 4.0).sqrt()
    }
}

/// Convenience: hash a slice of values into a single draw in `[0, 1)`.
pub fn unit_hash(seed: u64, values: &[u64]) -> f64 {
    let mut h = DeterministicHasher::new(seed);
    for v in values {
        h = h.mix(*v);
    }
    h.unit()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let a = DeterministicHasher::new(42).mix(7).mix(13).value();
        let b = DeterministicHasher::new(42).mix(7).mix(13).value();
        assert_eq!(a, b);
        assert_ne!(a, DeterministicHasher::new(42).mix(13).mix(7).value());
    }

    #[test]
    fn unit_values_in_range_and_spread() {
        let mut low = 0usize;
        let n = 10_000u64;
        for i in 0..n {
            let u = DeterministicHasher::new(1).mix(i).unit();
            assert!((0.0..1.0).contains(&u));
            if u < 0.5 {
                low += 1;
            }
        }
        // Roughly balanced around 0.5.
        assert!((4500..5500).contains(&low), "low half count {low}");
    }

    #[test]
    fn below_is_bounded() {
        for i in 0..1000u64 {
            let v = DeterministicHasher::new(9).mix(i).below(17);
            assert!(v < 17);
        }
        assert_eq!(DeterministicHasher::new(9).below(0), 0);
    }

    #[test]
    fn mix_str_differs_by_content() {
        let a = DeterministicHasher::new(3).mix_str("jackson").value();
        let b = DeterministicHasher::new(3).mix_str("dashcam").value();
        assert_ne!(a, b);
        let c = DeterministicHasher::new(3).mix_str("jackson").value();
        assert_eq!(a, c);
    }

    #[test]
    fn bernoulli_tracks_probability() {
        let n = 20_000u64;
        let hits = (0..n)
            .filter(|i| DeterministicHasher::new(5).mix(*i).bernoulli(0.3))
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn gaussian_has_zero_mean_unit_scale() {
        let n = 20_000u64;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for i in 0..n {
            let g = DeterministicHasher::new(8).mix(i).gaussian();
            sum += g;
            sumsq += g * g;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn unit_hash_helper() {
        assert_eq!(unit_hash(1, &[1, 2, 3]), unit_hash(1, &[1, 2, 3]));
        assert_ne!(unit_hash(1, &[1, 2, 3]), unit_hash(2, &[1, 2, 3]));
    }
}
