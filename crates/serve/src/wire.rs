//! Typed requests/responses of the serving front end, plus their binary
//! wire codec.
//!
//! The wire format follows `vstore-codec`'s conventions: a hand-rolled,
//! explicit little-endian layout over [`ByteWriter`]/[`ByteReader`], with a
//! magic, a version byte and typed errors — a malformed frame surfaces as
//! [`VStoreError::Corruption`], never a panic. Requests validate with the
//! same rules as the facade's `IngestRequest`/`QueryRequest`/`ErodeRequest`
//! builders, so a request rejected at the handle is rejected identically at
//! the wire.

use crate::stats::NetStats;
use vstore_codec::wire::{ByteReader, ByteWriter};
use vstore_datasets::{DatasetProfile, VideoSource};
use vstore_ingest::{ErodeReport, IngestReport, LiveStats};
use vstore_obs::metrics::{HistogramSnapshot, Metric, MetricValue, MetricsSnapshot};
use vstore_obs::trace::{TraceDump, TraceRecord, TraceSpan};
use vstore_query::{QueryResult, QuerySpec, StageReport};
use vstore_types::cast::usize_from_u64;
use vstore_types::{
    AccuracyLevel, ByteSize, CoreSeconds, FormatId, LatencyHistogram, OperatorKind, Result, Speed,
    VStoreError, VideoSeconds, HISTOGRAM_BUCKETS,
};

/// Magic of a serialized request frame ("VSRQ").
pub const REQUEST_MAGIC: u32 = 0x5653_5251;
/// Magic of a serialized response frame ("VSRS").
pub const RESPONSE_MAGIC: u32 = 0x5653_5253;
/// Wire protocol version. v2 widened the erode response from a bare
/// deleted-segment count to the full [`ErodeReport`] (deleted vs demoted,
/// segments and bytes — the tiered-cold-storage erosion outcome). v3 added
/// the live-stats request/response pair carrying [`LiveStats`] — the live
/// ingest backlog, lag histogram and degradation-ladder state. v4 is the
/// socket protocol bump: frames now travel inside a length-prefixed
/// transport envelope carrying a per-frame **correlation id** (so many
/// requests can be pipelined on one connection and answered out of order),
/// and adds the net-stats request/response pair carrying [`NetStats`]. v5
/// adds the observability pair: a metrics-snapshot request/response
/// carrying the unified [`MetricsSnapshot`], and a trace-dump
/// request/response carrying the request tracer's [`TraceDump`].
pub const WIRE_VERSION: u8 = 5;

/// Oldest version a v5 decoder still accepts.
///
/// **Compatibility rule:** new versions add new tags, never change
/// existing payload layouts — every message that existed in v3 encodes
/// byte-for-byte identically under v4 and v5 (only the version byte
/// differs), and the messages new in each version (net-stats in v4,
/// metrics/trace-dump in v5) use tags older versions never emitted. A v5
/// server therefore accept-decodes v3 and v4 frames
/// unchanged; encoders always emit [`WIRE_VERSION`]. Frames outside
/// `[MIN_WIRE_VERSION, WIRE_VERSION]` are rejected with the typed
/// [`VStoreError::UnsupportedVersion`] — distinguishable from corruption,
/// so a client talking to a newer server can say so instead of reporting
/// damaged bytes.
pub const MIN_WIRE_VERSION: u8 = 3;

/// The kind of a serve request (used for routing and per-kind latency
/// accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Transcode + persist a segment range of a source.
    Ingest,
    /// Execute an operator cascade over stored segments.
    Query,
    /// Apply the erosion plan to a stream at an age.
    Erode,
    /// Fetch the aggregate live-ingest statistics.
    LiveStats,
    /// Fetch the aggregate socket front-end statistics.
    NetStats,
    /// Fetch the unified metrics snapshot.
    MetricsSnapshot,
    /// Drain the request tracer's rings.
    TraceDump,
}

impl RequestKind {
    /// All kinds, indexed by their wire tag.
    pub const ALL: [RequestKind; 7] = [
        RequestKind::Ingest,
        RequestKind::Query,
        RequestKind::Erode,
        RequestKind::LiveStats,
        RequestKind::NetStats,
        RequestKind::MetricsSnapshot,
        RequestKind::TraceDump,
    ];

    /// This kind's position in [`Self::ALL`] — its wire tag, and the
    /// index of its latency histogram in the server state.
    pub fn index(self) -> usize {
        self as usize // vstore-lint: allow(checked-cast) — discriminant of a 7-variant enum
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            RequestKind::Ingest => "ingest",
            RequestKind::Query => "query",
            RequestKind::Erode => "erode",
            RequestKind::LiveStats => "live-stats",
            RequestKind::NetStats => "net-stats",
            RequestKind::MetricsSnapshot => "metrics",
            RequestKind::TraceDump => "trace-dump",
        }
    }
}

/// One typed request accepted by the serving front end. The variants mirror
/// the facade's request builders one-to-one.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeRequest {
    /// Ingest `count` segments of `source` starting at `first_segment`.
    Ingest {
        /// The video source to ingest.
        source: VideoSource,
        /// First segment index of the range.
        first_segment: u64,
        /// Number of consecutive segments.
        count: u64,
    },
    /// Run `spec` over `count` segments of `stream` starting at
    /// `first_segment`.
    Query {
        /// The stream to query.
        stream: String,
        /// The operator cascade and target accuracy.
        spec: QuerySpec,
        /// First segment index of the range.
        first_segment: u64,
        /// Number of consecutive segments.
        count: u64,
    },
    /// Apply the active erosion plan to `stream` at `age_days`.
    Erode {
        /// The stream to erode.
        stream: String,
        /// The video age whose erosion step applies.
        age_days: u32,
    },
    /// Fetch the aggregate live-ingest statistics of the store (an idle
    /// default when no live ingestor has been started).
    LiveStats,
    /// Fetch the aggregate socket front-end statistics of the store (an
    /// idle default when no socket front end has been started). New in
    /// wire v4.
    NetStats,
    /// Fetch the unified metrics snapshot: every registered stats source
    /// rendered as typed counter/gauge/histogram rows. New in wire v5.
    MetricsSnapshot,
    /// Drain the request tracer's rings, newest `max_traces` committed
    /// traces (0 = all). New in wire v5.
    TraceDump {
        /// Cap on returned traces; 0 returns everything in the rings.
        max_traces: u64,
    },
}

/// One typed response produced by the serving front end.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeResponse {
    /// A successful ingest.
    Ingest(IngestReport),
    /// A successful query.
    Query(QueryResult),
    /// A successful erosion: what the step deleted vs demoted.
    Erode(ErodeReport),
    /// The request failed; the error crossed the wire as a [`RemoteError`].
    Error(RemoteError),
    /// The store's aggregate live-ingest statistics (boxed: the lag
    /// histogram makes this by far the largest variant).
    LiveStats(Box<LiveStats>),
    /// The store's aggregate socket front-end statistics (boxed for the
    /// same reason: two histograms). New in wire v4.
    NetStats(Box<NetStats>),
    /// The unified metrics snapshot. New in wire v5.
    Metrics(MetricsSnapshot),
    /// The request tracer's drained rings. New in wire v5.
    TraceDump(Box<TraceDump>),
}

impl ServeResponse {
    /// `true` when the response carries an error.
    #[must_use]
    pub fn is_error(&self) -> bool {
        matches!(self, ServeResponse::Error(_))
    }
}

/// The error classes a [`RemoteError`] distinguishes: every
/// [`VStoreError`] variant plus [`Panicked`](ErrorCode::Panicked) for a
/// request whose worker panicked (the connection's request failed; the
/// server kept serving).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ErrorCode {
    Io,
    Corruption,
    NotFound,
    FidelityUnsatisfiable,
    BudgetUnsatisfiable,
    AccuracyUnreachable,
    InvalidArgument,
    InvalidState,
    Busy,
    Panicked,
}

impl ErrorCode {
    /// This code's wire tag — its position in [`Self::ALL`].
    pub fn wire_tag(self) -> u8 {
        self as u8 // vstore-lint: allow(checked-cast) — discriminant of a 10-variant enum
    }

    /// All codes, indexed by their wire tag.
    pub const ALL: [ErrorCode; 10] = [
        ErrorCode::Io,
        ErrorCode::Corruption,
        ErrorCode::NotFound,
        ErrorCode::FidelityUnsatisfiable,
        ErrorCode::BudgetUnsatisfiable,
        ErrorCode::AccuracyUnreachable,
        ErrorCode::InvalidArgument,
        ErrorCode::InvalidState,
        ErrorCode::Busy,
        ErrorCode::Panicked,
    ];
}

/// A [`VStoreError`] as it crosses the wire: the error class plus its
/// message. `PartialEq` so parity tests can compare error responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteError {
    /// The error class.
    pub code: ErrorCode,
    /// The error message.
    pub message: String,
}

impl RemoteError {
    /// Wrap a request-execution error for the wire.
    pub fn from_error(err: &VStoreError) -> Self {
        let code = match err {
            VStoreError::Io(_) => ErrorCode::Io,
            VStoreError::Corruption(_) => ErrorCode::Corruption,
            VStoreError::NotFound(_) => ErrorCode::NotFound,
            VStoreError::FidelityUnsatisfiable(_) => ErrorCode::FidelityUnsatisfiable,
            VStoreError::BudgetUnsatisfiable(_) => ErrorCode::BudgetUnsatisfiable,
            VStoreError::AccuracyUnreachable(_) => ErrorCode::AccuracyUnreachable,
            VStoreError::InvalidArgument(_) => ErrorCode::InvalidArgument,
            VStoreError::InvalidState(_) => ErrorCode::InvalidState,
            VStoreError::Busy(_) => ErrorCode::Busy,
            // A version mismatch reaching request execution means the
            // frame's bytes cannot be interpreted — corruption-class on
            // the wire, with the version detail kept in the message.
            VStoreError::UnsupportedVersion { .. } => ErrorCode::Corruption,
        };
        RemoteError {
            code,
            message: err.to_string(),
        }
    }

    /// Record a caught worker panic.
    pub fn from_panic(message: &str) -> Self {
        RemoteError {
            code: ErrorCode::Panicked,
            message: format!("request worker panicked: {message}"),
        }
    }

    /// Rebuild a client-side [`VStoreError`] (a panic surfaces as
    /// [`VStoreError::InvalidState`]).
    pub fn into_error(self) -> VStoreError {
        match self.code {
            ErrorCode::Io => VStoreError::Io(std::io::Error::other(self.message)),
            ErrorCode::Corruption => VStoreError::Corruption(self.message),
            ErrorCode::NotFound => VStoreError::NotFound(self.message),
            ErrorCode::FidelityUnsatisfiable => VStoreError::FidelityUnsatisfiable(self.message),
            ErrorCode::BudgetUnsatisfiable => VStoreError::BudgetUnsatisfiable(self.message),
            ErrorCode::AccuracyUnreachable => VStoreError::AccuracyUnreachable(self.message),
            ErrorCode::InvalidArgument => VStoreError::InvalidArgument(self.message),
            ErrorCode::InvalidState | ErrorCode::Panicked => {
                VStoreError::InvalidState(self.message)
            }
            ErrorCode::Busy => VStoreError::Busy(self.message),
        }
    }
}

impl ServeRequest {
    /// The request's kind.
    #[must_use]
    pub fn kind(&self) -> RequestKind {
        match self {
            ServeRequest::Ingest { .. } => RequestKind::Ingest,
            ServeRequest::Query { .. } => RequestKind::Query,
            ServeRequest::Erode { .. } => RequestKind::Erode,
            ServeRequest::LiveStats => RequestKind::LiveStats,
            ServeRequest::NetStats => RequestKind::NetStats,
            ServeRequest::MetricsSnapshot => RequestKind::MetricsSnapshot,
            ServeRequest::TraceDump { .. } => RequestKind::TraceDump,
        }
    }

    /// Validate the request with the facade builders' rules, **before** it
    /// touches the queue: a malformed request is rejected at submission,
    /// without spending a queue slot or a worker.
    pub fn validate(&self) -> Result<()> {
        let range = |what: &str, first: u64, count: u64| {
            if count == 0 {
                return Err(VStoreError::invalid_argument(format!(
                    "{what} covers zero segments"
                )));
            }
            if first.checked_add(count).is_none() {
                return Err(VStoreError::invalid_argument(format!(
                    "{what} segment range {first}+{count} overflows u64"
                )));
            }
            Ok(())
        };
        match self {
            ServeRequest::Ingest {
                first_segment,
                count,
                ..
            } => range("ingest request", *first_segment, *count),
            ServeRequest::Query {
                stream,
                first_segment,
                count,
                ..
            } => {
                if stream.is_empty() {
                    return Err(VStoreError::invalid_argument(
                        "query request has an empty stream name",
                    ));
                }
                range("query request", *first_segment, *count)
            }
            ServeRequest::Erode { stream, .. } => {
                if stream.is_empty() {
                    return Err(VStoreError::invalid_argument(
                        "erode request has an empty stream name",
                    ));
                }
                Ok(())
            }
            ServeRequest::LiveStats
            | ServeRequest::NetStats
            | ServeRequest::MetricsSnapshot
            | ServeRequest::TraceDump { .. } => Ok(()),
        }
    }

    /// Serialize the request to wire bytes.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(64);
        self.write_wire(&mut w);
        w.into_bytes()
    }

    /// Serialize the request into a caller-supplied writer — the pooled
    /// (zero-allocation) encode path of the socket front end. Byte-for-byte
    /// identical to [`to_wire`](Self::to_wire).
    pub fn write_wire(&self, w: &mut ByteWriter) {
        w.put_u32(REQUEST_MAGIC);
        w.put_u8(WIRE_VERSION);
        match self {
            ServeRequest::Ingest {
                source,
                first_segment,
                count,
            } => {
                w.put_u8(0);
                put_source(w, source);
                w.put_u64(*first_segment);
                w.put_u64(*count);
            }
            ServeRequest::Query {
                stream,
                spec,
                first_segment,
                count,
            } => {
                w.put_u8(1);
                w.put_bytes(stream.as_bytes());
                put_spec(w, spec);
                w.put_u64(*first_segment);
                w.put_u64(*count);
            }
            ServeRequest::Erode { stream, age_days } => {
                w.put_u8(2);
                w.put_bytes(stream.as_bytes());
                w.put_u32(*age_days);
            }
            ServeRequest::LiveStats => {
                w.put_u8(3);
            }
            ServeRequest::NetStats => {
                w.put_u8(4);
            }
            ServeRequest::MetricsSnapshot => {
                w.put_u8(5);
            }
            ServeRequest::TraceDump { max_traces } => {
                w.put_u8(6);
                w.put_u64(*max_traces);
            }
        }
    }

    /// Deserialize a request from wire bytes.
    pub fn from_wire(bytes: &[u8]) -> Result<ServeRequest> {
        let mut r = ByteReader::new(bytes);
        check_frame(&mut r, REQUEST_MAGIC, "request")?;
        let request = match r.get_u8()? {
            0 => ServeRequest::Ingest {
                source: get_source(&mut r)?,
                first_segment: r.get_u64()?,
                count: r.get_u64()?,
            },
            1 => ServeRequest::Query {
                stream: get_string(&mut r)?,
                spec: get_spec(&mut r)?,
                first_segment: r.get_u64()?,
                count: r.get_u64()?,
            },
            2 => ServeRequest::Erode {
                stream: get_string(&mut r)?,
                age_days: r.get_u32()?,
            },
            3 => ServeRequest::LiveStats,
            4 => ServeRequest::NetStats,
            5 => ServeRequest::MetricsSnapshot,
            6 => ServeRequest::TraceDump {
                max_traces: r.get_u64()?,
            },
            tag => {
                return Err(VStoreError::corruption(format!(
                    "unknown serve request tag {tag}"
                )))
            }
        };
        expect_exhausted(&r, "request")?;
        Ok(request)
    }
}

impl ServeResponse {
    /// Serialize the response to wire bytes.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(64);
        self.write_wire(&mut w);
        w.into_bytes()
    }

    /// Serialize the response into a caller-supplied writer — the pooled
    /// (zero-allocation) encode path of the socket front end. Byte-for-byte
    /// identical to [`to_wire`](Self::to_wire).
    pub fn write_wire(&self, w: &mut ByteWriter) {
        w.put_u32(RESPONSE_MAGIC);
        w.put_u8(WIRE_VERSION);
        match self {
            ServeResponse::Ingest(report) => {
                w.put_u8(0);
                put_ingest_report(w, report);
            }
            ServeResponse::Query(result) => {
                w.put_u8(1);
                put_query_result(w, result);
            }
            ServeResponse::Erode(report) => {
                w.put_u8(2);
                w.put_u32(report.age_days);
                w.put_u64(report.segments_deleted as u64);
                w.put_u64(report.deleted_bytes.bytes());
                w.put_u64(report.segments_demoted as u64);
                w.put_u64(report.demoted_bytes.bytes());
            }
            ServeResponse::Error(err) => {
                w.put_u8(3);
                w.put_u8(err.code.wire_tag());
                w.put_bytes(err.message.as_bytes());
            }
            ServeResponse::LiveStats(stats) => {
                w.put_u8(4);
                put_live_stats(w, stats);
            }
            ServeResponse::NetStats(stats) => {
                w.put_u8(5);
                put_net_stats(w, stats);
            }
            ServeResponse::Metrics(snapshot) => {
                w.put_u8(6);
                put_metrics_snapshot(w, snapshot);
            }
            ServeResponse::TraceDump(dump) => {
                w.put_u8(7);
                put_trace_dump(w, dump);
            }
        }
    }

    /// Deserialize a response from wire bytes.
    pub fn from_wire(bytes: &[u8]) -> Result<ServeResponse> {
        let mut r = ByteReader::new(bytes);
        check_frame(&mut r, RESPONSE_MAGIC, "response")?;
        let response = match r.get_u8()? {
            0 => ServeResponse::Ingest(get_ingest_report(&mut r)?),
            1 => ServeResponse::Query(get_query_result(&mut r)?),
            2 => ServeResponse::Erode(ErodeReport {
                age_days: r.get_u32()?,
                segments_deleted: usize_from_u64(r.get_u64()?, "eroded segment count")?,
                deleted_bytes: ByteSize(r.get_u64()?),
                segments_demoted: usize_from_u64(r.get_u64()?, "demoted segment count")?,
                demoted_bytes: ByteSize(r.get_u64()?),
            }),
            3 => {
                let tag = r.get_u8()?;
                let code = *ErrorCode::ALL.get(usize::from(tag)).ok_or_else(|| {
                    VStoreError::corruption(format!("unknown serve error code {tag}"))
                })?;
                ServeResponse::Error(RemoteError {
                    code,
                    message: get_string(&mut r)?,
                })
            }
            4 => ServeResponse::LiveStats(Box::new(get_live_stats(&mut r)?)),
            5 => ServeResponse::NetStats(Box::new(get_net_stats(&mut r)?)),
            6 => ServeResponse::Metrics(get_metrics_snapshot(&mut r)?),
            7 => ServeResponse::TraceDump(Box::new(get_trace_dump(&mut r)?)),
            tag => {
                return Err(VStoreError::corruption(format!(
                    "unknown serve response tag {tag}"
                )))
            }
        };
        expect_exhausted(&r, "response")?;
        Ok(response)
    }
}

// ---------------------------------------------------------------------
// Frame helpers
// ---------------------------------------------------------------------

fn check_frame(r: &mut ByteReader<'_>, magic: u32, what: &str) -> Result<()> {
    let found = r.get_u32()?;
    if found != magic {
        return Err(VStoreError::corruption(format!(
            "bad serve {what} magic {found:#x}"
        )));
    }
    // Accept the whole supported range (see the compat rule on
    // `MIN_WIRE_VERSION`): v3 payload layouts are unchanged under v4, so a
    // v4 decoder reads v3 frames as-is. Anything else is the typed
    // version-mismatch error, not corruption — the frame may be perfectly
    // well-formed, just newer (or older) than this build.
    let version = r.get_u8()?;
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(VStoreError::unsupported_version(version, WIRE_VERSION));
    }
    Ok(())
}

fn expect_exhausted(r: &ByteReader<'_>, what: &str) -> Result<()> {
    if r.is_exhausted() {
        Ok(())
    } else {
        Err(VStoreError::corruption(format!(
            "trailing garbage after serve {what} ({} bytes)",
            r.remaining()
        )))
    }
}

fn get_string(r: &mut ByteReader<'_>) -> Result<String> {
    let bytes = r.get_bytes()?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| VStoreError::corruption("serve frame string is not UTF-8"))
}

fn get_count(r: &mut ByteReader<'_>, what: &str) -> Result<usize> {
    usize_from_u64(r.get_varint()?, what)
}

// ---------------------------------------------------------------------
// Payload encoders/decoders
// ---------------------------------------------------------------------

fn put_source(w: &mut ByteWriter, source: &VideoSource) {
    w.put_bytes(source.name().as_bytes());
    let p = source.profile();
    w.put_u64(p.seed);
    for field in [
        p.motion_intensity,
        p.object_arrivals_per_minute,
        p.mean_object_height,
        p.object_height_spread,
        p.vehicle_fraction,
        p.plate_visible_fraction,
        p.background_texture,
        p.mean_dwell_seconds,
    ] {
        w.put_f64(field);
    }
}

fn get_source(r: &mut ByteReader<'_>) -> Result<VideoSource> {
    let name = get_string(r)?;
    let profile = DatasetProfile {
        seed: r.get_u64()?,
        motion_intensity: r.get_f64()?,
        object_arrivals_per_minute: r.get_f64()?,
        mean_object_height: r.get_f64()?,
        object_height_spread: r.get_f64()?,
        vehicle_fraction: r.get_f64()?,
        plate_visible_fraction: r.get_f64()?,
        background_texture: r.get_f64()?,
        mean_dwell_seconds: r.get_f64()?,
    };
    Ok(VideoSource::from_profile(name, profile))
}

fn put_op(w: &mut ByteWriter, op: OperatorKind) {
    let tag = OperatorKind::ALL
        .iter()
        .position(|&o| o == op)
        .expect("OperatorKind::ALL is exhaustive"); // vstore-lint: allow(no-unwrap)
    w.put_u8(tag as u8); // vstore-lint: allow(checked-cast) — position in a <=255-entry array
}

fn get_op(r: &mut ByteReader<'_>) -> Result<OperatorKind> {
    let tag = r.get_u8()?;
    OperatorKind::ALL
        .get(usize::from(tag))
        .copied()
        .ok_or_else(|| VStoreError::corruption(format!("unknown operator tag {tag}")))
}

fn put_spec(w: &mut ByteWriter, spec: &QuerySpec) {
    w.put_bytes(spec.name.as_bytes());
    w.put_varint(spec.cascade.len() as u64);
    for &op in &spec.cascade {
        put_op(w, op);
    }
    w.put_f64(spec.accuracy.value());
}

fn get_spec(r: &mut ByteReader<'_>) -> Result<QuerySpec> {
    let name = get_string(r)?;
    let stages = get_count(r, "query cascade length")?;
    let mut cascade = Vec::with_capacity(stages.min(64));
    for _ in 0..stages {
        cascade.push(get_op(r)?);
    }
    let accuracy = r.get_f64()?;
    // AccuracyLevel stores thousandths, so value() → new() round-trips
    // exactly.
    Ok(QuerySpec {
        name,
        cascade,
        accuracy: AccuracyLevel::new(accuracy),
    })
}

fn put_ingest_report(w: &mut ByteWriter, report: &IngestReport) {
    w.put_f64(report.video.seconds());
    w.put_varint(report.segments_written as u64);
    w.put_f64(report.transcode_work.0);
    w.put_varint(report.modeled_bytes.len() as u64);
    for (id, bytes) in &report.modeled_bytes {
        w.put_u32(id.0);
        w.put_u64(bytes.bytes());
    }
    w.put_u64(report.actual_bytes.bytes());
}

fn get_ingest_report(r: &mut ByteReader<'_>) -> Result<IngestReport> {
    let video = VideoSeconds(r.get_f64()?);
    let segments_written = get_count(r, "ingest report segment count")?;
    let transcode_work = CoreSeconds(r.get_f64()?);
    let formats = get_count(r, "ingest report format count")?;
    let mut modeled_bytes = std::collections::BTreeMap::new();
    for _ in 0..formats {
        let id = FormatId(r.get_u32()?);
        let bytes = ByteSize(r.get_u64()?);
        modeled_bytes.insert(id, bytes);
    }
    let actual_bytes = ByteSize(r.get_u64()?);
    Ok(IngestReport {
        video,
        segments_written,
        transcode_work,
        modeled_bytes,
        actual_bytes,
    })
}

fn put_histogram(w: &mut ByteWriter, histogram: &LatencyHistogram) {
    let (buckets, count, total_us, max_us) = histogram.to_parts();
    for bucket in buckets {
        w.put_u64(bucket);
    }
    w.put_u64(count);
    w.put_u64(total_us);
    w.put_u64(max_us);
}

fn get_histogram(r: &mut ByteReader<'_>) -> Result<LatencyHistogram> {
    let mut buckets = [0u64; HISTOGRAM_BUCKETS];
    for bucket in buckets.iter_mut() {
        *bucket = r.get_u64()?;
    }
    let count = r.get_u64()?;
    let total_us = r.get_u64()?;
    let max_us = r.get_u64()?;
    Ok(LatencyHistogram::from_parts(
        buckets, count, total_us, max_us,
    ))
}

fn put_live_stats(w: &mut ByteWriter, stats: &LiveStats) {
    w.put_u64(stats.workers as u64);
    w.put_u64(stats.queue_capacity as u64);
    w.put_u64(stats.queue_depth as u64);
    w.put_u64(stats.peak_queue_depth as u64);
    w.put_u64(stats.offered);
    w.put_u64(stats.accepted);
    w.put_u64(stats.shed);
    w.put_u64(stats.completed);
    w.put_u64(stats.failed);
    w.put_u64(stats.panics);
    w.put_u64(stats.current_level as u64);
    w.put_u64(stats.max_level as u64);
    w.put_u64(stats.step_downs);
    w.put_u64(stats.step_ups);
    w.put_u64(stats.degraded_segments);
    w.put_f64(stats.video.seconds());
    put_histogram(w, &stats.lag);
    w.put_varint(stats.per_source.len() as u64);
    for (source, count) in &stats.per_source {
        w.put_bytes(source.as_bytes());
        w.put_u64(*count);
    }
}

fn get_live_stats(r: &mut ByteReader<'_>) -> Result<LiveStats> {
    let workers = usize_from_u64(r.get_u64()?, "live stats workers")?;
    let queue_capacity = usize_from_u64(r.get_u64()?, "live stats queue capacity")?;
    let queue_depth = usize_from_u64(r.get_u64()?, "live stats queue depth")?;
    let peak_queue_depth = usize_from_u64(r.get_u64()?, "live stats peak queue depth")?;
    let offered = r.get_u64()?;
    let accepted = r.get_u64()?;
    let shed = r.get_u64()?;
    let completed = r.get_u64()?;
    let failed = r.get_u64()?;
    let panics = r.get_u64()?;
    let current_level = usize_from_u64(r.get_u64()?, "live stats current level")?;
    let max_level = usize_from_u64(r.get_u64()?, "live stats max level")?;
    let step_downs = r.get_u64()?;
    let step_ups = r.get_u64()?;
    let degraded_segments = r.get_u64()?;
    let video = VideoSeconds(r.get_f64()?);
    let lag = get_histogram(r)?;
    let sources = get_count(r, "live stats source count")?;
    let mut per_source = std::collections::BTreeMap::new();
    for _ in 0..sources {
        let source = get_string(r)?;
        let count = r.get_u64()?;
        per_source.insert(source, count);
    }
    Ok(LiveStats {
        workers,
        queue_capacity,
        queue_depth,
        peak_queue_depth,
        offered,
        accepted,
        shed,
        completed,
        failed,
        panics,
        current_level,
        max_level,
        step_downs,
        step_ups,
        degraded_segments,
        video,
        lag,
        per_source,
    })
}

fn put_net_stats(w: &mut ByteWriter, stats: &NetStats) {
    w.put_u64(stats.event_loops as u64);
    w.put_u64(stats.accepted);
    w.put_u64(stats.refused);
    w.put_u64(stats.active_connections as u64);
    w.put_u64(stats.frames_in);
    w.put_u64(stats.frames_out);
    w.put_u64(stats.bytes_in);
    w.put_u64(stats.bytes_out);
    w.put_u64(stats.corrupt_frames);
    w.put_u64(stats.oversized_frames);
    w.put_u64(stats.disconnects);
    w.put_u64(stats.write_syscalls);
    w.put_u64(stats.pool_hits);
    w.put_u64(stats.pool_misses);
    put_histogram(w, &stats.batch_sizes);
    put_histogram(w, &stats.backlog_peaks);
}

fn get_net_stats(r: &mut ByteReader<'_>) -> Result<NetStats> {
    Ok(NetStats {
        event_loops: usize_from_u64(r.get_u64()?, "net stats event loops")?,
        accepted: r.get_u64()?,
        refused: r.get_u64()?,
        active_connections: usize_from_u64(r.get_u64()?, "net stats active connections")?,
        frames_in: r.get_u64()?,
        frames_out: r.get_u64()?,
        bytes_in: r.get_u64()?,
        bytes_out: r.get_u64()?,
        corrupt_frames: r.get_u64()?,
        oversized_frames: r.get_u64()?,
        disconnects: r.get_u64()?,
        write_syscalls: r.get_u64()?,
        pool_hits: r.get_u64()?,
        pool_misses: r.get_u64()?,
        batch_sizes: get_histogram(r)?,
        backlog_peaks: get_histogram(r)?,
    })
}

fn put_metrics_snapshot(w: &mut ByteWriter, snapshot: &MetricsSnapshot) {
    w.put_varint(snapshot.metrics.len() as u64);
    for metric in &snapshot.metrics {
        w.put_bytes(metric.name.as_bytes());
        w.put_bytes(metric.help.as_bytes());
        w.put_varint(metric.labels.len() as u64);
        for (key, value) in &metric.labels {
            w.put_bytes(key.as_bytes());
            w.put_bytes(value.as_bytes());
        }
        match &metric.value {
            MetricValue::Counter(v) => {
                w.put_u8(0);
                w.put_u64(*v);
            }
            MetricValue::Gauge(v) => {
                w.put_u8(1);
                w.put_f64(*v);
            }
            MetricValue::Histogram(hist) => {
                w.put_u8(2);
                w.put_varint(hist.bounds.len() as u64);
                for (&bound, &count) in hist.bounds.iter().zip(&hist.counts) {
                    w.put_u64(bound);
                    w.put_u64(count);
                }
                w.put_u64(hist.count);
                w.put_u64(hist.sum);
                w.put_u64(hist.max);
            }
        }
    }
}

fn get_metrics_snapshot(r: &mut ByteReader<'_>) -> Result<MetricsSnapshot> {
    let rows = get_count(r, "metrics row count")?;
    let mut metrics = Vec::with_capacity(rows.min(1 << 12));
    for _ in 0..rows {
        let name = get_string(r)?;
        let help = get_string(r)?;
        let label_count = get_count(r, "metric label count")?;
        let mut labels = Vec::with_capacity(label_count.min(16));
        for _ in 0..label_count {
            let key = get_string(r)?;
            let value = get_string(r)?;
            labels.push((key, value));
        }
        let value = match r.get_u8()? {
            0 => MetricValue::Counter(r.get_u64()?),
            1 => MetricValue::Gauge(r.get_f64()?),
            2 => {
                let buckets = get_count(r, "metric bucket count")?;
                let mut bounds = Vec::with_capacity(buckets.min(64));
                let mut counts = Vec::with_capacity(buckets.min(64));
                for _ in 0..buckets {
                    bounds.push(r.get_u64()?);
                    counts.push(r.get_u64()?);
                }
                MetricValue::Histogram(HistogramSnapshot {
                    bounds,
                    counts,
                    count: r.get_u64()?,
                    sum: r.get_u64()?,
                    max: r.get_u64()?,
                })
            }
            tag => {
                return Err(VStoreError::corruption(format!(
                    "unknown metric value tag {tag}"
                )))
            }
        };
        metrics.push(Metric {
            name,
            help,
            labels,
            value,
        });
    }
    Ok(MetricsSnapshot { metrics })
}

fn get_bool(r: &mut ByteReader<'_>, what: &str) -> Result<bool> {
    match r.get_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        tag => Err(VStoreError::corruption(format!("bad {what} flag {tag}"))),
    }
}

fn put_trace_dump(w: &mut ByteWriter, dump: &TraceDump) {
    w.put_varint(dump.records.len() as u64);
    for record in &dump.records {
        w.put_u64(record.trace_id);
        w.put_bytes(record.root.as_bytes());
        w.put_u64(record.start_us);
        w.put_u64(record.dur_us);
        w.put_u8(u8::from(record.sampled));
        w.put_u8(u8::from(record.slow));
        w.put_varint(record.spans.len() as u64);
        for span in &record.spans {
            w.put_bytes(span.name.as_bytes());
            w.put_bytes(span.detail.as_bytes());
            w.put_u64(span.start_us);
            w.put_u64(span.dur_us);
            w.put_u64(span.tid);
        }
    }
    w.put_u64(dump.dropped_spans);
}

fn get_trace_dump(r: &mut ByteReader<'_>) -> Result<TraceDump> {
    let record_count = get_count(r, "trace record count")?;
    let mut records = Vec::with_capacity(record_count.min(1 << 12));
    for _ in 0..record_count {
        let trace_id = r.get_u64()?;
        let root = get_string(r)?;
        let start_us = r.get_u64()?;
        let dur_us = r.get_u64()?;
        let sampled = get_bool(r, "trace sampled")?;
        let slow = get_bool(r, "trace slow")?;
        let span_count = get_count(r, "trace span count")?;
        let mut spans = Vec::with_capacity(span_count.min(1 << 12));
        for _ in 0..span_count {
            spans.push(TraceSpan {
                name: get_string(r)?,
                detail: get_string(r)?,
                start_us: r.get_u64()?,
                dur_us: r.get_u64()?,
                tid: r.get_u64()?,
            });
        }
        records.push(TraceRecord {
            trace_id,
            root,
            start_us,
            dur_us,
            sampled,
            slow,
            spans,
        });
    }
    let dropped_spans = r.get_u64()?;
    Ok(TraceDump {
        records,
        dropped_spans,
    })
}

fn put_query_result(w: &mut ByteWriter, result: &QueryResult) {
    put_spec(w, &result.query);
    w.put_f64(result.video.seconds());
    w.put_f64(result.speed.factor());
    w.put_varint(result.positive_frames.len() as u64);
    for &frame in &result.positive_frames {
        w.put_varint(frame);
    }
    w.put_varint(result.stages.len() as u64);
    for stage in &result.stages {
        put_op(w, stage.op);
        w.put_varint(stage.segments_processed as u64);
        w.put_varint(stage.segments_passed as u64);
        w.put_varint(stage.frames_consumed as u64);
        w.put_f64(stage.processing_seconds);
        w.put_varint(stage.fallback_segments as u64);
        match stage.planned_selectivity {
            Some(s) => {
                w.put_u8(1);
                w.put_f64(s);
            }
            None => w.put_u8(0),
        }
    }
    w.put_u64(result.bytes_read.bytes());
    w.put_varint(result.segments_skipped as u64);
}

fn get_query_result(r: &mut ByteReader<'_>) -> Result<QueryResult> {
    let query = get_spec(r)?;
    let video = VideoSeconds(r.get_f64()?);
    let speed = Speed(r.get_f64()?);
    let frames = get_count(r, "query result frame count")?;
    let mut positive_frames = Vec::with_capacity(frames.min(1 << 16));
    for _ in 0..frames {
        positive_frames.push(r.get_varint()?);
    }
    let stage_count = get_count(r, "query result stage count")?;
    let mut stages = Vec::with_capacity(stage_count.min(64));
    for _ in 0..stage_count {
        let op = get_op(r)?;
        let segments_processed = get_count(r, "stage segments processed")?;
        let segments_passed = get_count(r, "stage segments passed")?;
        let frames_consumed = get_count(r, "stage frames consumed")?;
        let processing_seconds = r.get_f64()?;
        let fallback_segments = get_count(r, "stage fallback segments")?;
        let planned_selectivity = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_f64()?),
            other => {
                return Err(VStoreError::corruption(format!(
                    "bad planned-selectivity tag {other}"
                )))
            }
        };
        stages.push(StageReport {
            op,
            segments_processed,
            segments_passed,
            frames_consumed,
            processing_seconds,
            fallback_segments,
            planned_selectivity,
        });
    }
    let bytes_read = ByteSize(r.get_u64()?);
    let segments_skipped = get_count(r, "query segments skipped")?;
    Ok(QueryResult {
        query,
        video,
        speed,
        positive_frames,
        stages,
        bytes_read,
        segments_skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstore_datasets::Dataset;

    fn sample_query_result() -> QueryResult {
        QueryResult {
            query: QuerySpec::query_a(0.85),
            video: VideoSeconds(16.0),
            speed: Speed(421.5),
            positive_frames: vec![3, 77, 1_000_000],
            stages: vec![
                StageReport {
                    op: OperatorKind::Diff,
                    segments_processed: 2,
                    segments_passed: 1,
                    frames_consumed: 480,
                    processing_seconds: 0.125,
                    fallback_segments: 0,
                    planned_selectivity: Some(0.45),
                },
                StageReport {
                    op: OperatorKind::FullNN,
                    segments_processed: 1,
                    segments_passed: 1,
                    frames_consumed: 240,
                    processing_seconds: 1.5,
                    fallback_segments: 1,
                    planned_selectivity: None,
                },
            ],
            bytes_read: ByteSize(123_456),
            segments_skipped: 3,
        }
    }

    fn sample_live_stats() -> LiveStats {
        let mut lag = LatencyHistogram::default();
        for us in [12u64, 900, 44_000, 2_000_000] {
            lag.record(us);
        }
        let mut per_source = std::collections::BTreeMap::new();
        per_source.insert("jackson".to_owned(), 41u64);
        per_source.insert("park".to_owned(), u64::MAX);
        LiveStats {
            workers: 3,
            queue_capacity: 64,
            queue_depth: 5,
            peak_queue_depth: 63,
            offered: 120,
            accepted: 110,
            shed: 10,
            completed: 100,
            failed: 5,
            panics: 1,
            current_level: 2,
            max_level: 5,
            step_downs: 9,
            step_ups: 7,
            degraded_segments: 33,
            video: VideoSeconds(800.0),
            lag,
            per_source,
        }
    }

    fn sample_net_stats() -> NetStats {
        let mut batch_sizes = LatencyHistogram::default();
        let mut backlog_peaks = LatencyHistogram::default();
        for v in [1u64, 4, 16, 64] {
            batch_sizes.record(v);
            backlog_peaks.record(v * 2);
        }
        NetStats {
            event_loops: 2,
            accepted: 100,
            refused: 3,
            active_connections: 7,
            frames_in: 5000,
            frames_out: 4990,
            bytes_in: 1 << 20,
            bytes_out: 1 << 22,
            corrupt_frames: 2,
            oversized_frames: 1,
            disconnects: 4,
            write_syscalls: 800,
            pool_hits: 4900,
            pool_misses: 100,
            batch_sizes,
            backlog_peaks,
        }
    }

    fn sample_metrics_snapshot() -> MetricsSnapshot {
        let mut hist = LatencyHistogram::default();
        for us in [3u64, 90, 7_000] {
            hist.record(us);
        }
        MetricsSnapshot {
            metrics: vec![
                vstore_obs::Metric::counter("vstore_serve_requests_total", "requests", 42),
                vstore_obs::Metric::gauge("vstore_cache_fill", "cache fill ratio", 0.75)
                    .with_label("tier", "raw"),
                vstore_obs::Metric::latency("vstore_serve_e2e_us", "end to end", &hist),
            ],
        }
    }

    fn sample_trace_dump() -> TraceDump {
        TraceDump {
            records: vec![TraceRecord {
                trace_id: 0xDEAD_BEEF,
                root: "query".into(),
                start_us: 1_000,
                dur_us: 5_500,
                sampled: true,
                slow: false,
                spans: vec![
                    TraceSpan {
                        name: "net.decode".into(),
                        detail: String::new(),
                        start_us: 0,
                        dur_us: 12,
                        tid: 1,
                    },
                    TraceSpan {
                        name: "read.disk".into(),
                        detail: "jackson/7".into(),
                        start_us: 300,
                        dur_us: 4_000,
                        tid: 3,
                    },
                ],
            }],
            dropped_spans: 9,
        }
    }

    /// The compat rule: a frame whose payload layout existed in an older
    /// supported version decodes identically when its version byte says
    /// so — v3 and v4 frames both decode on the v5 path.
    #[test]
    fn old_version_frames_decode_on_the_v5_path() {
        let request = ServeRequest::Query {
            stream: "jackson".into(),
            spec: QuerySpec::query_a(0.8),
            first_segment: 2,
            count: 4,
        };
        let mut bytes = request.to_wire();
        assert_eq!(bytes[4], WIRE_VERSION);
        for version in MIN_WIRE_VERSION..WIRE_VERSION {
            bytes[4] = version;
            assert_eq!(ServeRequest::from_wire(&bytes).unwrap(), request);
        }

        // A v3-era payload under a v3 version byte.
        let response = ServeResponse::LiveStats(Box::new(sample_live_stats()));
        let mut bytes = response.to_wire();
        bytes[4] = MIN_WIRE_VERSION;
        assert_eq!(ServeResponse::from_wire(&bytes).unwrap(), response);

        // A v4-era payload (net-stats) under a v4 version byte.
        let response = ServeResponse::NetStats(Box::new(sample_net_stats()));
        let mut bytes = response.to_wire();
        bytes[4] = 4;
        assert_eq!(ServeResponse::from_wire(&bytes).unwrap(), response);
    }

    /// `write_wire` into a recycled buffer is byte-identical to `to_wire`.
    #[test]
    fn write_wire_matches_to_wire_on_a_recycled_buffer() {
        use vstore_codec::wire::ByteWriter;
        let response = ServeResponse::NetStats(Box::new(sample_net_stats()));
        let mut w = ByteWriter::from_vec(vec![0xAA; 256]);
        response.write_wire(&mut w);
        assert_eq!(w.into_bytes(), response.to_wire());
    }

    #[test]
    fn requests_round_trip() {
        let requests = vec![
            ServeRequest::Ingest {
                source: VideoSource::new(Dataset::Jackson),
                first_segment: 8,
                count: 4,
            },
            ServeRequest::Query {
                stream: "jackson".into(),
                spec: QuerySpec::query_b(0.7),
                first_segment: 0,
                count: 2,
            },
            ServeRequest::Erode {
                stream: "park".into(),
                age_days: 9,
            },
            ServeRequest::LiveStats,
            ServeRequest::NetStats,
            ServeRequest::MetricsSnapshot,
            ServeRequest::TraceDump { max_traces: 0 },
            ServeRequest::TraceDump { max_traces: 25 },
        ];
        for request in requests {
            let bytes = request.to_wire();
            let decoded = ServeRequest::from_wire(&bytes).unwrap();
            assert_eq!(decoded, request);
            // Round-tripping the decoded request is byte-identical.
            assert_eq!(decoded.to_wire(), bytes);
        }
    }

    #[test]
    fn responses_round_trip() {
        let mut report = IngestReport {
            video: VideoSeconds(32.0),
            segments_written: 12,
            transcode_work: CoreSeconds(7.25),
            modeled_bytes: std::collections::BTreeMap::new(),
            actual_bytes: ByteSize(9_999_999),
        };
        report.modeled_bytes.insert(FormatId(0), ByteSize(1 << 30));
        report.modeled_bytes.insert(FormatId(3), ByteSize(12_345));
        let responses = vec![
            ServeResponse::Ingest(report),
            ServeResponse::Query(sample_query_result()),
            ServeResponse::Erode(ErodeReport {
                age_days: 5,
                segments_deleted: 17,
                deleted_bytes: ByteSize(4_200_000),
                segments_demoted: 9,
                demoted_bytes: ByteSize(2_100_000),
            }),
            ServeResponse::Error(RemoteError {
                code: ErrorCode::Busy,
                message: "busy: serve queue full".into(),
            }),
            ServeResponse::Error(RemoteError::from_panic("boom")),
            ServeResponse::LiveStats(Box::new(sample_live_stats())),
            ServeResponse::LiveStats(Box::default()),
            ServeResponse::NetStats(Box::new(sample_net_stats())),
            ServeResponse::NetStats(Box::default()),
            ServeResponse::Metrics(sample_metrics_snapshot()),
            ServeResponse::Metrics(MetricsSnapshot::default()),
            ServeResponse::TraceDump(Box::new(sample_trace_dump())),
            ServeResponse::TraceDump(Box::default()),
        ];
        for response in responses {
            let bytes = response.to_wire();
            let decoded = ServeResponse::from_wire(&bytes).unwrap();
            assert_eq!(decoded, response);
            assert_eq!(decoded.to_wire(), bytes);
        }
    }

    #[test]
    fn malformed_frames_are_corruption_not_panics() {
        let good = ServeRequest::Erode {
            stream: "x".into(),
            age_days: 1,
        }
        .to_wire();
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            ServeRequest::from_wire(&bad),
            Err(VStoreError::Corruption(_))
        ));
        // Unsupported version: typed, carrying what was found and what this
        // build speaks — not lumped in with corruption.
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            ServeRequest::from_wire(&bad),
            Err(VStoreError::UnsupportedVersion {
                got: 99,
                expected: WIRE_VERSION
            })
        ));
        // Below the compat floor is equally typed.
        let mut bad = good.clone();
        bad[4] = MIN_WIRE_VERSION - 1;
        assert!(ServeRequest::from_wire(&bad)
            .unwrap_err()
            .is_unsupported_version());
        // Truncated.
        assert!(matches!(
            ServeRequest::from_wire(&good[..good.len() - 1]),
            Err(VStoreError::Corruption(_))
        ));
        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(matches!(
            ServeRequest::from_wire(&bad),
            Err(VStoreError::Corruption(_))
        ));
        // Unknown request tag.
        let mut bad = good;
        bad[5] = 9;
        assert!(matches!(
            ServeRequest::from_wire(&bad),
            Err(VStoreError::Corruption(_))
        ));
        // A request frame is not a response frame.
        let request = ServeRequest::Erode {
            stream: "x".into(),
            age_days: 1,
        };
        assert!(ServeResponse::from_wire(&request.to_wire()).is_err());
    }

    #[test]
    fn unknown_operator_and_error_tags_are_rejected() {
        let query = ServeRequest::Query {
            stream: "s".into(),
            spec: QuerySpec::query_a(0.9),
            first_segment: 0,
            count: 1,
        };
        let bytes = query.to_wire();
        // The first cascade op byte sits after magic(4) + version(1) +
        // tag(1) + stream(varint 1 + 1 byte) + spec name(varint 1 + 1 byte)
        // + cascade len varint(1).
        let op_pos = 4 + 1 + 1 + 2 + 2 + 1;
        let mut bad = bytes.clone();
        assert!(
            bad[op_pos] < OperatorKind::ALL.len() as u8,
            "layout drifted"
        );
        bad[op_pos] = 200;
        assert!(matches!(
            ServeRequest::from_wire(&bad),
            Err(VStoreError::Corruption(_))
        ));

        let err = ServeResponse::Error(RemoteError {
            code: ErrorCode::NotFound,
            message: "m".into(),
        });
        let mut bad = err.to_wire();
        bad[6] = 250; // error-code byte
        assert!(matches!(
            ServeResponse::from_wire(&bad),
            Err(VStoreError::Corruption(_))
        ));
    }

    #[test]
    fn validation_mirrors_the_facade_builders() {
        let source = VideoSource::new(Dataset::Jackson);
        assert!(ServeRequest::Ingest {
            source: source.clone(),
            first_segment: 0,
            count: 0,
        }
        .validate()
        .is_err());
        assert!(ServeRequest::Ingest {
            source,
            first_segment: u64::MAX,
            count: 2,
        }
        .validate()
        .is_err());
        assert!(ServeRequest::Query {
            stream: String::new(),
            spec: QuerySpec::query_a(0.9),
            first_segment: 0,
            count: 1,
        }
        .validate()
        .is_err());
        assert!(ServeRequest::Erode {
            stream: String::new(),
            age_days: 0,
        }
        .validate()
        .is_err());
        assert!(ServeRequest::Erode {
            stream: "ok".into(),
            age_days: 3,
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn remote_errors_map_to_and_from_vstore_errors() {
        let original = VStoreError::not_found("segment 9");
        let remote = RemoteError::from_error(&original);
        assert_eq!(remote.code, ErrorCode::NotFound);
        let back = remote.into_error();
        assert!(back.is_not_found());
        assert!(back.to_string().contains("segment 9"));

        let busy = RemoteError::from_error(&VStoreError::busy("queue full"));
        assert_eq!(busy.code, ErrorCode::Busy);
        assert!(busy.into_error().is_busy());

        let panic = RemoteError::from_panic("kaboom");
        assert_eq!(panic.code, ErrorCode::Panicked);
        let err = panic.into_error();
        assert!(matches!(err, VStoreError::InvalidState(_)));
        assert!(err.to_string().contains("kaboom"));
    }
}
