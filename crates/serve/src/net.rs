//! The socket front end: a TCP listener feeding N event-loop threads that
//! multiplex non-blocking connections over the in-process [`Server`]'s
//! bounded queue.
//!
//! ```text
//!             accept        round-robin            bounded queue
//!  clients ──► listener ──► event loop 0 ─┐ submit ┌─► worker 0
//!    (TCP)     thread   ──► event loop 1 ─┼────────┼─► worker 1
//!                       ──► event loop …  ─┘        └─► worker …
//!                            ▲   │ try_recv   reply channels │
//!                            └───┴────────────────◄──────────┘
//!                         batched vectored writes
//! ```
//!
//! Each event loop owns its connections outright (no per-connection
//! locking): one pass reads whatever the kernel has, decodes complete
//! frames, stamps them **at decode time** (so queue-wait histograms are
//! comparable with the in-process path), submits them non-blockingly
//! (shedding turns into a `Busy` error *response*, never a stalled loop),
//! drains finished responses, and flushes them with adaptive batching —
//! immediate when the pipeline is empty, coalesced into few large vectored
//! writes when responses are streaming.
//!
//! Shutdown is a drain: the acceptor stops, the loops stop reading, every
//! request already accepted is answered and flushed, then sockets close —
//! bounded by a hard deadline so a dead peer cannot wedge the drain.

use crate::conn::{BufferPool, CloseReason, NetConn, PumpOutcome};
use crate::server::{Connector, ServeProbe, Server, ServerHandle, VideoService};
use crate::stats::{NetStats, ServeStats};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use vstore_sim::catch_panic;
use vstore_sim::sync::lock_unpoisoned;
use vstore_types::hist::LatencyHistogram;
use vstore_types::{NetOptions, Result, ServeOptions, VStoreError};

/// Read scratch per event loop; sized to drain a full default socket
/// buffer in one syscall.
const READ_SCRATCH_BYTES: usize = 64 * 1024;
/// Idle buffers the pool retains across all loops.
const POOL_CAPACITY: usize = 256;
/// Buffers grown past this are dropped rather than pooled, bounding the
/// pool's resident memory after a burst of jumbo frames.
const POOL_RETAIN_BYTES: usize = 256 * 1024;
/// Acceptor poll interval while the listen backlog is empty.
const ACCEPT_POLL: Duration = Duration::from_micros(500);
/// Hard bound on the graceful drain once shutdown begins.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Counters the event loops and acceptor update; one mutex, short holds.
#[derive(Default)]
pub(crate) struct NetState {
    accepted: u64,
    refused: u64,
    active_connections: usize,
    frames_in: u64,
    frames_out: u64,
    bytes_in: u64,
    bytes_out: u64,
    corrupt_frames: u64,
    oversized_frames: u64,
    disconnects: u64,
    write_syscalls: u64,
    batch_sizes: LatencyHistogram,
    backlog_peaks: LatencyHistogram,
}

/// State shared between the acceptor, the event loops and every handle.
pub(crate) struct NetShared {
    pub(crate) options: NetOptions,
    state: Mutex<NetState>,
    pub(crate) pool: BufferPool,
    stop: AtomicBool,
}

impl NetShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, NetState> {
        lock_unpoisoned(&self.state)
    }

    pub(crate) fn add_bytes_in(&self, n: u64) {
        self.lock().bytes_in += n;
    }

    pub(crate) fn add_frames_in(&self, n: u64) {
        self.lock().frames_in += n;
    }

    pub(crate) fn count_corrupt_frame(&self) {
        self.lock().corrupt_frames += 1;
    }

    pub(crate) fn count_oversized_frame(&self) {
        self.lock().oversized_frames += 1;
    }

    /// One successful vectored write: `bytes` moved, `completed` whole
    /// response frames finished (recorded as the batch size).
    pub(crate) fn record_write(&self, bytes: u64, completed: u64) {
        let mut state = self.lock();
        state.write_syscalls += 1;
        state.bytes_out += bytes;
        state.frames_out += completed;
        if completed > 0 {
            state.batch_sizes.record(completed);
        }
    }

    /// A connection left its event loop.
    pub(crate) fn close_connection(&self, reason: CloseReason, peak_backlog: u64, abandoned: bool) {
        let mut state = self.lock();
        state.active_connections = state.active_connections.saturating_sub(1);
        if peak_backlog > 0 {
            state.backlog_peaks.record(peak_backlog);
        }
        if abandoned || matches!(reason, CloseReason::Disconnect) {
            state.disconnects += 1;
        }
    }

    fn snapshot(&self) -> NetStats {
        let state = self.lock();
        NetStats {
            event_loops: self.options.event_loops,
            accepted: state.accepted,
            refused: state.refused,
            active_connections: state.active_connections,
            frames_in: state.frames_in,
            frames_out: state.frames_out,
            bytes_in: state.bytes_in,
            bytes_out: state.bytes_out,
            corrupt_frames: state.corrupt_frames,
            oversized_frames: state.oversized_frames,
            disconnects: state.disconnects,
            write_syscalls: state.write_syscalls,
            pool_hits: self.pool.hit_count(),
            pool_misses: self.pool.miss_count(),
            batch_sizes: state.batch_sizes.clone(),
            backlog_peaks: state.backlog_peaks.clone(),
        }
    }
}

/// Sockets accepted but not yet adopted by their event loop.
type Intake = Arc<Mutex<Vec<TcpStream>>>;

/// Namespace for starting the socket front end; see [`NetServer::start`].
pub struct NetServer;

impl NetServer {
    /// Bind `addr`, start an in-process [`Server`] over `service` with
    /// `serve` options, and drive it from `net.event_loops` event-loop
    /// threads plus one acceptor. Bind to port 0 to let the OS choose
    /// (see [`NetServerHandle::local_addr`]).
    pub fn start<S>(
        service: S,
        addr: impl ToSocketAddrs,
        net: NetOptions,
        serve: ServeOptions,
    ) -> Result<NetServerHandle>
    where
        S: VideoService + Clone,
    {
        net.validate()?;
        let inner = Server::start(service, serve)?;
        let listener = TcpListener::bind(addr).map_err(VStoreError::Io)?;
        listener.set_nonblocking(true).map_err(VStoreError::Io)?;
        let local_addr = listener.local_addr().map_err(VStoreError::Io)?;

        let shared = Arc::new(NetShared {
            options: net,
            state: Mutex::new(NetState::default()),
            pool: BufferPool::new(POOL_CAPACITY, POOL_RETAIN_BYTES),
            stop: AtomicBool::new(false),
        });

        let mut intakes: Vec<Intake> = Vec::with_capacity(net.event_loops);
        let mut loops = Vec::with_capacity(net.event_loops);
        let mut spawn_failure = None;
        for i in 0..net.event_loops {
            let intake: Intake = Arc::new(Mutex::new(Vec::new()));
            let loop_shared = Arc::clone(&shared);
            let loop_intake = Arc::clone(&intake);
            let connector = inner.connector();
            let spawned = std::thread::Builder::new()
                .name(format!("vstore-net-loop-{i}"))
                .spawn(move || event_loop(&loop_shared, &loop_intake, &connector));
            match spawned {
                Ok(handle) => {
                    intakes.push(intake);
                    loops.push(handle);
                }
                Err(e) => {
                    spawn_failure = Some(e);
                    break;
                }
            }
        }
        let acceptor = if spawn_failure.is_none() {
            let accept_shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("vstore-net-accept".into())
                .spawn(move || acceptor_loop(&listener, &accept_shared, &intakes))
                .map_err(|e| spawn_failure = Some(e))
                .ok()
        } else {
            None
        };
        if let Some(e) = spawn_failure {
            // Wind down whatever did spawn instead of leaking it.
            shared.stop.store(true, Ordering::Release);
            for handle in loops {
                let _ = handle.join();
            }
            inner.shutdown();
            return Err(VStoreError::Io(e));
        }

        Ok(NetServerHandle {
            inner: Some(inner),
            shared,
            local_addr,
            acceptor,
            loops,
        })
    }
}

/// A running socket front end. Dropping the handle drains and shuts it
/// down; call [`shutdown`](Self::shutdown) to do the same explicitly and
/// receive the final statistics.
pub struct NetServerHandle {
    inner: Option<ServerHandle>,
    shared: Arc<NetShared>,
    local_addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    loops: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for NetServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServerHandle")
            .field("local_addr", &self.local_addr)
            .field("event_loops", &self.shared.options.event_loops)
            .finish()
    }
}

impl NetServerHandle {
    /// The bound address — the real port when started on port 0.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A network-layer statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        self.shared.snapshot()
    }

    /// A request-layer statistics snapshot from the inner server.
    #[must_use]
    pub fn serve_stats(&self) -> ServeStats {
        // `inner` is Some from construction until shutdown() consumes self.
        self.inner
            .as_ref()
            .expect("inner server lives until shutdown") // vstore-lint: allow(no-unwrap)
            .stats()
    }

    /// A cheap probe of the network statistics.
    pub fn probe(&self) -> NetProbe {
        NetProbe {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A probe of the inner server's request statistics.
    pub fn serve_probe(&self) -> ServeProbe {
        // `inner` is Some from construction until shutdown() consumes self.
        self.inner
            .as_ref()
            .expect("inner server lives until shutdown") // vstore-lint: allow(no-unwrap)
            .probe()
    }

    /// Graceful drain: stop accepting, answer and flush every request
    /// already read (bounded by a 5 s deadline), close the sockets, then
    /// shut the inner server down. Returns both final statistics.
    pub fn shutdown(mut self) -> (NetStats, ServeStats) {
        self.shutdown_net();
        let serve = self
            .inner
            .take()
            .expect("inner server lives until shutdown") // vstore-lint: allow(no-unwrap)
            .shutdown();
        (self.shared.snapshot(), serve)
    }

    fn shutdown_net(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for handle in self.loops.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServerHandle {
    fn drop(&mut self) {
        // The loops need the inner server's workers alive to drain, so
        // stop the network side first; the inner handle's own Drop then
        // shuts the workers down.
        self.shutdown_net();
    }
}

/// A cloneable, read-only probe of the socket front end's statistics.
#[derive(Clone)]
pub struct NetProbe {
    shared: Arc<NetShared>,
}

impl NetProbe {
    /// A statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        self.shared.snapshot()
    }

    /// `true` until shutdown begins; registries retire dead front ends so
    /// reports stop counting their event loops as provisioned capacity.
    #[must_use]
    pub fn is_live(&self) -> bool {
        !self.shared.stop.load(Ordering::Acquire)
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &NetShared, intakes: &[Intake]) {
    let mut next = 0usize;
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                {
                    let mut state = shared.lock();
                    if state.active_connections >= shared.options.max_connections {
                        state.refused += 1;
                        continue; // dropping the stream closes it
                    }
                    state.accepted += 1;
                    state.active_connections += 1;
                }
                // Both halves of the protocol are latency-sensitive and
                // self-batching, so Nagle only adds stalls; non-blocking
                // is what the event loop's multiplexing assumes.
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    let mut state = shared.lock();
                    state.active_connections -= 1;
                    state.refused += 1;
                    continue;
                }
                lock_unpoisoned(&intakes[next % intakes.len()]).push(stream);
                next += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn event_loop(shared: &NetShared, intake: &Intake, connector: &Connector) {
    let mut conns: Vec<NetConn> = Vec::new();
    let mut scratch = vec![0u8; READ_SCRATCH_BYTES];
    let mut drain_deadline: Option<Instant> = None;
    loop {
        let draining = shared.stop.load(Ordering::Acquire);
        if draining && drain_deadline.is_none() {
            drain_deadline = Some(Instant::now() + DRAIN_DEADLINE);
        }

        // Adopt newly accepted sockets. During a drain late arrivals are
        // turned away (the acceptor already counted them active).
        for stream in lock_unpoisoned(intake).drain(..) {
            if draining {
                let mut state = shared.lock();
                state.active_connections -= 1;
                state.refused += 1;
            } else {
                conns.push(NetConn::new(stream, connector.connect(), shared));
            }
        }

        let mut progress = false;
        let mut i = 0;
        while i < conns.len() {
            let conn = &mut conns[i];
            match catch_panic(|| conn.pump(shared, &mut scratch, draining)) {
                Ok(PumpOutcome::Continue { progress: moved }) => {
                    progress |= moved;
                    i += 1;
                }
                Ok(PumpOutcome::Close(reason)) => {
                    conns.swap_remove(i).finish(shared, reason);
                    progress = true;
                }
                // A pump panic poisons only its own connection; every
                // other connection (and the loop) keeps serving.
                Err(_panic) => {
                    conns.swap_remove(i).finish(shared, CloseReason::Disconnect);
                    progress = true;
                }
            }
        }

        if draining {
            if conns.is_empty() {
                break;
            }
            if drain_deadline.is_some_and(|d| Instant::now() >= d) {
                // Peers that would not take their responses in time.
                for conn in conns.drain(..) {
                    conn.finish(shared, CloseReason::Disconnect);
                }
                break;
            }
        }
        if !progress {
            std::thread::sleep(Duration::from_micros(shared.options.poll_wait_us));
        }
    }
}
