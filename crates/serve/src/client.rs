//! A synchronous, pipelining TCP client for the socket front end.
//!
//! [`NetClient`] speaks the wire-v4 transport envelope (see
//! [`crate::conn`]): submit any number of requests without waiting, then
//! collect responses in whatever order the server finishes them — each
//! response carries the correlation id of the request it answers. Submits
//! coalesce into one outgoing buffer that is pushed to the socket by
//! [`NetClient::flush`] (or automatically, by `recv` before it blocks and
//! whenever the buffer crosses a size threshold), so a pipelined burst
//! costs one write syscall, not one per request. All buffers (encode,
//! outbox, read scratch, inbox) are owned by the client and reused, so a
//! steady request/response loop allocates nothing per call.

use crate::conn::{encode_frame, parse_frame, FrameError, FrameStep};
use crate::wire::{ServeRequest, ServeResponse};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Instant;
use vstore_types::hist::LatencyHistogram;
use vstore_types::{Result, VStoreError, DEFAULT_MAX_FRAME_BYTES};

/// Coalesced submits are pushed to the socket once the outbox grows past
/// this, even without an explicit [`NetClient::flush`].
const OUTBOX_FLUSH_BYTES: usize = 64 * 1024;

/// One blocking, pipelined connection to a [`crate::NetServer`].
pub struct NetClient {
    stream: TcpStream,
    next_corr: u64,
    /// Submission instants of requests not yet answered, by correlation id.
    sent_at: HashMap<u64, Instant>,
    /// Responses received while waiting for a different correlation id.
    buffered: HashMap<u64, ServeResponse>,
    /// Encoded frames not yet pushed to the socket.
    outbox: Vec<u8>,
    /// Correlation ids of the frames in the outbox, in order. On a failed
    /// flush these are un-tracked from `sent_at` — they never hit the wire.
    outbox_ids: Vec<u64>,
    /// Unparsed response bytes.
    inbox: Vec<u8>,
    scratch: Vec<u8>,
    encode_buf: Vec<u8>,
    /// End-to-end latency (submit to response decoded) of every answered
    /// request.
    latency: LatencyHistogram,
    max_frame_bytes: usize,
}

impl std::fmt::Debug for NetClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetClient")
            .field("pending", &self.pending())
            .finish()
    }
}

impl NetClient {
    /// Connect to a serving address. The socket is blocking with Nagle
    /// disabled — a flushed burst reaches the server immediately; the
    /// client does its own coalescing instead of leaning on the kernel's.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr).map_err(VStoreError::Io)?;
        stream.set_nodelay(true).map_err(VStoreError::Io)?;
        Ok(NetClient {
            stream,
            next_corr: 0,
            sent_at: HashMap::new(),
            buffered: HashMap::new(),
            outbox: Vec::new(),
            outbox_ids: Vec::new(),
            inbox: Vec::new(),
            scratch: vec![0u8; 16 * 1024],
            encode_buf: Vec::new(),
            latency: LatencyHistogram::default(),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// Raise (or lower) the response-frame size this client accepts.
    /// Must match the server's `NetOptions::max_frame_bytes` when that is
    /// configured above the default — otherwise a legitimate large
    /// response is rejected as corruption.
    #[must_use]
    pub fn with_max_frame_bytes(mut self, max_frame_bytes: usize) -> Self {
        self.max_frame_bytes = max_frame_bytes;
        self
    }

    /// Queue a request without waiting; returns its correlation id. The
    /// encoded frame coalesces with other pending submits and reaches the
    /// wire on the next [`flush`](Self::flush) (`recv` flushes before it
    /// blocks; a full outbox flushes on its own).
    pub fn submit(&mut self, request: &ServeRequest) -> Result<u64> {
        request.validate()?;
        let corr_id = self.next_corr;
        self.next_corr += 1;
        let buf = std::mem::take(&mut self.encode_buf);
        let buf = encode_frame(buf, corr_id, |w| request.write_wire(w));
        self.outbox.extend_from_slice(&buf);
        self.encode_buf = buf;
        self.outbox_ids.push(corr_id);
        self.sent_at.insert(corr_id, Instant::now());
        if self.outbox.len() >= OUTBOX_FLUSH_BYTES {
            self.flush()?;
        }
        Ok(corr_id)
    }

    /// Push every coalesced submit onto the wire in one write. Call this
    /// when the server must see the requests before you are ready to
    /// `recv` — e.g. fire-and-forget bursts, or tests that watch
    /// server-side counters.
    ///
    /// On a write error the undelivered requests are dropped from the
    /// outstanding set (a partial write leaves the stream mid-frame, so
    /// they can never be answered) and the error is returned.
    pub fn flush(&mut self) -> Result<()> {
        if self.outbox.is_empty() {
            return Ok(());
        }
        let outcome = self.stream.write_all(&self.outbox).map_err(VStoreError::Io);
        self.outbox.clear();
        if outcome.is_err() {
            for corr_id in self.outbox_ids.drain(..) {
                self.sent_at.remove(&corr_id);
            }
        } else {
            self.outbox_ids.clear();
        }
        outcome
    }

    /// Block until the next response arrives (any correlation id).
    pub fn recv(&mut self) -> Result<(u64, ServeResponse)> {
        if let Some(&corr_id) = self.buffered.keys().next() {
            let response = self.buffered.remove(&corr_id).expect("key just seen"); // vstore-lint: allow(no-unwrap)
            return Ok((corr_id, response));
        }
        self.recv_from_wire()
    }

    /// Block until the next response arrives **off the socket**, ignoring
    /// the `buffered` set. `recv_response` loops on this so a buffered
    /// non-matching response can never starve the socket read.
    fn recv_from_wire(&mut self) -> Result<(u64, ServeResponse)> {
        if self.sent_at.is_empty() {
            return Err(VStoreError::InvalidState("no requests outstanding".into()));
        }
        self.flush()?;
        loop {
            match parse_frame(&self.inbox, self.max_frame_bytes) {
                Ok(FrameStep::Frame {
                    corr_id,
                    payload,
                    spans,
                }) => {
                    let response = ServeResponse::from_wire(&self.inbox[payload])?;
                    self.inbox.drain(..spans);
                    if let Some(sent) = self.sent_at.remove(&corr_id) {
                        self.latency.record(sent.elapsed().as_micros() as u64);
                    }
                    return Ok((corr_id, response));
                }
                Ok(FrameStep::Incomplete) => {}
                Err(FrameError::Oversized { declared }) => {
                    return Err(VStoreError::corruption(format!(
                        "response frame declares {declared} bytes, over the {} cap",
                        self.max_frame_bytes
                    )));
                }
                Err(FrameError::Malformed { declared }) => {
                    return Err(VStoreError::corruption(format!(
                        "response frame declares {declared} bytes, below the envelope minimum"
                    )));
                }
            }
            let n = loop {
                match self.stream.read(&mut self.scratch) {
                    Ok(n) => break n,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => return Err(VStoreError::Io(e)),
                }
            };
            if n == 0 {
                return Err(VStoreError::InvalidState(format!(
                    "server closed the connection with {} responses outstanding",
                    self.sent_at.len()
                )));
            }
            self.inbox.extend_from_slice(&self.scratch[..n]);
        }
    }

    /// Block until the response for `corr_id` arrives, buffering any
    /// other responses that land first.
    pub fn recv_response(&mut self, corr_id: u64) -> Result<ServeResponse> {
        if let Some(response) = self.buffered.remove(&corr_id) {
            return Ok(response);
        }
        loop {
            let (got, response) = self.recv_from_wire()?;
            if got == corr_id {
                return Ok(response);
            }
            self.buffered.insert(got, response);
        }
    }

    /// Submit one request and wait for its response (no pipelining).
    pub fn call(&mut self, request: &ServeRequest) -> Result<ServeResponse> {
        let corr_id = self.submit(request)?;
        self.recv_response(corr_id)
    }

    /// Requests submitted but not yet returned by `recv`/`recv_response`
    /// (including responses already buffered internally).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.sent_at.len() + self.buffered.len()
    }

    /// End-to-end latency of every answered request on this connection.
    #[must_use]
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }
}
