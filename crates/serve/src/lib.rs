//! # vstore-serve
//!
//! The connection-serving front end of VStore: the piece that turns the
//! `Clone + Send + Sync` service handle into a **servable system** for many
//! concurrent analytics clients (paper §3: queries arrive continuously
//! while ingestion competes for the same resources).
//!
//! The crate provides three layers:
//!
//! * **Typed requests and a wire codec** ([`ServeRequest`],
//!   [`ServeResponse`]): the facade's request-builder vocabulary as an
//!   enum, plus a versioned little-endian wire format in `vstore-codec`'s
//!   style — malformed frames surface as typed corruption errors, never
//!   panics.
//! * **A bounded request queue with back-pressure** ([`Server`],
//!   [`Connection`]): requests beyond `ServeOptions::queue_depth` are shed
//!   with `VStoreError::Busy` or block the client, per
//!   `QueueFullPolicy` — the server can never be ballooned out of memory
//!   by fast clients.
//! * **A thread-per-core executor pool** ([`ServerHandle`]): workers drain
//!   the queue driving cloned service handles, isolate per-request panics
//!   via the scoped pool's panic capture, shut down gracefully (drain,
//!   then join) and report [`ServeStats`] — queue depth, lag and per-kind
//!   latency histograms — which `VStore::stats_report` folds in.
//!
//! * **A pipelined TCP front end** ([`NetServer`], [`NetClient`]): a real
//!   socket listener feeding event-loop threads that multiplex
//!   non-blocking connections over the same bounded queue — length-prefixed
//!   frames with per-frame correlation ids (wire v4), adaptive response
//!   batching into vectored writes, and pooled buffers so the steady-state
//!   request path allocates nothing. [`NetStats`] reports connection,
//!   frame, batching and pool behaviour.
//!
//! The front end is generic over [`VideoService`], implemented by `VStore`
//! in the facade crate; tests drive it with deterministic mocks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod conn;
mod net;
mod server;
mod stats;
mod wire;

pub use client::NetClient;
pub use net::{NetProbe, NetServer, NetServerHandle};
pub use server::{Connection, Connector, ServeProbe, Server, ServerHandle, VideoService};
pub use stats::{LatencyHistogram, NetStats, ServeStats};
// Re-exported so wire-level clients can name the live-stats payload without
// depending on the ingest crate directly.
pub use vstore_ingest::LiveStats;
// Same for the observability payloads (wire v5).
pub use vstore_obs::{MetricsSnapshot, TraceDump};
pub use wire::{
    ErrorCode, RemoteError, RequestKind, ServeRequest, ServeResponse, MIN_WIRE_VERSION,
    REQUEST_MAGIC, RESPONSE_MAGIC, WIRE_VERSION,
};
