//! The serving front end: a bounded request queue drained by a
//! thread-per-core worker pool.
//!
//! ```text
//!  clients ──┐ submit()              ┌─ worker 0 ── service clone ─┐
//!  clients ──┼──► bounded queue ─────┼─ worker 1 ── service clone ─┼─► per-connection
//!  clients ──┘   (Busy / block)      └─ worker N ── service clone ─┘   response channels
//! ```
//!
//! * **Back-pressure.** The queue never grows past
//!   `ServeOptions::queue_depth`: beyond it, `submit` sheds the request
//!   with [`VStoreError::Busy`] ([`QueueFullPolicy::Reject`]) or blocks the
//!   client ([`QueueFullPolicy::Block`]). Memory stays bounded no matter
//!   how many clients connect.
//! * **Panic isolation.** Workers run each request under
//!   [`vstore_sim::catch_panic`] — the same panic capture the scoped
//!   worker pool uses — so a panicking operator fails only that request
//!   (the client receives an [`ErrorCode::Panicked`](crate::ErrorCode)
//!   response) while the worker and the server keep serving.
//! * **Graceful shutdown.** [`ServerHandle::shutdown`] closes the queue to
//!   new requests, lets the workers drain everything already accepted,
//!   joins them and returns the final [`ServeStats`].
//! * **Disconnect tolerance.** Dropping a [`Connection`] mid-stream never
//!   disturbs the server: responses to a vanished client are counted and
//!   discarded.

use crate::stats::{LatencyHistogram, NetStats, ServeStats};
use crate::wire::{RemoteError, RequestKind, ServeRequest, ServeResponse};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use vstore_datasets::VideoSource;
use vstore_ingest::{ErodeReport, IngestReport, LiveStats};
use vstore_obs::{MetricsSnapshot, TraceContext, TraceDump, Tracer};
use vstore_query::{QueryResult, QuerySpec};
use vstore_sim::sync::lock_unpoisoned;
use vstore_sim::{catch_panic, panic_message, BoundedQueue, PushError};
use vstore_types::{Result, ServeOptions, VStoreError};

/// The store-side interface the front end drives: the three runtime
/// operations of a `VStore` service handle. Implemented by `VStore` itself
/// (in the facade crate) and by mocks in tests.
pub trait VideoService: Send + Sync + 'static {
    /// Ingest `count` segments of `source` starting at `first_segment`.
    fn ingest(&self, source: &VideoSource, first_segment: u64, count: u64) -> Result<IngestReport>;
    /// Run `spec` over `count` segments of `stream` starting at
    /// `first_segment`.
    fn query(
        &self,
        stream: &str,
        spec: &QuerySpec,
        first_segment: u64,
        count: u64,
    ) -> Result<QueryResult>;
    /// Apply the active erosion plan to `stream` at `age_days`. Reports
    /// what the step deleted and what it demoted to the cold tier.
    fn erode(&self, stream: &str, age_days: u32) -> Result<ErodeReport>;
    /// The store's aggregate live-ingest statistics. Defaults to an idle
    /// report for services with no live ingest subsystem (mocks, replayers);
    /// `VStore` overrides it with its live-ingestor registry aggregate.
    fn live_stats(&self) -> Result<LiveStats> {
        Ok(LiveStats::default())
    }
    /// The store's aggregate socket front-end statistics. Defaults to an
    /// idle report for services with no socket front end; `VStore`
    /// overrides it with its net-server registry aggregate.
    fn net_stats(&self) -> Result<NetStats> {
        Ok(NetStats::default())
    }
    /// The store's unified metrics snapshot. Defaults to an empty snapshot
    /// for services with no metrics registry; `VStore` overrides it with
    /// its registry's materialized rows.
    fn metrics(&self) -> Result<MetricsSnapshot> {
        Ok(MetricsSnapshot::default())
    }
    /// Drain the store's request-trace rings (the newest `max_traces`
    /// committed traces; 0 = all). Defaults to an empty dump for services
    /// with no tracer.
    fn trace_dump(&self, max_traces: u64) -> Result<TraceDump> {
        let _ = max_traces;
        Ok(TraceDump::default())
    }
    /// The store's request tracer, adopted by the front end at
    /// [`Server::start`] so queue wait and worker execution are spanned
    /// under the same traces the engines record into. Defaults to a
    /// disabled tracer (every span site on it is inert).
    fn tracer(&self) -> Arc<Tracer> {
        Tracer::off()
    }
}

/// One queued request: what to run and where to send the answer.
struct Job {
    id: u64,
    request: ServeRequest,
    reply: mpsc::Sender<(u64, ServeResponse)>,
    enqueued: Instant,
    /// The request's trace context (inert unless tracing is enabled and
    /// the boundary began a trace). Dropping the job's clone at the end of
    /// the worker iteration is what lets a fully-answered request commit.
    trace: TraceContext,
}

/// Statistics behind one short-held mutex. The queue itself lives in the
/// shared [`BoundedQueue`]; execution never happens under either lock —
/// workers pop, release, then run the request.
struct ServerState {
    submitted: u64,
    completed: u64,
    rejected_busy: u64,
    failed: u64,
    panics: u64,
    disconnects: u64,
    queue_wait: LatencyHistogram,
    latency: [LatencyHistogram; RequestKind::ALL.len()],
}

struct Shared {
    /// The bounded request queue: closing it is what shutdown means.
    queue: BoundedQueue<Job>,
    state: Mutex<ServerState>,
    options: ServeOptions,
    next_id: AtomicU64,
    /// The service's request tracer (disabled for services without one).
    tracer: Arc<Tracer>,
}

impl Shared {
    fn snapshot(&self) -> ServeStats {
        let state = lock_unpoisoned(&self.state);
        ServeStats {
            workers: self.options.workers,
            queue_capacity: self.options.queue_depth,
            queue_depth: self.queue.len(),
            peak_queue_depth: self.queue.peak_depth(),
            submitted: state.submitted,
            completed: state.completed,
            rejected_busy: state.rejected_busy,
            failed: state.failed,
            panics: state.panics,
            disconnects: state.disconnects,
            queue_wait: state.queue_wait.clone(),
            ingest_latency: state.latency[RequestKind::Ingest.index()].clone(),
            query_latency: state.latency[RequestKind::Query.index()].clone(),
            erode_latency: state.latency[RequestKind::Erode.index()].clone(),
            live_stats_latency: state.latency[RequestKind::LiveStats.index()].clone(),
            net_stats_latency: state.latency[RequestKind::NetStats.index()].clone(),
            metrics_latency: state.latency[RequestKind::MetricsSnapshot.index()].clone(),
            trace_latency: state.latency[RequestKind::TraceDump.index()].clone(),
        }
    }
}

/// Namespace for starting a serving front end; see [`Server::start`].
pub struct Server;

impl Server {
    /// Start a front end over `service`: validate `options`, then spawn
    /// `options.workers` executor threads, each driving its own clone of
    /// the service (for `VStore` a clone is an `Arc` bump onto the same
    /// store).
    pub fn start<S>(service: S, options: ServeOptions) -> Result<ServerHandle>
    where
        S: VideoService + Clone,
    {
        options.validate()?;
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(options.queue_depth),
            state: Mutex::new(ServerState {
                submitted: 0,
                completed: 0,
                rejected_busy: 0,
                failed: 0,
                panics: 0,
                disconnects: 0,
                queue_wait: LatencyHistogram::default(),
                latency: std::array::from_fn(|_| LatencyHistogram::default()),
            }),
            options,
            next_id: AtomicU64::new(0),
            tracer: service.tracer(),
        });
        let mut workers = Vec::with_capacity(options.workers);
        for i in 0..options.workers {
            let worker_shared = Arc::clone(&shared);
            let service = service.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("vstore-serve-{i}"))
                .spawn(move || worker_loop(&service, &worker_shared));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Wind down the workers already spawned instead of
                    // leaking them parked on the queue forever.
                    shared.queue.close();
                    for worker in workers {
                        let _ = worker.join();
                    }
                    return Err(VStoreError::Io(e));
                }
            }
        }
        Ok(ServerHandle { shared, workers })
    }
}

/// A running serving front end. Dropping the handle shuts the server down
/// gracefully (close, drain, join); call [`shutdown`](Self::shutdown) to do
/// the same explicitly and receive the final statistics.
pub struct ServerHandle {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("workers", &self.shared.options.workers)
            .field("queue_depth", &self.queue_depth())
            .field("queue_capacity", &self.shared.options.queue_depth)
            .finish()
    }
}

impl ServerHandle {
    /// Open a client connection: its own response channel over the shared
    /// queue. Connections are independent — drop one mid-stream and the
    /// others (and the server) are unaffected.
    pub fn connect(&self) -> Connection {
        let (tx, rx) = mpsc::channel();
        Connection {
            shared: Arc::clone(&self.shared),
            reply_tx: tx,
            reply_rx: rx,
            outstanding: 0,
            buffered: HashMap::new(),
        }
    }

    /// A cheap, cloneable connection factory for threads that outlive
    /// their borrow of the handle (the socket front end's event loops).
    pub fn connector(&self) -> Connector {
        Connector {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A cheap, cloneable probe reading this server's statistics (what
    /// `VStore::stats_report` folds in).
    pub fn probe(&self) -> ServeProbe {
        ServeProbe {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.shared.snapshot()
    }

    /// Requests currently waiting in the queue.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Graceful shutdown: refuse new submissions, drain every request
    /// already accepted, join the workers and return the final statistics.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_inner();
        self.shared.snapshot()
    }

    fn shutdown_inner(&mut self) {
        // Closing the queue wakes idle workers (to observe the close) and
        // blocked submitters (to fail with InvalidState).
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            // Workers never unwind (requests run under catch_panic), so the
            // join only fails if the runtime killed the thread.
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// A cloneable, read-only probe of one server's statistics.
#[derive(Clone)]
pub struct ServeProbe {
    shared: Arc<Shared>,
}

impl ServeProbe {
    /// A statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.shared.snapshot()
    }

    /// `true` while the server is accepting requests; `false` once shutdown
    /// has begun. Registries keying reports off probes use this to retire
    /// dead servers instead of summing their (no longer provisioned)
    /// workers and queue capacity forever.
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.shared.queue.is_open()
    }
}

/// A cheap, cloneable handle for opening [`Connection`]s from other
/// threads — how the socket front end's event loops attach each accepted
/// socket to the shared request queue.
#[derive(Clone)]
pub struct Connector {
    shared: Arc<Shared>,
}

impl Connector {
    /// Open a connection; identical to [`ServerHandle::connect`].
    pub fn connect(&self) -> Connection {
        let (tx, rx) = mpsc::channel();
        Connection {
            shared: Arc::clone(&self.shared),
            reply_tx: tx,
            reply_rx: rx,
            outstanding: 0,
            buffered: HashMap::new(),
        }
    }
}

/// One client's connection to the server: submit typed (or wire-encoded)
/// requests, receive responses on a private channel, possibly pipelined and
/// out of submission order.
pub struct Connection {
    shared: Arc<Shared>,
    reply_tx: mpsc::Sender<(u64, ServeResponse)>,
    reply_rx: mpsc::Receiver<(u64, ServeResponse)>,
    /// Requests submitted but not yet received.
    outstanding: usize,
    /// Responses received while waiting for a different request id.
    buffered: HashMap<u64, ServeResponse>,
}

impl Connection {
    /// Submit a request; returns its id (to pair with
    /// [`recv`](Self::recv)/[`recv_response`](Self::recv_response)).
    ///
    /// Fails with [`VStoreError::InvalidArgument`] before touching the
    /// queue when the request is malformed, with [`VStoreError::Busy`] when
    /// the bounded queue is full under [`QueueFullPolicy::Reject`], and
    /// with [`VStoreError::InvalidState`] once the server is shutting down.
    /// Under [`QueueFullPolicy::Block`] a full queue blocks the caller
    /// instead of shedding.
    pub fn submit(&mut self, request: ServeRequest) -> Result<u64> {
        let on_full = self.shared.options.on_full;
        // In-process callers inherit whatever trace the calling thread has
        // installed (inert when tracing is off or no trace is active).
        self.submit_inner(request, Instant::now(), vstore_obs::current(), on_full)
    }

    /// [`submit`](Self::submit) with a caller-supplied queue-lag stamp —
    /// the socket front end's path. The event loop stamps each frame **at
    /// decode time**, so the queue-wait histogram measures the same thing
    /// for socket clients as for in-process callers (time from the request
    /// materialising to a worker popping it), and a full queue always
    /// sheds non-blockingly regardless of `ServeOptions::on_full`: an
    /// event loop that blocked on one connection's submission would stall
    /// every other connection it multiplexes.
    pub fn submit_stamped(&mut self, request: ServeRequest, enqueued: Instant) -> Result<u64> {
        self.submit_traced(request, enqueued, TraceContext::disabled())
    }

    /// [`submit_stamped`](Self::submit_stamped) carrying an explicit trace
    /// context — the socket front end begins a trace at frame-decode time
    /// and hands it in here, so queue wait and worker execution land in
    /// the same trace as the decode span.
    pub fn submit_traced(
        &mut self,
        request: ServeRequest,
        enqueued: Instant,
        trace: TraceContext,
    ) -> Result<u64> {
        self.submit_inner(
            request,
            enqueued,
            trace,
            vstore_types::QueueFullPolicy::Reject,
        )
    }

    /// The server's request tracer (the service's, adopted at start) —
    /// how the socket front end begins traces at the frame boundary.
    #[must_use]
    pub fn tracer(&self) -> Arc<Tracer> {
        Arc::clone(&self.shared.tracer)
    }

    fn submit_inner(
        &mut self,
        request: ServeRequest,
        enqueued: Instant,
        trace: TraceContext,
        on_full: vstore_types::QueueFullPolicy,
    ) -> Result<u64> {
        request.validate()?;
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let job = Job {
            id,
            request,
            reply: self.reply_tx.clone(),
            enqueued,
            trace,
        };
        let capacity = self.shared.options.queue_depth;
        match self.shared.queue.push(job, on_full) {
            Ok(()) => {}
            Err(PushError::Full(_)) => {
                let mut state = lock_unpoisoned(&self.shared.state);
                state.rejected_busy = state.rejected_busy.saturating_add(1);
                return Err(VStoreError::busy(format!(
                    "serve queue full (depth {capacity})"
                )));
            }
            Err(PushError::Closed {
                while_waiting: false,
                ..
            }) => {
                return Err(VStoreError::InvalidState(
                    "serve front end is shutting down".into(),
                ));
            }
            Err(PushError::Closed {
                while_waiting: true,
                ..
            }) => {
                return Err(VStoreError::InvalidState(
                    "serve front end shut down while awaiting a queue slot".into(),
                ));
            }
        }
        let mut state = lock_unpoisoned(&self.shared.state);
        state.submitted = state.submitted.saturating_add(1);
        drop(state);
        self.outstanding += 1;
        Ok(id)
    }

    /// Requests submitted on this connection that have not been received
    /// yet.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.outstanding + self.buffered.len()
    }

    /// Receive the next response without blocking: `None` when nothing has
    /// completed yet (or nothing is outstanding). The socket front end's
    /// event loops drain completions with this between socket reads —
    /// they can never afford to park on the channel.
    pub fn try_recv(&mut self) -> Option<(u64, ServeResponse)> {
        if let Some(&id) = self.buffered.keys().next() {
            let response = self.buffered.remove(&id).expect("key just seen"); // vstore-lint: allow(no-unwrap)
            return Some((id, response));
        }
        match self.reply_rx.try_recv() {
            Ok((id, response)) => {
                self.outstanding -= 1;
                Some((id, response))
            }
            Err(_) => None,
        }
    }

    /// Receive the next response (any request id, completion order).
    ///
    /// Fails with [`VStoreError::InvalidState`] when nothing is
    /// outstanding — a well-behaved client can therefore never block
    /// forever here, because every outstanding request is eventually
    /// answered (workers drain the queue even during shutdown).
    pub fn recv(&mut self) -> Result<(u64, ServeResponse)> {
        if let Some(&id) = self.buffered.keys().next() {
            let response = self.buffered.remove(&id).expect("key just seen"); // vstore-lint: allow(no-unwrap)
            return Ok((id, response));
        }
        if self.outstanding == 0 {
            return Err(VStoreError::InvalidState(
                "no outstanding requests on this connection".into(),
            ));
        }
        let (id, response) = self.reply_rx.recv().map_err(|_| {
            VStoreError::InvalidState("serve front end dropped the connection".into())
        })?;
        self.outstanding -= 1;
        Ok((id, response))
    }

    /// Receive the response of one specific request id, buffering any other
    /// responses that arrive first.
    pub fn recv_response(&mut self, id: u64) -> Result<ServeResponse> {
        if let Some(response) = self.buffered.remove(&id) {
            return Ok(response);
        }
        loop {
            if self.outstanding == 0 {
                return Err(VStoreError::InvalidState(format!(
                    "request {id} is not outstanding on this connection"
                )));
            }
            let (got, response) = self.reply_rx.recv().map_err(|_| {
                VStoreError::InvalidState("serve front end dropped the connection".into())
            })?;
            self.outstanding -= 1;
            if got == id {
                return Ok(response);
            }
            self.buffered.insert(got, response);
        }
    }

    /// Submit one request and wait for its response (convenience for
    /// non-pipelined clients).
    pub fn call(&mut self, request: ServeRequest) -> Result<ServeResponse> {
        let id = self.submit(request)?;
        self.recv_response(id)
    }

    /// [`call`](Self::call) at the wire level: decode the request bytes,
    /// serve them, encode the response bytes. Back-pressure and shutdown
    /// surface as client-side errors, exactly as in the typed API.
    pub fn call_wire(&mut self, request_bytes: &[u8]) -> Result<Vec<u8>> {
        let request = ServeRequest::from_wire(request_bytes)?;
        Ok(self.call(request)?.to_wire())
    }
}

/// Execute one request against the service.
fn execute<S: VideoService>(service: &S, request: &ServeRequest) -> Result<ServeResponse> {
    match request {
        ServeRequest::Ingest {
            source,
            first_segment,
            count,
        } => service
            .ingest(source, *first_segment, *count)
            .map(ServeResponse::Ingest),
        ServeRequest::Query {
            stream,
            spec,
            first_segment,
            count,
        } => service
            .query(stream, spec, *first_segment, *count)
            .map(ServeResponse::Query),
        ServeRequest::Erode { stream, age_days } => {
            service.erode(stream, *age_days).map(ServeResponse::Erode)
        }
        ServeRequest::LiveStats => service
            .live_stats()
            .map(|stats| ServeResponse::LiveStats(Box::new(stats))),
        ServeRequest::NetStats => service
            .net_stats()
            .map(|stats| ServeResponse::NetStats(Box::new(stats))),
        ServeRequest::MetricsSnapshot => service.metrics().map(ServeResponse::Metrics),
        ServeRequest::TraceDump { max_traces } => service
            .trace_dump(*max_traces)
            .map(|dump| ServeResponse::TraceDump(Box::new(dump))),
    }
}

/// The executor loop of one worker thread.
fn worker_loop<S: VideoService>(service: &S, shared: &Shared) {
    loop {
        // `pop` blocks while the queue is open and returns `None` only once
        // it is closed and drained: the graceful exit.
        let Some(job) = shared.queue.pop() else {
            return;
        };

        let wait_us = u64::try_from(job.enqueued.elapsed().as_micros()).unwrap_or(u64::MAX);
        let kind = job.request.kind();
        // Span the queue wait and install the request's trace for the
        // execution: layers below (engines, storage reads) pick it up via
        // `vstore_obs::current()` on this thread.
        job.trace.record_since("queue.wait", job.enqueued);
        let installed = vstore_obs::install(&job.trace);
        let exec_span = job.trace.span("worker.execute");
        let started = Instant::now();
        // Panic isolation: a panicking handler answers this request with an
        // error; the worker survives to serve the next one.
        let outcome = catch_panic(|| execute(service, &job.request));
        let elapsed_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        drop(exec_span);
        drop(installed);

        let (response, was_error, was_panic) = match outcome {
            Ok(Ok(response)) => (response, false, false),
            Ok(Err(err)) => (
                ServeResponse::Error(RemoteError::from_error(&err)),
                true,
                false,
            ),
            Err(payload) => (
                ServeResponse::Error(RemoteError::from_panic(panic_message(&payload))),
                true,
                true,
            ),
        };
        // Count the completion BEFORE delivering the response: a client
        // that has its answer must see it reflected in the statistics.
        {
            let mut state = lock_unpoisoned(&shared.state);
            state.completed = state.completed.saturating_add(1);
            if was_error {
                state.failed = state.failed.saturating_add(1);
            }
            if was_panic {
                state.panics = state.panics.saturating_add(1);
            }
            state.queue_wait.record(wait_us);
            state.latency[kind.index()].record(elapsed_us);
        }
        if job.reply.send((job.id, response)).is_err() {
            let mut state = lock_unpoisoned(&shared.state);
            state.disconnects = state.disconnects.saturating_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ErrorCode;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Condvar;
    use vstore_datasets::Dataset;
    use vstore_types::{ByteSize, QueueFullPolicy, Speed, VideoSeconds};

    /// A deterministic in-memory service: canned responses, an optional
    /// gate that parks handlers until opened, and a panic trigger on the
    /// stream name "panic".
    #[derive(Clone)]
    struct MockService {
        gate: Arc<(Mutex<bool>, Condvar)>,
        executed: Arc<AtomicUsize>,
    }

    impl MockService {
        fn new() -> Self {
            MockService {
                gate: Arc::new((Mutex::new(true), Condvar::new())),
                executed: Arc::new(AtomicUsize::new(0)),
            }
        }

        fn gated() -> Self {
            let service = Self::new();
            *service.gate.0.lock().unwrap() = false;
            service
        }

        fn open_gate(&self) {
            *self.gate.0.lock().unwrap() = true;
            self.gate.1.notify_all();
        }

        fn await_gate(&self) {
            let (lock, cvar) = &*self.gate;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cvar.wait(open).unwrap();
            }
        }

        fn canned_result(spec: &QuerySpec, count: u64) -> QueryResult {
            QueryResult {
                query: spec.clone(),
                video: VideoSeconds(count as f64 * 8.0),
                speed: Speed(100.0),
                positive_frames: vec![count],
                stages: Vec::new(),
                bytes_read: ByteSize(count * 10),
                segments_skipped: 0,
            }
        }
    }

    impl VideoService for MockService {
        fn ingest(
            &self,
            _source: &VideoSource,
            _first_segment: u64,
            count: u64,
        ) -> Result<IngestReport> {
            self.await_gate();
            self.executed.fetch_add(1, Ordering::Relaxed);
            Ok(IngestReport {
                video: VideoSeconds(count as f64 * 8.0),
                segments_written: count as usize,
                ..IngestReport::default()
            })
        }

        fn query(
            &self,
            stream: &str,
            spec: &QuerySpec,
            _first_segment: u64,
            count: u64,
        ) -> Result<QueryResult> {
            self.await_gate();
            if stream == "panic" {
                panic!("mock operator exploded");
            }
            if stream == "missing" {
                return Err(VStoreError::not_found("no such stream"));
            }
            self.executed.fetch_add(1, Ordering::Relaxed);
            Ok(Self::canned_result(spec, count))
        }

        fn erode(&self, _stream: &str, age_days: u32) -> Result<ErodeReport> {
            self.await_gate();
            self.executed.fetch_add(1, Ordering::Relaxed);
            Ok(ErodeReport {
                age_days,
                segments_deleted: age_days as usize,
                ..ErodeReport::default()
            })
        }
    }

    fn query_request(stream: &str, count: u64) -> ServeRequest {
        ServeRequest::Query {
            stream: stream.into(),
            spec: QuerySpec::query_a(0.8),
            first_segment: 0,
            count,
        }
    }

    #[test]
    fn start_validates_options() {
        let err = Server::start(MockService::new(), ServeOptions::default().with_workers(0))
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, VStoreError::InvalidArgument(_)), "{err}");
    }

    #[test]
    fn requests_round_trip_through_the_server() {
        let server = Server::start(
            MockService::new(),
            ServeOptions::default().with_workers(2).with_queue_depth(8),
        )
        .unwrap();
        let mut conn = server.connect();
        match conn.call(query_request("jackson", 3)).unwrap() {
            ServeResponse::Query(result) => {
                assert_eq!(
                    result,
                    MockService::canned_result(&QuerySpec::query_a(0.8), 3)
                );
            }
            other => panic!("unexpected response {other:?}"),
        }
        match conn
            .call(ServeRequest::Erode {
                stream: "jackson".into(),
                age_days: 5,
            })
            .unwrap()
        {
            ServeResponse::Erode(report) => assert_eq!(report.segments_deleted, 5),
            other => panic!("unexpected response {other:?}"),
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.failed, 0);
        assert!(stats.query_latency.count() == 1 && stats.erode_latency.count() == 1);
    }

    #[test]
    fn malformed_requests_are_rejected_before_the_queue() {
        let server = Server::start(MockService::new(), ServeOptions::sequential()).unwrap();
        let mut conn = server.connect();
        let err = conn.submit(query_request("", 1)).unwrap_err();
        assert!(matches!(err, VStoreError::InvalidArgument(_)), "{err}");
        assert_eq!(server.stats().submitted, 0);
    }

    /// Deterministic load shedding: with one gated worker and a queue of
    /// one, the third submission must be shed with `Busy` — and the shed
    /// request is never executed.
    #[test]
    fn full_queue_sheds_with_busy_under_reject() {
        let service = MockService::gated();
        let server = Server::start(service.clone(), ServeOptions::sequential()).unwrap();
        let mut conn = server.connect();
        // Job 1 is popped by the (gated) worker; wait until the queue is
        // empty again so the fill below is deterministic.
        let first = conn.submit(query_request("jackson", 1)).unwrap();
        while server.queue_depth() > 0 {
            std::thread::yield_now();
        }
        // Job 2 fills the queue's single slot; job 3 must shed.
        let second = conn.submit(query_request("jackson", 2)).unwrap();
        let err = conn.submit(query_request("jackson", 3)).unwrap_err();
        assert!(err.is_busy(), "{err}");
        assert_eq!(server.stats().rejected_busy, 1);

        service.open_gate();
        let r1 = conn.recv_response(first).unwrap();
        let r2 = conn.recv_response(second).unwrap();
        assert!(!r1.is_error() && !r2.is_error());
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.rejected_busy, 1);
        assert_eq!(stats.peak_queue_depth, 1);
        assert!((stats.busy_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    /// Under the Block policy the same overload blocks the submitter until
    /// a slot frees instead of shedding.
    #[test]
    fn full_queue_blocks_under_block_policy() {
        let service = MockService::gated();
        let server = Server::start(
            service.clone(),
            ServeOptions::sequential().with_on_full(QueueFullPolicy::Block),
        )
        .unwrap();
        let mut conn = server.connect();
        let first = conn.submit(query_request("jackson", 1)).unwrap();
        while server.queue_depth() > 0 {
            std::thread::yield_now();
        }
        let second = conn.submit(query_request("jackson", 2)).unwrap();
        // The queue slot is taken: a third submission blocks until the gate
        // opens and the worker frees the slot.
        let probe = server.probe();
        let submitter = std::thread::spawn({
            let mut conn = server.connect();
            move || {
                let id = conn.submit(query_request("jackson", 3)).unwrap();
                let response = conn.recv_response(id).unwrap();
                assert!(!response.is_error());
            }
        });
        service.open_gate();
        submitter.join().unwrap();
        let r1 = conn.recv_response(first).unwrap();
        let r2 = conn.recv_response(second).unwrap();
        assert!(!r1.is_error() && !r2.is_error());
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.rejected_busy, 0);
        assert_eq!(probe.stats().completed, 3);
    }

    /// The acceptance criterion: a worker panic fails only that request —
    /// the same connection and the server keep serving.
    #[test]
    fn worker_panic_fails_only_that_request() {
        let server = Server::start(
            MockService::new(),
            ServeOptions::default().with_workers(2).with_queue_depth(8),
        )
        .unwrap();
        let mut conn = server.connect();
        let panicking = conn.submit(query_request("panic", 1)).unwrap();
        match conn.recv_response(panicking).unwrap() {
            ServeResponse::Error(err) => {
                assert_eq!(err.code, ErrorCode::Panicked);
                assert!(
                    err.message.contains("mock operator exploded"),
                    "{}",
                    err.message
                );
            }
            other => panic!("expected a panic error, got {other:?}"),
        }
        // The same connection and server still serve.
        for round in 1..=3 {
            let response = conn.call(query_request("jackson", round)).unwrap();
            assert!(!response.is_error());
        }
        let stats = server.shutdown();
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 4);
    }

    /// Service-level errors cross the wire typed; the server keeps serving.
    #[test]
    fn service_errors_become_error_responses() {
        let server = Server::start(MockService::new(), ServeOptions::sequential()).unwrap();
        let mut conn = server.connect();
        match conn.call(query_request("missing", 1)).unwrap() {
            ServeResponse::Error(err) => {
                assert_eq!(err.code, ErrorCode::NotFound);
                assert!(err.into_error().is_not_found());
            }
            other => panic!("expected an error, got {other:?}"),
        }
        let stats = server.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.panics, 0);
    }

    /// Dropping a connection with requests in flight never disturbs the
    /// server: the orphaned responses are counted and discarded.
    #[test]
    fn mid_stream_disconnect_is_tolerated() {
        let service = MockService::gated();
        let server = Server::start(
            service.clone(),
            ServeOptions::default().with_workers(1).with_queue_depth(8),
        )
        .unwrap();
        let mut doomed = server.connect();
        doomed.submit(query_request("jackson", 1)).unwrap();
        doomed.submit(query_request("jackson", 2)).unwrap();
        drop(doomed);
        let mut survivor = server.connect();
        let id = survivor.submit(query_request("jackson", 3)).unwrap();
        service.open_gate();
        assert!(!survivor.recv_response(id).unwrap().is_error());
        let stats = server.shutdown();
        assert_eq!(stats.disconnects, 2);
        assert_eq!(stats.completed, 3);
    }

    /// Graceful shutdown drains everything already accepted before the
    /// workers exit, and later submissions fail cleanly.
    #[test]
    fn shutdown_drains_accepted_requests() {
        let service = MockService::gated();
        let server = Server::start(
            service.clone(),
            ServeOptions::default().with_workers(2).with_queue_depth(16),
        )
        .unwrap();
        let mut conn = server.connect();
        let ids: Vec<u64> = (1..=6)
            .map(|i| conn.submit(query_request("jackson", i)).unwrap())
            .collect();
        service.open_gate();
        let stats = server.shutdown();
        assert_eq!(stats.completed, 6, "shutdown must drain the queue");
        for id in ids {
            assert!(!conn.recv_response(id).unwrap().is_error());
        }
        // The server is gone; submitting again fails cleanly.
        let err = conn.submit(query_request("jackson", 1)).unwrap_err();
        assert!(matches!(err, VStoreError::InvalidState(_)), "{err}");
    }

    /// Pipelined submissions on one connection may complete out of order;
    /// recv_response pairs ids correctly via buffering.
    #[test]
    fn out_of_order_completion_is_paired_by_id() {
        let server = Server::start(
            MockService::new(),
            ServeOptions::default().with_workers(4).with_queue_depth(32),
        )
        .unwrap();
        let mut conn = server.connect();
        let ids: Vec<u64> = (1..=16)
            .map(|i| conn.submit(query_request("jackson", i)).unwrap())
            .collect();
        assert_eq!(conn.pending(), 16);
        // Receive in reverse submission order to force buffering.
        for (i, &id) in ids.iter().enumerate().rev() {
            match conn.recv_response(id).unwrap() {
                ServeResponse::Query(result) => {
                    assert_eq!(result.positive_frames, vec![i as u64 + 1]);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(conn.pending(), 0);
        assert!(conn.recv().is_err(), "nothing outstanding");
    }

    /// Queue-lag regression: `submit_stamped` honours the caller's stamp,
    /// so a socket frame stamped at decode time records its true lag —
    /// while the in-process path keeps stamping at submission. Before the
    /// fix, network frames could only be stamped at submit, making the two
    /// paths' queue-wait histograms incomparable.
    #[test]
    fn queue_wait_is_measured_from_the_callers_stamp() {
        let server = Server::start(
            MockService::new(),
            ServeOptions::default().with_workers(1).with_queue_depth(8),
        )
        .unwrap();
        let mut conn = server.connect();
        // A frame "decoded" 80 ms ago: the histogram must see >= 80 ms of
        // lag even though the worker pops it immediately.
        let decoded_at = Instant::now() - std::time::Duration::from_millis(80);
        let id = conn
            .submit_stamped(query_request("jackson", 1), decoded_at)
            .unwrap();
        assert!(!conn.recv_response(id).unwrap().is_error());
        let stamped = server.stats();
        assert!(
            stamped.queue_wait.max_us() >= 80_000,
            "decode-time stamp ignored: max wait {} µs",
            stamped.queue_wait.max_us()
        );
        // The in-process path on an idle server stays far below that.
        let id = conn.submit(query_request("jackson", 1)).unwrap();
        assert!(!conn.recv_response(id).unwrap().is_error());
        let stats = server.shutdown();
        assert_eq!(stats.queue_wait.count(), 2);
    }

    /// `submit_stamped` sheds a full queue non-blockingly even when the
    /// server's policy is Block: event loops must never park on submit.
    #[test]
    fn submit_stamped_sheds_instead_of_blocking() {
        let service = MockService::gated();
        let server = Server::start(
            service.clone(),
            ServeOptions::sequential().with_on_full(QueueFullPolicy::Block),
        )
        .unwrap();
        let mut conn = server.connect();
        let first = conn
            .submit_stamped(query_request("jackson", 1), Instant::now())
            .unwrap();
        while server.queue_depth() > 0 {
            std::thread::yield_now();
        }
        let second = conn
            .submit_stamped(query_request("jackson", 2), Instant::now())
            .unwrap();
        let err = conn
            .submit_stamped(query_request("jackson", 3), Instant::now())
            .unwrap_err();
        assert!(err.is_busy(), "{err}");
        service.open_gate();
        assert!(!conn.recv_response(first).unwrap().is_error());
        assert!(!conn.recv_response(second).unwrap().is_error());
    }

    /// `try_recv` never blocks and drains completions plus the buffer.
    #[test]
    fn try_recv_is_non_blocking() {
        let service = MockService::gated();
        let server = Server::start(
            service.clone(),
            ServeOptions::default().with_workers(1).with_queue_depth(8),
        )
        .unwrap();
        let mut conn = server.connect();
        assert!(conn.try_recv().is_none(), "idle connection");
        let a = conn.submit(query_request("jackson", 1)).unwrap();
        let b = conn.submit(query_request("jackson", 2)).unwrap();
        assert!(conn.try_recv().is_none(), "gate still closed");
        service.open_gate();
        let mut got = std::collections::HashMap::new();
        while got.len() < 2 {
            if let Some((id, response)) = conn.try_recv() {
                got.insert(id, response);
            } else {
                std::thread::yield_now();
            }
        }
        assert!(!got[&a].is_error() && !got[&b].is_error());
        assert_eq!(conn.pending(), 0);
    }

    /// The default net-stats handler answers idle; mocks need no override.
    #[test]
    fn net_stats_requests_round_trip_with_the_default_handler() {
        let server = Server::start(MockService::new(), ServeOptions::default()).unwrap();
        let mut conn = server.connect();
        match conn.call(ServeRequest::NetStats).unwrap() {
            ServeResponse::NetStats(stats) => assert_eq!(*stats, NetStats::default()),
            other => panic!("unexpected {other:?}"),
        }
        let stats = server.shutdown();
        assert_eq!(stats.net_stats_latency.count(), 1);
    }

    /// The wire-level API serves encoded frames end to end.
    #[test]
    fn wire_calls_round_trip() {
        let server = Server::start(MockService::new(), ServeOptions::default()).unwrap();
        let mut conn = server.connect();
        let request = ServeRequest::Ingest {
            source: VideoSource::new(Dataset::Park),
            first_segment: 0,
            count: 2,
        };
        let response_bytes = conn.call_wire(&request.to_wire()).unwrap();
        match ServeResponse::from_wire(&response_bytes).unwrap() {
            ServeResponse::Ingest(report) => assert_eq!(report.segments_written, 2),
            other => panic!("unexpected {other:?}"),
        }
        // Garbage in → typed corruption out, nothing submitted.
        assert!(conn.call_wire(b"junk").is_err());
    }
}
